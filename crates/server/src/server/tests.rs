use super::*;
use crate::events::{Action, Delta, RoomEvent};
use rcmo_core::{ComponentId, FormKind, MediaRef, PresentationForm};
use rcmo_imaging::{ct_phantom, LineElement, TextElement};
use rcmo_mediadb::ImageObject;

/// Builds a database with one document (CT + X-ray under "Images") and one
/// stored image object; returns (server, document id, image object id,
/// CT component id, X-ray component id).
fn setup() -> (InteractionServer, u64, u64, ComponentId, ComponentId) {
    let db = MediaDb::in_memory().unwrap();
    db.put_user("admin", "dr-a", rcmo_mediadb::AccessLevel::Write)
        .unwrap();
    db.put_user("admin", "dr-b", rcmo_mediadb::AccessLevel::Write)
        .unwrap();

    let ct_image = ct_phantom(64, 2, 5).unwrap();
    let image_id = db
        .insert_image(
            "admin",
            &ImageObject {
                name: "ct-slice".to_string(),
                quality: 0,
                texts: String::new(),
                cm: Vec::new(),
                data: ct_image.to_bytes(),
            },
        )
        .unwrap();

    let mut doc = MultimediaDocument::new("Patient 071");
    let images = doc.add_composite(doc.root(), "Images").unwrap();
    let ct = doc
        .add_primitive(
            images,
            "CT",
            MediaRef::Stored {
                media_type: "Image".to_string(),
                object_id: image_id,
            },
            vec![
                PresentationForm::new("flat", FormKind::Flat, 100_000),
                PresentationForm::new("segmented", FormKind::Segmented, 130_000),
                PresentationForm::hidden(),
            ],
        )
        .unwrap();
    let xray = doc
        .add_primitive(
            images,
            "X-ray",
            MediaRef::None,
            vec![
                PresentationForm::new("flat", FormKind::Flat, 50_000),
                PresentationForm::new("icon", FormKind::Icon, 2_000),
                PresentationForm::hidden(),
            ],
        )
        .unwrap();
    // Author preference: X-ray iconified while the CT is shown.
    doc.author_parents(xray, &[ct]).unwrap();
    doc.author_preference(xray, &[(ct, 0)], &[1, 0, 2]).unwrap();
    doc.author_preference(xray, &[(ct, 1)], &[1, 0, 2]).unwrap();
    doc.author_preference(xray, &[(ct, 2)], &[0, 1, 2]).unwrap();
    doc.validate().unwrap();

    let doc_id = db
        .insert_document(
            "admin",
            &DocumentObject {
                title: doc.title().to_string(),
                data: doc.to_bytes(),
            },
        )
        .unwrap();
    (InteractionServer::new(db), doc_id, image_id, ct, xray)
}

/// Collects pending events, stripping the sequence envelope (most tests
/// only care about the payload order).
fn drain(conn: &ClientConnection) -> Vec<RoomEvent> {
    let mut out = Vec::new();
    while let Some(e) = conn.events.try_recv() {
        out.push(e.event);
    }
    out
}

#[test]
fn create_join_leave_lifecycle() {
    let (srv, doc_id, _, _, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let a = srv.join_default(room, "dr-a").unwrap();
    let b = srv.join_default(room, "dr-b").unwrap();
    assert_eq!(srv.members(room).unwrap(), vec!["dr-a", "dr-b"]);
    // dr-a saw both joins; dr-b only its own.
    let ea = drain(&a);
    assert_eq!(
        ea,
        vec![
            RoomEvent::Joined {
                user: "dr-a".into(),
                role: Role::Moderator
            },
            RoomEvent::Joined {
                user: "dr-b".into(),
                role: Role::Moderator
            }
        ]
    );
    assert_eq!(drain(&b).len(), 1);
    srv.leave(room, "dr-b").unwrap();
    assert_eq!(
        drain(&a),
        vec![RoomEvent::Left {
            user: "dr-b".into()
        }]
    );
    assert!(srv.leave(room, "dr-b").is_err(), "double leave rejected");
    assert!(
        srv.join_default(room, "dr-a").is_err(),
        "double join rejected"
    );
}

#[test]
fn unknown_room_and_unknown_user() {
    let (srv, doc_id, _, _, _) = setup();
    assert!(matches!(
        srv.join_default(99, "dr-a"),
        Err(ServerError::UnknownRoom(99))
    ));
    // "nobody" has no database permissions at all.
    assert!(srv.create_room("nobody", "x", doc_id).is_err());
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    assert!(srv.join_default(room, "nobody").is_err());
}

#[test]
fn choice_propagates_and_reconfigures() {
    let (srv, doc_id, _, ct, xray) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let a = srv.join_default(room, "dr-a").unwrap();
    let b = srv.join_default(room, "dr-b").unwrap();
    drain(&a);
    drain(&b);

    // Default: CT flat, X-ray icon.
    let p = srv.presentation(room, "dr-a").unwrap();
    assert_eq!(p.form(ct), 0);
    assert_eq!(p.form(xray), 1);

    // dr-a hides the CT: her X-ray flips to flat; dr-b is unaffected.
    srv.act(
        room,
        "dr-a",
        Action::Choose {
            component: ct,
            form: 2,
        },
    )
    .unwrap();
    let pa = srv.presentation(room, "dr-a").unwrap();
    assert_eq!(pa.form(ct), 2);
    assert_eq!(pa.form(xray), 0);
    let pb = srv.presentation(room, "dr-b").unwrap();
    assert_eq!(pb.form(ct), 0, "dr-b keeps the default view");

    // Both clients saw the same two events, in the same order.
    let ea = drain(&a);
    let eb = drain(&b);
    assert_eq!(ea, eb);
    assert!(matches!(ea[0], RoomEvent::ChoiceMade { form: Some(2), .. }));
    assert!(matches!(ea[1], RoomEvent::PresentationChanged { .. }));

    // Withdrawing restores the author default.
    srv.act(room, "dr-a", Action::Unchoose { component: ct })
        .unwrap();
    assert_eq!(srv.presentation(room, "dr-a").unwrap().form(ct), 0);
}

#[test]
fn annotations_propagate_and_render() {
    let (srv, doc_id, image_id, _, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let a = srv.join_default(room, "dr-a").unwrap();
    let b = srv.join_default(room, "dr-b").unwrap();
    srv.open_image(room, "dr-a", image_id).unwrap();
    drain(&a);
    drain(&b);

    srv.act(
        room,
        "dr-a",
        Action::AddText {
            object: image_id,
            element: TextElement {
                x: 2,
                y: 2,
                text: "LESION".into(),
                intensity: 255,
                scale: 1,
            },
        },
    )
    .unwrap();
    srv.act(
        room,
        "dr-b",
        Action::AddLine {
            object: image_id,
            element: LineElement {
                x0: 0,
                y0: 0,
                x1: 60,
                y1: 60,
                intensity: 250,
            },
        },
    )
    .unwrap();
    assert_eq!(srv.object_elements(room, image_id).unwrap(), 2);

    // Both partners received both deltas (and the deltas are small).
    let eb = drain(&b);
    assert_eq!(eb.len(), 2);
    for e in &eb {
        match e {
            RoomEvent::ObjectChanged { delta, .. } => {
                assert!(delta.encoded_len() < 100);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    // The render shows the ink.
    let rendered = srv.render_object(room, image_id).unwrap();
    let lit = rendered.pixels().iter().filter(|&&p| p >= 250).count();
    assert!(lit > 20);

    // dr-b deletes dr-a's text element.
    let id = match &eb[0] {
        RoomEvent::ObjectChanged {
            delta: Delta::TextAdded { id, .. },
            ..
        } => *id,
        other => panic!("expected TextAdded, got {other:?}"),
    };
    srv.act(
        room,
        "dr-b",
        Action::DeleteElement {
            object: image_id,
            element: id,
        },
    )
    .unwrap();
    assert_eq!(srv.object_elements(room, image_id).unwrap(), 1);
}

#[test]
fn freeze_blocks_other_partners() {
    let (srv, doc_id, image_id, _, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    let _b = srv.join_default(room, "dr-b").unwrap();
    srv.open_image(room, "dr-a", image_id).unwrap();

    srv.act(room, "dr-a", Action::Freeze { object: image_id })
        .unwrap();
    // dr-b cannot annotate or re-freeze.
    let text = Action::AddText {
        object: image_id,
        element: TextElement {
            x: 0,
            y: 0,
            text: "X".into(),
            intensity: 255,
            scale: 1,
        },
    };
    assert!(matches!(
        srv.act(room, "dr-b", text.clone()),
        Err(ServerError::Frozen { .. })
    ));
    assert!(matches!(
        srv.act(room, "dr-b", Action::Freeze { object: image_id }),
        Err(ServerError::FreezeConflict(_))
    ));
    // The holder still can.
    srv.act(
        room,
        "dr-a",
        Action::AddLine {
            object: image_id,
            element: LineElement {
                x0: 0,
                y0: 0,
                x1: 5,
                y1: 5,
                intensity: 200,
            },
        },
    )
    .unwrap();
    // Only the holder may release.
    assert!(srv
        .act(room, "dr-b", Action::Release { object: image_id })
        .is_err());
    srv.act(room, "dr-a", Action::Release { object: image_id })
        .unwrap();
    srv.act(room, "dr-b", text).unwrap();
}

#[test]
fn leaving_releases_freezes() {
    let (srv, doc_id, image_id, _, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    let b = srv.join_default(room, "dr-b").unwrap();
    srv.open_image(room, "dr-a", image_id).unwrap();
    srv.act(room, "dr-a", Action::Freeze { object: image_id })
        .unwrap();
    srv.leave(room, "dr-a").unwrap();
    let events = drain(&b);
    assert!(events
        .iter()
        .any(|e| matches!(e, RoomEvent::Released { .. })));
    // dr-b can now freeze.
    srv.act(room, "dr-b", Action::Freeze { object: image_id })
        .unwrap();
}

#[test]
fn global_operation_affects_everyone_and_persists() {
    let (srv, doc_id, _, ct, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    let _b = srv.join_default(room, "dr-b").unwrap();

    srv.act(
        room,
        "dr-a",
        Action::ApplyOperation {
            component: ct,
            trigger_form: 0,
            operation: "segmentation".into(),
            global: true,
        },
    )
    .unwrap();
    for user in ["dr-a", "dr-b"] {
        let p = srv.presentation(room, user).unwrap();
        assert_eq!(p.derived_states().len(), 1, "{user} sees the derived var");
        assert_eq!(p.derived_states()[0].1, "segmentation applied");
    }
    // Persist and reload through the database.
    srv.save_document(room, "dr-a").unwrap();
    let room2 = srv.create_room("dr-b", "second", doc_id).unwrap();
    let _c = srv.join_default(room2, "dr-b").unwrap();
    let p = srv.presentation(room2, "dr-b").unwrap();
    assert_eq!(p.derived_states().len(), 1, "derived var survived storage");
}

#[test]
fn local_operation_stays_private() {
    let (srv, doc_id, _, ct, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    let _b = srv.join_default(room, "dr-b").unwrap();
    srv.act(
        room,
        "dr-a",
        Action::ApplyOperation {
            component: ct,
            trigger_form: 0,
            operation: "zoom".into(),
            global: false,
        },
    )
    .unwrap();
    assert_eq!(
        srv.presentation(room, "dr-a")
            .unwrap()
            .derived_states()
            .len(),
        1
    );
    assert!(srv
        .presentation(room, "dr-b")
        .unwrap()
        .derived_states()
        .is_empty());
}

#[test]
fn layered_image_payload_can_be_opened() {
    let (srv, doc_id, _, _, _) = setup();
    let img = ct_phantom(64, 1, 9).unwrap();
    let stream = rcmo_codec::encode(&img, &rcmo_codec::EncoderConfig::default()).unwrap();
    let lic_id = srv
        .database()
        .insert_image(
            "admin",
            &ImageObject {
                name: "layered-ct".into(),
                quality: 1,
                texts: String::new(),
                cm: Vec::new(),
                data: stream,
            },
        )
        .unwrap();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    srv.open_image(room, "dr-a", lic_id).unwrap();
    let rendered = srv.render_object(room, lic_id).unwrap();
    assert_eq!(rendered.width(), 64);
}

#[test]
fn save_and_close_image_persists_annotations() {
    let (srv, doc_id, image_id, _, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    srv.open_image(room, "dr-a", image_id).unwrap();
    srv.act(
        room,
        "dr-a",
        Action::AddText {
            object: image_id,
            element: TextElement {
                x: 1,
                y: 1,
                text: "F1".into(),
                intensity: 255,
                scale: 1,
            },
        },
    )
    .unwrap();
    srv.save_and_close_image(room, "dr-a", image_id).unwrap();
    // The object left the room.
    assert!(srv.render_object(room, image_id).is_err());
    // The stored overlay can be reloaded under the *same* id (the save is
    // an atomic in-place replace, not delete + reinsert).
    let obj = srv.database().get_image("dr-a", image_id).unwrap();
    assert_eq!(obj.name, "ct-slice");
    let base = rcmo_imaging::GrayImage::from_bytes(&obj.data).unwrap();
    let restored = AnnotatedImage::from_parts(base, &obj.cm).unwrap();
    assert_eq!(restored.num_elements(), 1);
}

#[test]
fn failed_save_keeps_annotations_in_the_room() {
    let (srv, doc_id, image_id, _, _) = setup();
    // "intern" may read (and thus join and annotate) but not write.
    srv.database()
        .put_user("admin", "intern", rcmo_mediadb::AccessLevel::Read)
        .unwrap();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    let _i = srv.join_default(room, "intern").unwrap();
    srv.open_image(room, "dr-a", image_id).unwrap();
    srv.act(
        room,
        "intern",
        Action::AddText {
            object: image_id,
            element: TextElement {
                x: 3,
                y: 3,
                text: "note".into(),
                intensity: 255,
                scale: 1,
            },
        },
    )
    .unwrap();

    // The intern's save is denied by the database ACL — but the working
    // copy (and its annotation) must return to the room, not vanish.
    assert!(srv.save_and_close_image(room, "intern", image_id).is_err());
    assert_eq!(srv.object_elements(room, image_id).unwrap(), 1);
    // The stored object is untouched.
    let obj = srv.database().get_image("dr-a", image_id).unwrap();
    assert!(obj.cm.is_empty(), "stored overlay unchanged by failed save");
    // A writer can still complete the save afterwards.
    srv.save_and_close_image(room, "dr-a", image_id).unwrap();
    let obj = srv.database().get_image("dr-a", image_id).unwrap();
    assert!(!obj.cm.is_empty());
}

#[test]
fn stats_and_change_log_accumulate() {
    let (srv, doc_id, _, ct, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    let _b = srv.join_default(room, "dr-b").unwrap();
    for i in 0..5 {
        srv.act(
            room,
            "dr-a",
            Action::Chat {
                text: format!("msg {i}"),
            },
        )
        .unwrap();
    }
    srv.act(
        room,
        "dr-a",
        Action::Choose {
            component: ct,
            form: 1,
        },
    )
    .unwrap();
    let stats = srv.room_stats(room).unwrap();
    // 2 joins + 5 chats + choice + presentation = 9 logged changes.
    assert_eq!(stats.changes_logged, 9);
    assert_eq!(srv.change_log_len(room).unwrap(), 9);
    assert!(stats.bytes_delivered > 0);
    assert!(stats.events_delivered >= stats.changes_logged);
}

#[test]
fn concurrent_partners_see_one_total_order() {
    use std::sync::Arc;
    let (srv, doc_id, image_id, ct, _) = setup();
    let srv = Arc::new(srv);
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let a = srv.join_default(room, "dr-a").unwrap();
    let b = srv.join_default(room, "dr-b").unwrap();
    srv.open_image(room, "dr-a", image_id).unwrap();
    // Discard the asymmetric join events so both logs start together.
    drain(&a);
    drain(&b);

    let mut handles = Vec::new();
    for (user, salt) in [("dr-a", 0i64), ("dr-b", 100)] {
        let srv = Arc::clone(&srv);
        let user = user.to_string();
        handles.push(std::thread::spawn(move || {
            for i in 0..25 {
                srv.act(
                    room,
                    &user,
                    Action::Chat {
                        text: format!("{user} {i}"),
                    },
                )
                .unwrap();
                srv.act(
                    room,
                    &user,
                    Action::AddLine {
                        object: image_id,
                        element: LineElement {
                            x0: salt + i,
                            y0: 0,
                            x1: salt + i,
                            y1: 63,
                            intensity: 100,
                        },
                    },
                )
                .unwrap();
                if i % 5 == 0 {
                    let _ = srv.act(
                        room,
                        &user,
                        Action::Choose {
                            component: ct,
                            form: (i % 2) as usize,
                        },
                    );
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let ea = drain(&a);
    let eb = drain(&b);
    assert_eq!(ea, eb, "both partners observed the same total order");
    assert_eq!(srv.object_elements(room, image_id).unwrap(), 50);
}

#[test]
fn audio_analysis_is_cooperative_and_persistent() {
    let (srv, doc_id, _, _, _) = setup();
    // Store a labelled synthetic recording as a PCM audio object.
    let sc = rcmo_audio::SynthConfig {
        seed: 808,
        ..rcmo_audio::SynthConfig::default()
    };
    let mut samples = rcmo_audio::synth::silence(0.6, &sc);
    samples.extend(rcmo_audio::synth::babble(
        &rcmo_audio::VoiceProfile::female("f"),
        1.2,
        &sc,
    ));
    let audio_id = srv
        .database()
        .insert_audio(
            "admin",
            &rcmo_mediadb::AudioObject {
                filename: "consult.pcm".into(),
                sectors: vec![],
                data: rcmo_audio::synth::to_pcm16(&samples),
            },
        )
        .unwrap();

    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    let b = srv.join_default(room, "dr-b").unwrap();
    drain(&b);
    let segments = srv.analyse_audio(room, "dr-a", audio_id).unwrap();
    assert!(!segments.is_empty());
    assert!(segments
        .iter()
        .any(|s| s.class == rcmo_audio::AudioClass::Speech));

    // The other partner received the shared result.
    let events = drain(&b);
    let analysed = events.iter().find_map(|e| match e {
        RoomEvent::AudioAnalysed { summary, by, .. } => Some((summary.clone(), by.clone())),
        _ => None,
    });
    let (summary, by) = analysed.expect("AudioAnalysed broadcast");
    assert_eq!(by, "dr-a");
    assert!(summary.contains("speech"), "{summary}");

    // The analysis persisted into FLD_SECTORS.
    let stored = srv.database().get_audio("dr-b", audio_id).unwrap();
    let decoded = rcmo_audio::segment::decode_segments(&stored.sectors).unwrap();
    assert_eq!(decoded, segments);

    // Non-members cannot share into the room.
    assert!(srv.analyse_audio(room, "admin", audio_id).is_err());
}

#[test]
fn triggers_fire_on_matching_events() {
    use crate::events::TriggerCondition;
    let (srv, doc_id, image_id, ct, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let a = srv.join_default(room, "dr-a").unwrap();
    let b = srv.join_default(room, "dr-b").unwrap();
    srv.open_image(room, "dr-a", image_id).unwrap();
    // dr-b wants to know when anyone touches the CT component or mentions
    // "urgent" in chat.
    let t1 = srv
        .add_trigger(room, "dr-b", TriggerCondition::ChoiceOn { component: ct })
        .unwrap();
    let t2 = srv
        .add_trigger(
            room,
            "dr-b",
            TriggerCondition::ChatContains {
                needle: "urgent".into(),
            },
        )
        .unwrap();
    drain(&a);
    drain(&b);

    srv.act(
        room,
        "dr-a",
        Action::Choose {
            component: ct,
            form: 1,
        },
    )
    .unwrap();
    srv.act(
        room,
        "dr-a",
        Action::Chat {
            text: "nothing special".into(),
        },
    )
    .unwrap();
    srv.act(
        room,
        "dr-a",
        Action::Chat {
            text: "this is urgent!".into(),
        },
    )
    .unwrap();

    let events = drain(&b);
    let fired: Vec<(u64, String)> = events
        .iter()
        .filter_map(|e| match e {
            RoomEvent::TriggerFired { trigger, cause, .. } => Some((*trigger, cause.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(fired.len(), 2, "{fired:?}");
    assert_eq!(fired[0].0, t1);
    assert_eq!(fired[1].0, t2);
    assert!(fired[1].1.contains("urgent"));
    // Both partners observed the fired triggers (shared room semantics).
    let a_events = drain(&a);
    let a_fired = a_events
        .iter()
        .filter(|e| matches!(e, RoomEvent::TriggerFired { .. }))
        .count();
    assert_eq!(a_fired, 2);

    // Only the owner can remove; unknown id errors.
    assert!(srv.remove_trigger(room, "dr-a", t1).is_err());
    srv.remove_trigger(room, "dr-b", t1).unwrap();
    assert!(srv.remove_trigger(room, "dr-b", 999).is_err());
    drain(&b);
    srv.act(
        room,
        "dr-a",
        Action::Choose {
            component: ct,
            form: 0,
        },
    )
    .unwrap();
    let events = drain(&b);
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, RoomEvent::TriggerFired { .. })),
        "removed trigger must not fire"
    );
}

#[test]
fn admin_broadcast_reaches_all_rooms() {
    let (srv, doc_id, _, _, _) = setup();
    let r1 = srv.create_room("dr-a", "one", doc_id).unwrap();
    let r2 = srv.create_room("dr-b", "two", doc_id).unwrap();
    let a = srv.join_default(r1, "dr-a").unwrap();
    let b = srv.join_default(r2, "dr-b").unwrap();
    drain(&a);
    drain(&b);
    // Non-admins cannot broadcast.
    assert!(srv.broadcast_announcement("dr-a", "hi").is_err());
    let reached = srv
        .broadcast_announcement("admin", "maintenance at 18:00")
        .unwrap();
    assert_eq!(reached, 2);
    for conn in [&a, &b] {
        let events = drain(conn);
        assert!(events.iter().any(|e| matches!(
            e,
            RoomEvent::Chat { user, text } if user.contains("announcement") && text.contains("maintenance")
        )));
    }
}

#[test]
fn dead_members_are_reaped_and_their_freezes_released() {
    let (srv, doc_id, image_id, _, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let a = srv.join_default(room, "dr-a").unwrap();
    let b = srv.join_default(room, "dr-b").unwrap();
    srv.open_image(room, "dr-a", image_id).unwrap();
    srv.act(room, "dr-b", Action::Freeze { object: image_id })
        .unwrap();
    drain(&a);

    // dr-b's client crashes: the receiver is dropped without leaving.
    drop(b);
    // Nothing is detected until the next broadcast...
    assert_eq!(srv.members(room).unwrap(), vec!["dr-a", "dr-b"]);
    srv.act(
        room,
        "dr-a",
        Action::Chat {
            text: "anyone there?".into(),
        },
    )
    .unwrap();
    // ...which reaps dr-b and releases the freeze.
    assert_eq!(srv.members(room).unwrap(), vec!["dr-a"]);
    let events = drain(&a);
    assert!(events.iter().any(
        |e| matches!(e, RoomEvent::Released { object, by } if *object == image_id && by == "dr-b")
    ));
    assert!(events
        .iter()
        .any(|e| matches!(e, RoomEvent::Left { user } if user == "dr-b")));
    // dr-a can take over the object.
    srv.act(room, "dr-a", Action::Freeze { object: image_id })
        .unwrap();

    let stats = srv.room_stats(room).unwrap();
    assert_eq!(stats.members_reaped, 1);
    assert!(stats.delivery_failures > 0, "failed send was recorded");
}

#[test]
fn failed_sends_are_not_counted_as_delivered() {
    let (srv, doc_id, _, _, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let a = srv.join_default(room, "dr-a").unwrap();
    let b = srv.join_default(room, "dr-b").unwrap();
    drain(&a);
    let before = srv.room_stats(room).unwrap();
    drop(b);
    srv.act(
        room,
        "dr-a",
        Action::Chat {
            text: "ping".into(),
        },
    )
    .unwrap();
    let after = srv.room_stats(room).unwrap();
    // The chat reached dr-a only; the send to dr-b (and the follow-up
    // Left, sent to dr-a) must split cleanly between the two counters.
    assert_eq!(after.delivery_failures, before.delivery_failures + 1);
    // Delivered events grew by exactly the successful sends: chat → dr-a,
    // Left → dr-a.
    assert_eq!(after.events_delivered, before.events_delivered + 2);
}

#[test]
fn resync_within_horizon_replays_identical_order() {
    let (srv, doc_id, _, ct, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let a = srv.join_default(room, "dr-a").unwrap();
    let b = srv.join_default(room, "dr-b").unwrap();

    // dr-b observes some events, then its connection dies.
    srv.act(
        room,
        "dr-b",
        Action::Chat {
            text: "before".into(),
        },
    )
    .unwrap();
    let mut b_seen: Vec<SequencedEvent> = b.events.try_iter().collect();
    let last_seen = b_seen.last().map(|e| e.seq).unwrap_or(0);
    drop(b);

    // Life goes on while dr-b is gone (dr-b gets reaped along the way).
    srv.act(
        room,
        "dr-a",
        Action::Chat {
            text: "while you were out".into(),
        },
    )
    .unwrap();
    srv.act(
        room,
        "dr-a",
        Action::Choose {
            component: ct,
            form: 1,
        },
    )
    .unwrap();
    srv.act(
        room,
        "dr-a",
        Action::Chat {
            text: "still going".into(),
        },
    )
    .unwrap();

    // dr-b reconnects with the last sequence number it saw.
    let (b2, catch_up) = srv.resync(room, "dr-b", last_seen).unwrap();
    let replay = match catch_up {
        Resync::Events(events) => events,
        other => panic!("expected event replay, got {other:?}"),
    };
    assert!(!replay.is_empty());
    srv.act(
        room,
        "dr-a",
        Action::Chat {
            text: "welcome back".into(),
        },
    )
    .unwrap();

    // Replay ++ live stream must equal dr-a's uninterrupted view, except
    // for events sent before dr-b first joined.
    b_seen.extend(replay);
    b_seen.extend(b2.events.try_iter());
    let a_seen: Vec<SequencedEvent> = a.events.try_iter().collect();
    let a_tail: Vec<&SequencedEvent> = a_seen.iter().filter(|e| e.seq >= b_seen[0].seq).collect();
    assert_eq!(a_tail.len(), b_seen.len(), "no event lost or duplicated");
    for (x, y) in a_tail.iter().zip(b_seen.iter()) {
        assert_eq!(**x, *y, "identical total event order");
    }
    // Sequence numbers are dense and strictly increasing.
    for w in b_seen.windows(2) {
        assert_eq!(w[1].seq, w[0].seq + 1);
    }
    assert_eq!(srv.members(room).unwrap(), vec!["dr-a", "dr-b"]);
}

#[test]
fn resync_beyond_horizon_returns_snapshot() {
    let (srv, doc_id, image_id, _, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    let b = srv.join_default(room, "dr-b").unwrap();
    srv.configure_room(room, "dr-a", RoomConfig::new().with_change_log_capacity(8))
        .unwrap();
    srv.open_image(room, "dr-a", image_id).unwrap();
    srv.act(room, "dr-a", Action::Freeze { object: image_id })
        .unwrap();
    drop(b);
    for i in 0..20 {
        srv.act(
            room,
            "dr-a",
            Action::Chat {
                text: format!("m{i}"),
            },
        )
        .unwrap();
    }

    let (b2, catch_up) = srv.resync(room, "dr-b", 2).unwrap();
    let snap = match catch_up {
        Resync::Snapshot(s) => s,
        other => panic!("expected snapshot, got {other:?}"),
    };
    // The snapshot reflects the room state at its seq: document, open
    // objects, freezes, members. dr-b had been reaped, so the rejoin
    // broadcast one `Joined` event *after* the snapshot was taken.
    assert_eq!(snap.seq + 1, srv.last_seq(room).unwrap());
    assert!(!snap.document.is_empty());
    assert_eq!(snap.objects.len(), 1);
    assert_eq!(snap.objects[0].0, image_id);
    assert_eq!(snap.freezes, vec![(image_id, "dr-a".to_string())]);
    assert!(snap.members.contains(&"dr-a".to_string()));
    // Live events resume after the snapshot seq.
    srv.act(
        room,
        "dr-a",
        Action::Chat {
            text: "post-snap".into(),
        },
    )
    .unwrap();
    let live: Vec<SequencedEvent> = b2.events.try_iter().collect();
    assert!(live.iter().all(|e| e.seq > snap.seq));
    assert!(live
        .iter()
        .any(|e| matches!(&e.event, RoomEvent::Chat { text, .. } if text == "post-snap")));
}

#[test]
fn change_log_is_bounded_under_stress() {
    let (srv, doc_id, _, _, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let a = srv.join_default(room, "dr-a").unwrap();
    srv.configure_room(
        room,
        "dr-a",
        RoomConfig::new().with_change_log_capacity(256),
    )
    .unwrap();
    for i in 0..10_000 {
        srv.act(
            room,
            "dr-a",
            Action::Chat {
                text: format!("event {i}"),
            },
        )
        .unwrap();
        if i % 1000 == 0 {
            drain(&a); // keep the client channel from growing instead
        }
    }
    assert_eq!(srv.change_log_len(room).unwrap(), 256);
    assert_eq!(srv.last_seq(room).unwrap(), 10_001); // 1 join + 10k chats
                                                     // A barely-behind client still replays; an ancient one snapshots.
    let (_c1, catch_up) = srv.resync(room, "dr-b", 10_000).unwrap();
    assert!(matches!(catch_up, Resync::Events(e) if e.len() == 1));
    let (_c2, catch_up) = srv.resync(room, "dr-b", 5).unwrap();
    assert!(matches!(catch_up, Resync::Snapshot(_)));
}

#[test]
fn render_presentation_shows_content_pane() {
    let (srv, doc_id, _, ct, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    let text = srv.render_presentation(room, "dr-a").unwrap();
    assert!(text.contains("CT: flat"));
    assert!(text.contains("X-ray: icon"));
    srv.act(
        room,
        "dr-a",
        Action::Choose {
            component: ct,
            form: 2,
        },
    )
    .unwrap();
    let text = srv.render_presentation(room, "dr-a").unwrap();
    assert!(!text.contains("CT: flat"));
    assert!(text.contains("X-ray: flat"));
    assert!(srv.render_presentation(room, "ghost").is_err());
}

#[test]
fn debug_format_never_locks_the_room_map() {
    let (srv, doc_id, _, _, _) = setup();
    let r1 = srv.create_room("dr-a", "one", doc_id).unwrap();
    srv.create_room("dr-a", "two", doc_id).unwrap();
    // Formatting while this very thread holds a room's lock (as a room op
    // would if it logged the server) must not deadlock: `Debug` reads the
    // atomic room counter, touching no lock at all.
    let handle = srv.room_handle(r1).unwrap();
    let _room = handle.lock();
    assert_eq!(format!("{srv:?}"), "InteractionServer(rooms=2)");
}

#[test]
fn announcement_does_not_hold_the_map_across_rooms() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let (srv, doc_id, _, _, _) = setup();
    let srv = Arc::new(srv);
    let r1 = srv.create_room("dr-a", "stalled", doc_id).unwrap();
    let r2 = srv.create_room("dr-a", "healthy", doc_id).unwrap();
    let _a1 = srv.join_default(r1, "dr-a").unwrap();
    let _a2 = srv.join_default(r2, "dr-a").unwrap();

    // Simulate a room stuck in a slow operation: its lock is held for the
    // duration of the announcement attempt.
    let stalled = srv.room_handle(r1).unwrap();
    let guard = stalled.lock();

    let done = Arc::new(AtomicBool::new(false));
    let announcer = {
        let srv = Arc::clone(&srv);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let reached = srv.broadcast_announcement("admin", "maintenance").unwrap();
            done.store(true, Ordering::SeqCst);
            reached
        })
    };
    // Give the announcer time to snapshot the map and block on r1's lock.
    std::thread::sleep(std::time::Duration::from_millis(40));
    assert!(
        !done.load(Ordering::SeqCst),
        "announcer should be blocked on the stalled room"
    );

    // The old implementation held the room-map lock across the delivery
    // loop, so *every* other server operation stalled behind r1. Now the
    // map is free: traffic in other rooms and room creation proceed.
    srv.act(
        r2,
        "dr-a",
        Action::Chat {
            text: "unaffected".into(),
        },
    )
    .unwrap();
    let r3 = srv.create_room("dr-a", "new", doc_id).unwrap();
    assert!(srv.members(r3).unwrap().is_empty());
    assert!(!done.load(Ordering::SeqCst), "announcer is still blocked");

    drop(guard);
    let reached = announcer.join().unwrap();
    // r3 was created after the snapshot, so only the two original rooms
    // are guaranteed reached (the announcer may or may not have seen r3).
    assert!(reached >= 2);
}

#[test]
fn rooms_progress_in_parallel_while_one_room_is_stalled() {
    use std::sync::Arc;
    let (srv, doc_id, image_id, _, _) = setup();
    let srv = Arc::new(srv);
    let slow = srv.create_room("dr-a", "slow", doc_id).unwrap();
    let fast = srv.create_room("dr-a", "fast", doc_id).unwrap();
    let _s = srv.join_default(slow, "dr-a").unwrap();
    let _f = srv.join_default(fast, "dr-b").unwrap();
    srv.open_image(fast, "dr-b", image_id).unwrap();

    // Pin the slow room's lock (a long CT decode, say) ...
    let handle = srv.room_handle(slow).unwrap();
    let guard = handle.lock();
    // ... and drive a full workload through the *other* room from this
    // same thread. Under the global room lock this deadlocked immediately.
    srv.act(fast, "dr-b", Action::Chat { text: "hi".into() })
        .unwrap();
    srv.act(
        fast,
        "dr-b",
        Action::AddLine {
            object: image_id,
            element: LineElement {
                x0: 0,
                y0: 0,
                x1: 63,
                y1: 63,
                intensity: 180,
            },
        },
    )
    .unwrap();
    assert!(srv.render_object(fast, image_id).is_ok());
    assert!(srv.presentation(fast, "dr-b").is_ok());
    assert_eq!(srv.members(fast).unwrap(), vec!["dr-b".to_string()]);
    drop(guard);
    // The stalled room is live again.
    srv.act(
        slow,
        "dr-a",
        Action::Chat {
            text: "done".into(),
        },
    )
    .unwrap();
}

/// The satellite stress test: 4 rooms × 2 actors (8 actor threads) plus a
/// churn thread (create_room/join/leave) and an observer thread
/// (`metrics()`, `Debug`, `room_stats`) all running concurrently. Asserts
/// per-room isolation and event-sequence integrity afterwards.
#[test]
fn stress_concurrent_rooms_members_and_observers() {
    use std::sync::Arc;
    const ROOMS: usize = 4;
    const ACTORS_PER_ROOM: usize = 2;
    const OPS: usize = 40;

    let (srv, doc_id, image_id, ct, _) = setup();
    for r in 0..ROOMS {
        for a in 0..ACTORS_PER_ROOM {
            srv.database()
                .put_user(
                    "admin",
                    &format!("u-{r}-{a}"),
                    rcmo_mediadb::AccessLevel::Write,
                )
                .unwrap();
        }
    }
    srv.database()
        .put_user("admin", "churn", rcmo_mediadb::AccessLevel::Write)
        .unwrap();
    let srv = Arc::new(srv);

    let rooms: Vec<RoomId> = (0..ROOMS)
        .map(|r| {
            srv.create_room("dr-a", &format!("room-{r}"), doc_id)
                .unwrap()
        })
        .collect();
    let mut conns = Vec::new();
    for (r, &room) in rooms.iter().enumerate() {
        for a in 0..ACTORS_PER_ROOM {
            conns.push((
                (r, a),
                srv.join_default(room, &format!("u-{r}-{a}")).unwrap(),
            ));
        }
        srv.open_image(room, &format!("u-{r}-0"), image_id).unwrap();
    }

    let mut handles = Vec::new();
    // 8 actor threads: mixed chat / annotation / choice / presentation /
    // render traffic, each bound to its own room.
    for (r, &room) in rooms.iter().enumerate() {
        for a in 0..ACTORS_PER_ROOM {
            let srv = Arc::clone(&srv);
            let user = format!("u-{r}-{a}");
            handles.push(std::thread::spawn(move || {
                for i in 0..OPS {
                    match i % 5 {
                        0 => srv
                            .act(
                                room,
                                &user,
                                Action::Chat {
                                    text: format!("{user} {i}"),
                                },
                            )
                            .unwrap(),
                        1 => srv
                            .act(
                                room,
                                &user,
                                Action::AddLine {
                                    object: image_id,
                                    element: LineElement {
                                        x0: (i % 64) as i64,
                                        y0: 0,
                                        x1: 63,
                                        y1: (i % 64) as i64,
                                        intensity: 150,
                                    },
                                },
                            )
                            .unwrap(),
                        2 => {
                            let _ = srv.act(
                                room,
                                &user,
                                Action::Choose {
                                    component: ct,
                                    form: i % 2,
                                },
                            );
                        }
                        3 => {
                            srv.presentation(room, &user).unwrap();
                        }
                        _ => {
                            srv.render_object(room, image_id).unwrap();
                        }
                    }
                }
            }));
        }
    }
    // Churn thread: rooms are created, joined, left and (implicitly)
    // observed while the actors hammer theirs.
    {
        let srv = Arc::clone(&srv);
        handles.push(std::thread::spawn(move || {
            for i in 0..12 {
                let room = srv
                    .create_room("churn", &format!("churn-{i}"), doc_id)
                    .unwrap();
                let _c = srv.join_default(room, "churn").unwrap();
                srv.act(
                    room,
                    "churn",
                    Action::Chat {
                        text: "hello".into(),
                    },
                )
                .unwrap();
                srv.leave(room, "churn").unwrap();
            }
        }));
    }
    // Observer thread: metrics snapshots and Debug formatting must never
    // deadlock against any of the above.
    {
        let srv = Arc::clone(&srv);
        handles.push(std::thread::spawn(move || {
            for _ in 0..60 {
                let snap = srv.metrics();
                assert!(snap.counters.contains_key("server.rooms.map.read.count"));
                let _ = format!("{srv:?}");
                std::thread::yield_now();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Per-room integrity: each member of a room saw the identical total
    // order with dense sequence numbers, and only its own room's traffic.
    for (r, &room) in rooms.iter().enumerate() {
        let mut streams: Vec<Vec<SequencedEvent>> = Vec::new();
        for ((cr, _), conn) in &conns {
            if *cr == r {
                streams.push(conn.events.try_iter().collect());
            }
        }
        assert_eq!(streams.len(), ACTORS_PER_ROOM);
        // Both actors joined before the traffic, so from the second join on
        // their streams coincide; compare the common suffix.
        let n = streams.iter().map(|s| s.len()).min().unwrap();
        assert!(n > 0);
        for w in streams.windows(2) {
            assert_eq!(
                w[0][w[0].len() - n..],
                w[1][w[1].len() - n..],
                "room {room}: members diverged"
            );
        }
        for s in &streams {
            assert!(
                s.windows(2).all(|w| w[1].seq == w[0].seq + 1),
                "room {room}: sequence gap"
            );
            // Isolation: no event names a user of another room.
            for ev in s {
                let dump = format!("{:?}", ev.event);
                for or in 0..ROOMS {
                    if or != r {
                        assert!(
                            !dump.contains(&format!("u-{or}-")),
                            "room {room} leaked an event from room index {or}: {dump}"
                        );
                    }
                }
            }
        }
        assert_eq!(
            srv.last_seq(room).unwrap(),
            srv.change_log_len(room).unwrap() as u64
        );
    }
    // The lock instrumentation saw the whole run.
    let snap = srv.metrics();
    let wait = snap.histograms.get("server.room.lock.wait.us").unwrap();
    let hold = snap.histograms.get("server.room.lock.hold.us").unwrap();
    assert!(wait.count > 0 && hold.count > 0);
    assert!(snap.counters["server.rooms.map.write.count"] >= (ROOMS + 12) as u64);
}

// ---------------------------------------------------------------------
// Roles, capabilities, and the shared-payload fan-out.

/// Asserts that `res` is an `ActionRejected` naming exactly `cap` and the
/// viewer role.
fn assert_viewer_denied<T: std::fmt::Debug>(res: Result<T>, cap: Capability) {
    match res {
        Err(ServerError::ActionRejected {
            required_capability,
            role,
        }) => {
            assert_eq!(required_capability, cap);
            assert_eq!(role, Role::Viewer);
        }
        other => panic!("expected ActionRejected({cap}), got {other:?}"),
    }
}

#[test]
fn viewer_is_denied_at_every_mutating_entry_point() {
    let (srv, doc_id, image_id, ct, _) = setup();
    let room = srv.create_room("dr-a", "lecture", doc_id).unwrap();
    let _prof = srv.join(room, &JoinRequest::presenter("dr-a")).unwrap();
    let viewer = srv.join(room, &JoinRequest::viewer("dr-b")).unwrap();
    assert_eq!(viewer.role, Role::Viewer);
    srv.open_image(room, "dr-a", image_id).unwrap();

    use Capability::*;
    assert_viewer_denied(
        srv.act(
            room,
            "dr-b",
            Action::AddText {
                object: image_id,
                element: TextElement {
                    x: 1,
                    y: 1,
                    text: "no".into(),
                    intensity: 255,
                    scale: 1,
                },
            },
        ),
        AnnotateObjects,
    );
    assert_viewer_denied(
        srv.act(
            room,
            "dr-b",
            Action::AddLine {
                object: image_id,
                element: LineElement {
                    x0: 0,
                    y0: 0,
                    x1: 1,
                    y1: 1,
                    intensity: 255,
                },
            },
        ),
        AnnotateObjects,
    );
    assert_viewer_denied(
        srv.act(room, "dr-b", Action::Freeze { object: image_id }),
        FreezeObjects,
    );
    assert_viewer_denied(
        srv.act(
            room,
            "dr-b",
            Action::ApplyOperation {
                component: ct,
                trigger_form: 0,
                operation: "segmentation".into(),
                global: true,
            },
        ),
        ApplyGlobalOperation,
    );
    assert_viewer_denied(srv.open_image(room, "dr-b", image_id), OpenObjects);
    assert_viewer_denied(
        srv.save_and_close_image(room, "dr-b", image_id),
        SaveObjects,
    );
    assert_viewer_denied(srv.save_document(room, "dr-b"), SaveObjects);
    // The capability gate fires before the audio object is even fetched.
    assert_viewer_denied(srv.analyse_audio(room, "dr-b", 9_999), ShareAnalysis);
    assert_viewer_denied(
        srv.add_trigger(
            room,
            "dr-b",
            TriggerCondition::ChatContains { needle: "x".into() },
        ),
        ManageTriggers,
    );
    assert_viewer_denied(
        srv.configure_room(room, "dr-b", RoomConfig::new().with_capacity(Some(2))),
        ConfigureRoom,
    );
    assert_viewer_denied(srv.evict(room, "dr-b", "dr-a"), EvictMembers);
    assert_viewer_denied(
        srv.hand_off_presenter(room, "dr-b", "dr-a"),
        HandOffPresenter,
    );

    // Every denial above was counted, and none mutated room state.
    assert_eq!(srv.room_stats(room).unwrap().actions_denied, 12);
    assert!(srv.object_elements(room, image_id).is_ok());

    // What the viewer *can* do: chat and adjust their own view.
    srv.act(
        room,
        "dr-b",
        Action::Chat {
            text: "question!".into(),
        },
    )
    .unwrap();
    srv.act(
        room,
        "dr-b",
        Action::Choose {
            component: ct,
            form: 1,
        },
    )
    .unwrap();
}

#[test]
fn moderator_evicts_and_the_seat_is_freed() {
    let (srv, doc_id, image_id, _, _) = setup();
    srv.database()
        .put_user("admin", "student", rcmo_mediadb::AccessLevel::Read)
        .unwrap();
    let room = srv.create_room("dr-a", "lecture", doc_id).unwrap();
    let _prof = srv.join(room, &JoinRequest::presenter("dr-a")).unwrap();
    let moderator = srv.join(room, &JoinRequest::moderator("dr-b")).unwrap();
    let _student = srv.join(room, &JoinRequest::viewer("student")).unwrap();
    srv.open_image(room, "dr-a", image_id).unwrap();

    // The presenter cannot be evicted, nor can the moderator evict
    // themselves.
    assert!(srv.evict(room, "dr-b", "dr-a").is_err());
    assert!(srv.evict(room, "dr-b", "dr-b").is_err());

    srv.evict(room, "dr-b", "student").unwrap();
    assert!(!srv.members(room).unwrap().contains(&"student".to_string()));
    // Voluntary-removal semantics: an evicted member holds no reserved
    // role...
    assert_eq!(srv.role_of(room, "student").unwrap(), None);
    // ...and the eviction is a first-class event naming the authority.
    let seen = drain(&moderator);
    assert!(seen.contains(&RoomEvent::Evicted {
        user: "student".into(),
        by: "dr-b".into(),
    }));
    // They may rejoin — as whatever role they ask for afresh.
    let back = srv.join(room, &JoinRequest::viewer("student")).unwrap();
    assert_eq!(back.role, Role::Viewer);
}

#[test]
fn presenter_seat_is_unique_and_hands_off_mid_session() {
    let (srv, doc_id, _, ct, _) = setup();
    let room = srv.create_room("dr-a", "lecture", doc_id).unwrap();
    let prof = srv.join(room, &JoinRequest::presenter("dr-a")).unwrap();
    assert_eq!(prof.role, Role::Presenter);
    assert_eq!(srv.presenter(room).unwrap().as_deref(), Some("dr-a"));

    // A second presenter join is rejected with the structured cause (and
    // the cause is non-transient: clients should not retry it).
    match srv.join(room, &JoinRequest::presenter("dr-b")) {
        Err(ServerError::JoinRejected { cause, .. }) => {
            assert_eq!(cause, crate::error::JoinRejectCause::PresenterSeatTaken);
            assert!(!cause.is_transient());
        }
        other => panic!("expected PresenterSeatTaken, got {other:?}"),
    }

    let b = srv.join(room, &JoinRequest::moderator("dr-b")).unwrap();
    drain(&prof);
    drain(&b);

    // Only the presenter may hand off; mid-session the seat moves as a
    // demote-then-promote pair so no event prefix shows two presenters.
    assert!(srv.hand_off_presenter(room, "dr-b", "dr-a").is_err());
    srv.hand_off_presenter(room, "dr-a", "dr-b").unwrap();
    assert_eq!(
        drain(&b),
        vec![
            RoomEvent::RoleChanged {
                user: "dr-a".into(),
                role: Role::Moderator,
            },
            RoomEvent::RoleChanged {
                user: "dr-b".into(),
                role: Role::Presenter,
            },
        ]
    );
    assert_eq!(srv.presenter(room).unwrap().as_deref(), Some("dr-b"));
    assert_eq!(srv.role_of(room, "dr-a").unwrap(), Some(Role::Moderator));

    // The new presenter drives; the old one no longer holds the seat.
    srv.act(
        room,
        "dr-b",
        Action::ApplyOperation {
            component: ct,
            trigger_form: 0,
            operation: "zoom".into(),
            global: true,
        },
    )
    .unwrap();
    assert!(srv.hand_off_presenter(room, "dr-a", "dr-b").is_err());
}

#[test]
fn slow_consumer_is_evicted_and_reclaims_role_by_resync() {
    let (srv, doc_id, _, _, _) = setup();
    let room = srv.create_room("dr-a", "lecture", doc_id).unwrap();
    let prof = srv.join(room, &JoinRequest::presenter("dr-a")).unwrap();
    // A viewer on a tiny queue who never drains: the modem client.
    let stalled = srv
        .join(room, &JoinRequest::viewer("dr-b").with_queue_bound(3))
        .unwrap();

    for i in 0..8 {
        srv.act(
            room,
            "dr-a",
            Action::Chat {
                text: format!("slide {i}"),
            },
        )
        .unwrap();
    }
    // The stalled member was evicted without ever blocking the presenter.
    assert!(!srv.members(room).unwrap().contains(&"dr-b".to_string()));
    assert!(srv.room_stats(room).unwrap().slow_consumers_evicted >= 1);
    let prof_saw = drain(&prof);
    assert!(prof_saw.contains(&RoomEvent::Left {
        user: "dr-b".into()
    }));

    // Involuntary removal keeps the seat reserved: the resync path hands
    // it back, with a snapshot catch-up (their queue bound was far behind
    // the replay horizon is irrelevant — they were removed, so the room
    // replays or snapshots from their last seen seq).
    assert_eq!(srv.role_of(room, "dr-b").unwrap(), Some(Role::Viewer));
    let (back, catch_up) = srv.resync(room, "dr-b", 2).unwrap();
    assert_eq!(back.role, Role::Viewer);
    match catch_up {
        Resync::Events(evs) => assert!(!evs.is_empty()),
        Resync::Snapshot(snap) => assert!(snap.seq > 0),
    }
    drop(stalled);
}

#[test]
fn shared_payload_is_encoded_once_per_event() {
    let (srv, doc_id, _, _, _) = setup();
    let room = srv.create_room("dr-a", "lecture", doc_id).unwrap();
    let _prof = srv.join(room, &JoinRequest::presenter("dr-a")).unwrap();
    let audience: Vec<ClientConnection> = (0..16)
        .map(|i| {
            let user = format!("v-{i}");
            srv.database()
                .put_user("admin", &user, rcmo_mediadb::AccessLevel::Read)
                .unwrap();
            srv.join(room, &JoinRequest::viewer(&user)).unwrap()
        })
        .collect();

    let before = srv.room_stats(room).unwrap();
    for i in 0..10 {
        srv.act(
            room,
            "dr-a",
            Action::Chat {
                text: format!("slide {i}"),
            },
        )
        .unwrap();
    }
    let after = srv.room_stats(room).unwrap();
    // Encode-once: 10 events → 10 encodes, though 17 members each got a
    // copy delivered (pointer fan-out, not payload fan-out).
    assert_eq!(after.events_encoded - before.events_encoded, 10);
    assert!(after.events_delivered - before.events_delivered >= 10 * 17);
    for conn in &audience {
        let seqs: Vec<u64> = conn.events.try_iter().map(|e| e.seq).collect();
        // Every viewer observed a gap-free suffix of the room's order.
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(*seqs.last().unwrap(), srv.last_seq(room).unwrap());
    }
}

// ---------------------------------------------------------------------
// Bandwidth-adaptive delivery (DESIGN.md §16).

/// Adds a layered LIC1 image to the database and returns its id.
fn insert_lic_image(srv: &InteractionServer) -> u64 {
    let img = ct_phantom(64, 2, 5).unwrap();
    let data = rcmo_codec::encode(&img, &rcmo_codec::EncoderConfig::default()).unwrap();
    srv.database()
        .insert_image(
            "admin",
            &ImageObject {
                name: "ct-layered".to_string(),
                quality: 0,
                texts: String::new(),
                cm: Vec::new(),
                data,
            },
        )
        .unwrap()
}

#[test]
fn delivery_depth_tracks_the_members_bandwidth() {
    let (srv, doc_id, _, _, _) = setup();
    let lic_id = insert_lic_image(&srv);
    // A tight render budget so a 64×64 phantom still discriminates: at
    // 50 ms, a modem carries only the base layer and a LAN all of them.
    srv.set_delivery_config(crate::delivery::DeliveryConfig {
        ttfr_budget_s: 0.05,
        ..crate::delivery::DeliveryConfig::default()
    });
    let room = srv.create_room("dr-a", "clinic", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();

    // No estimate yet: the policy's default bandwidth applies; the chosen
    // depth comes from the object's real ladder.
    let first = srv.deliver_image(room, "dr-a", lic_id).unwrap();
    assert!(first.layers >= 1 && first.layers <= first.total_layers);
    assert!(first.estimate_bps.is_none());
    assert!(first.payload.starts_with(b"LIC1"));

    // A 56k-modem transfer report drags the estimate down to base depth…
    srv.report_transfer(room, "dr-a", 7_000, 1.0).unwrap();
    let slow = srv.deliver_image(room, "dr-a", lic_id).unwrap();
    assert_eq!(slow.layers, 1, "modem viewer gets the base layer");
    assert!(slow.payload.len() < slow.full_bytes as usize);
    // …and the prefix decodes to a coarse render.
    assert!(rcmo_codec::decode(&slow.payload).is_ok());

    // Repeated LAN-speed reports recover full depth.
    for _ in 0..8 {
        srv.report_transfer(room, "dr-a", 1_250_000, 1.0).unwrap();
    }
    assert!(srv.estimated_bandwidth(room, "dr-a").unwrap().unwrap() > 1_000_000.0);
    let fast = srv.deliver_image(room, "dr-a", lic_id).unwrap();
    assert_eq!(fast.layers, fast.total_layers);
    assert!(fast.is_full_depth());
}

#[test]
fn room_cache_makes_storage_reads_per_object_not_per_viewer() {
    let (srv, doc_id, _, _, _) = setup();
    let lic_id = insert_lic_image(&srv);
    let room = srv.create_room("dr-a", "lecture", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    let viewers: Vec<String> = (0..20).map(|i| format!("student-{i}")).collect();
    // Keep the connections alive: a dropped stream gets its member reaped.
    let mut conns = Vec::new();
    for v in &viewers {
        srv.database()
            .put_user("admin", v, rcmo_mediadb::AccessLevel::Read)
            .unwrap();
        conns.push(srv.join(room, &JoinRequest::viewer(v)).unwrap());
    }
    for v in &viewers {
        srv.deliver_image(room, v, lic_id).unwrap();
    }
    let snap = srv.metrics();
    // 20 viewers, one storage miss; everyone else rode the Arc.
    assert_eq!(snap.counters["server.delivery.cache.miss.count"], 1);
    assert!(snap.counters["server.delivery.cache.hit.count"] >= 19);
    // Same full payload: same allocation, shared across deliveries.
    let d1 = srv.deliver_image(room, "student-0", lic_id).unwrap();
    let d2 = srv.deliver_image(room, "student-1", lic_id).unwrap();
    assert!(Arc::ptr_eq(&d1.payload, &d2.payload));
}

#[test]
fn saving_an_object_invalidates_its_cached_payloads() {
    let (srv, doc_id, image_id, _, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    srv.open_image(room, "dr-a", image_id).unwrap();
    let before = srv.metrics().counters["server.delivery.cache.miss.count"];
    srv.save_and_close_image(room, "dr-a", image_id).unwrap();
    // The cache dropped the stale payload: reopening re-reads storage.
    srv.open_image(room, "dr-a", image_id).unwrap();
    let snap = srv.metrics();
    assert_eq!(
        snap.counters["server.delivery.cache.miss.count"],
        before + 1
    );
    assert!(snap.counters["server.delivery.cache.invalidate.count"] >= 1);
}

#[test]
fn warm_cache_prefetches_the_documents_stored_images() {
    let (srv, doc_id, image_id, _, _) = setup();
    let room = srv.create_room("dr-a", "consult", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    // The document's CT component references the stored image; warming
    // loads it before anyone asks.
    let warmed = srv.warm_room_cache(room, "dr-a").unwrap();
    assert_eq!(warmed, 1);
    srv.open_image(room, "dr-a", image_id).unwrap();
    let snap = srv.metrics();
    assert_eq!(
        snap.counters["server.delivery.cache.miss.count"], 1,
        "the open after warming is a pure cache hit"
    );
    assert!(snap.counters["server.delivery.cache.hit.count"] >= 1);
}
