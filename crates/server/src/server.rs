//! The interaction server facade: rooms + presentation module + database.

use crate::delivery::{DeliveryConfig, ImageDelivery};
use crate::error::{Result, ServerError};
use crate::events::{Action, TriggerCondition};
use crate::fanout::{EventQueue, EventStream};
use crate::resync::{Resync, SequencedEvent};
use crate::role::{Capability, JoinRequest, Role};
use crate::room::{Room, RoomConfig, RoomId, RoomState, RoomStats, SharedObjectId};
use crossbeam::channel::Sender;
use parking_lot::{Mutex, RwLock};
use rcmo_core::{MultimediaDocument, Presentation};
use rcmo_imaging::{AnnotatedImage, GrayImage};
use rcmo_mediadb::{DocumentObject, MediaDb};
use rcmo_obs::{bounds, Counter, Gauge, Histogram, Metrics, MetricsSnapshot, Registry};
use rcmo_obs::{SharedClock, WallClock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A shareable handle to one room: the second level of the server's
/// two-level locking scheme. Cloning is cheap; the clone keeps the room
/// alive independently of the server's map.
///
/// Lock order: a room lock is a *leaf* — while holding one, never acquire
/// another room's lock or the server's room-map lock. The server itself
/// only ever locks one room at a time.
pub type RoomHandle = Arc<Mutex<Room>>;

/// A room lifted out of its server for a live migration: the exported
/// [`RoomState`] plus the members' live event queues, which the
/// destination re-attaches so clients keep their streams across the move.
#[derive(Debug)]
pub struct DetachedRoom {
    /// The room id (kept across the migration — room ids are
    /// location-independent).
    pub id: RoomId,
    /// The exported state (snapshot + sessions + roles + change-log tail).
    pub state: RoomState,
    /// The live member queues, in join order.
    pub members: Vec<(String, EventQueue)>,
}

/// A client's end of a room: the user name, the granted role, and the
/// event stream.
#[derive(Debug)]
pub struct ClientConnection {
    /// The room joined.
    pub room: RoomId,
    /// The member name.
    pub user: String,
    /// The role the server granted this member (verbatim what the
    /// [`JoinRequest`] asked for — a join that cannot be granted is
    /// rejected, never downgraded).
    pub role: Role,
    /// Events broadcast to the room (including this member's own actions,
    /// so every client observes one identical total order). Each event
    /// carries its sequence number; clients track the highest seen so a
    /// dropped connection can be resumed with
    /// [`InteractionServer::resync`]. The stream is bounded: a client that
    /// stops draining it is evicted as a slow consumer and must resync.
    pub events: EventStream,
}

/// The interaction server of Figure 1. Thread-safe: share by reference (or
/// `Arc`) across client threads.
///
/// Concurrency model (DESIGN.md §11): a lightly-held [`RwLock`] maps
/// `RoomId → Arc<Mutex<Room>>`. Every room operation takes a read lock on
/// the map only long enough to clone the room's handle, then works under
/// that single room's `Mutex` — independent rooms proceed fully in
/// parallel, and one room's slow CT decode no longer stalls the rest of
/// the server. The map's write lock is taken only to insert a fully-built
/// room.
pub struct InteractionServer {
    db: MediaDb,
    rooms: RwLock<HashMap<RoomId, RoomHandle>>,
    next_room: AtomicU64,
    /// Mirror of `rooms.len()`, readable without any lock (used by `Debug`
    /// so formatting the server can never deadlock against a room op).
    room_count: AtomicU64,
    /// Lazily trained audio segmenter shared by all rooms.
    segmenter: OnceLock<rcmo_audio::SegmenterModel>,
    /// Server-wide metrics registry; every room parents into it.
    obs: Registry,
    /// The time source for every latency span the server records. Wall
    /// time in production; the simulator injects a virtual clock so the
    /// same seed reproduces the same histograms bit-for-bit.
    clock: SharedClock,
    /// The adaptive-delivery knobs each room's [`DeliveryState`] is built
    /// from on its first delivery (changing them affects rooms that have
    /// not delivered yet).
    delivery_cfg: Mutex<DeliveryConfig>,
    rooms_active: Gauge,
    map_reads: Counter,
    map_writes: Counter,
    room_lock_wait: Histogram,
    room_lock_hold: Histogram,
}

impl std::fmt::Debug for InteractionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately lock-free: `Debug` may run while this thread (or a
        // panicking one) holds a room or map lock, so it reads the atomic
        // mirror instead of `self.rooms`.
        write!(
            f,
            "InteractionServer(rooms={})",
            self.room_count.load(Ordering::Relaxed)
        )
    }
}

impl InteractionServer {
    /// Creates a server over a multimedia database, timed by wall clock.
    pub fn new(db: MediaDb) -> InteractionServer {
        InteractionServer::new_with_clock(db, WallClock::shared())
    }

    /// Creates a server over a multimedia database with an explicit time
    /// source — the simulator's entry point ([`rcmo_obs::SimClock`]).
    pub fn new_with_clock(db: MediaDb, clock: SharedClock) -> InteractionServer {
        let obs = Registry::new();
        let rooms_active = obs.gauge("server.rooms.active");
        let map_reads = obs.counter("server.rooms.map.read.count");
        let map_writes = obs.counter("server.rooms.map.write.count");
        let room_lock_wait = obs.histogram("server.room.lock.wait.us", bounds::LATENCY_US);
        let room_lock_hold = obs.histogram("server.room.lock.hold.us", bounds::LATENCY_US);
        InteractionServer {
            db,
            rooms: RwLock::new(HashMap::new()),
            next_room: AtomicU64::new(1),
            room_count: AtomicU64::new(0),
            segmenter: OnceLock::new(),
            obs,
            clock,
            delivery_cfg: Mutex::new(DeliveryConfig::default()),
            rooms_active,
            map_reads,
            map_writes,
            room_lock_wait,
            room_lock_hold,
        }
    }

    /// The underlying multimedia database.
    pub fn database(&self) -> &MediaDb {
        &self.db
    }

    /// Number of open rooms — the lock-free atomic mirror every map
    /// mutation keeps in sync, so monitors can poll it without touching
    /// the room map's lock.
    pub fn room_count(&self) -> u64 {
        self.room_count.load(Ordering::Relaxed)
    }

    /// Creates a room around a stored document (fetched through the
    /// database layer; requires read access).
    ///
    /// The room is built — MediaDb fetch, document decode, CP-net wiring —
    /// *before* the map's write lock is taken, so concurrent traffic in
    /// other rooms never waits behind room construction.
    pub fn create_room(&self, user: &str, name: &str, document_id: u64) -> Result<RoomId> {
        self.create_room_with_config(user, name, document_id, RoomConfig::new())
    }

    /// Creates a room with an explicit [`RoomConfig`] — the lecture path:
    /// capacity, change-log horizon, and member queue bound are decided
    /// up front, before the first member joins.
    pub fn create_room_with_config(
        &self,
        user: &str,
        name: &str,
        document_id: u64,
        config: RoomConfig,
    ) -> Result<RoomId> {
        let id = self.next_room.fetch_add(1, Ordering::Relaxed);
        self.create_room_with_id(id, user, name, document_id, config)?;
        Ok(id)
    }

    /// Creates a room under a caller-chosen id — the cluster path: room ids
    /// must be unique *across* shards (they are location-independent keys
    /// in the directory), so a frontend allocates them centrally and every
    /// shard accepts the assignment. Fails if the id is already in use.
    pub fn create_room_with_id(
        &self,
        id: RoomId,
        user: &str,
        name: &str,
        document_id: u64,
        config: RoomConfig,
    ) -> Result<()> {
        config.validate()?;
        let stored = self.db.get_document(user, document_id)?;
        let doc = MultimediaDocument::from_bytes(&stored.data)?;
        // Keep local allocation clear of adopted ids.
        self.next_room.fetch_max(id + 1, Ordering::Relaxed);
        let room = Room::new(
            id,
            name,
            document_id,
            doc,
            config,
            &self.obs,
            self.clock.clone(),
        );
        self.insert_room(id, Arc::new(Mutex::new(room)))
    }

    /// Inserts a built room under the map's write lock, keeping the
    /// `room_count` mirror and gauge in sync.
    fn insert_room(&self, id: RoomId, handle: RoomHandle) -> Result<()> {
        self.map_writes.inc();
        let mut rooms = self.rooms.write();
        if rooms.contains_key(&id) {
            return Err(ServerError::Invalid(format!("room {id} already exists")));
        }
        rooms.insert(id, handle);
        let count = rooms.len() as u64;
        self.room_count.store(count, Ordering::Relaxed);
        self.rooms_active.set(count as i64);
        Ok(())
    }

    /// Removes a room from the server. Members still holding event
    /// receivers simply see their stream end; the detached room itself is
    /// dropped once the last outstanding [`RoomHandle`] clone goes away.
    pub fn close_room(&self, room: RoomId) -> Result<()> {
        self.map_writes.inc();
        let mut rooms = self.rooms.write();
        if rooms.remove(&room).is_none() {
            return Err(ServerError::UnknownRoom(room));
        }
        let count = rooms.len() as u64;
        self.room_count.store(count, Ordering::Relaxed);
        self.rooms_active.set(count as i64);
        Ok(())
    }

    /// Closes every room with no members left (clients left or were
    /// reaped), returning the ids closed. Candidates are found under each
    /// room's own lock first (map read lock released); the removal then
    /// re-verifies emptiness under the map's write lock with a `try_lock`
    /// on the room — never a blocking room lock, so the map → room lock
    /// order is preserved even while holding the write lock. A room that
    /// gained a member (or a migration freeze) between the two checks is
    /// kept.
    pub fn reap_empty_rooms(&self) -> Vec<RoomId> {
        self.map_reads.inc();
        let handles: Vec<(RoomId, RoomHandle)> = self
            .rooms
            .read()
            .iter()
            .map(|(&id, h)| (id, h.clone()))
            .collect();
        let mut empties = Vec::new();
        for (id, handle) in handles {
            let room = handle.lock();
            if room.member_count() == 0 && !room.is_frozen_for_migration() {
                empties.push(id);
            }
        }
        let mut reaped = Vec::new();
        if empties.is_empty() {
            return reaped;
        }
        self.map_writes.inc();
        let mut rooms = self.rooms.write();
        for id in empties {
            let still_empty = rooms
                .get(&id)
                .and_then(|h| h.try_lock().map(|r| r.member_count() == 0))
                .unwrap_or(false);
            if still_empty {
                rooms.remove(&id);
                reaped.push(id);
            }
        }
        let count = rooms.len() as u64;
        self.room_count.store(count, Ordering::Relaxed);
        self.rooms_active.set(count as i64);
        reaped
    }

    /// Freezes a room for migration: mutating calls start failing with
    /// [`ServerError::Migrating`] and the room's state stops changing.
    pub fn freeze_room_for_migration(&self, room: RoomId) -> Result<()> {
        self.with_room(room, |r| {
            r.freeze_for_migration();
            Ok(())
        })
    }

    /// Lifts a migration freeze (the migration was aborted, or the room
    /// was just adopted and is ready to serve).
    pub fn thaw_room(&self, room: RoomId) -> Result<()> {
        self.with_room(room, |r| {
            r.thaw();
            Ok(())
        })
    }

    /// Detaches a room for a live migration: the room must already be
    /// frozen (so the exported state is final); it is removed from this
    /// server's map and returned as state + live member channels. Calls
    /// routed here afterwards see [`ServerError::UnknownRoom`] — the
    /// cluster layer holds the directory entry in `Migrating` state for
    /// the duration, so clients retry rather than fail.
    pub fn detach_room(&self, room: RoomId) -> Result<DetachedRoom> {
        let handle = self.room_handle(room)?;
        {
            let r = handle.lock();
            if !r.is_frozen_for_migration() {
                return Err(ServerError::Invalid(format!(
                    "room {room} must be frozen before detach"
                )));
            }
        }
        self.close_room(room)?;
        let mut r = handle.lock();
        let state = r.export_state();
        let members = r.take_member_channels();
        Ok(DetachedRoom {
            id: room,
            state,
            members,
        })
    }

    /// Adopts a detached (or failover-rebuilt) room: rebuilds it from the
    /// exported state under this server's registry, re-attaches the member
    /// channels, and inserts it thawed. The rebuilt room continues the
    /// source's event order with gap-free sequence numbers.
    pub fn adopt_room(&self, detached: DetachedRoom) -> Result<()> {
        let DetachedRoom { id, state, members } = detached;
        let room = Room::from_state(id, state, members, &self.obs, self.clock.clone())?;
        self.insert_room(id, Arc::new(Mutex::new(room)))
    }

    /// Attaches a replication tap to a room: `tap` observes the room's
    /// sequenced event stream (the identical total order members see)
    /// without being a member — the cluster's journal feed.
    pub fn tap_room(&self, room: RoomId, tap: Sender<Arc<SequencedEvent>>) -> Result<()> {
        self.with_room(room, |r| {
            r.set_tap(tap);
            Ok(())
        })
    }

    /// Reconfigures a live room whole — capacity, change-log horizon,
    /// member queue bound — through one entry point. `user` must be a
    /// member holding [`Capability::ConfigureRoom`] (configuration *before*
    /// any member exists belongs to [`Self::create_room_with_config`]).
    /// Replaces the old per-knob setters (`set_room_capacity`,
    /// `set_change_log_capacity`).
    pub fn configure_room(&self, room: RoomId, user: &str, config: RoomConfig) -> Result<()> {
        self.with_room(room, |r| {
            r.require_capability(user, Capability::ConfigureRoom)?;
            r.apply_config(&config)
        })
    }

    /// A room's current configuration, as one [`RoomConfig`] value.
    pub fn room_config(&self, room: RoomId) -> Result<RoomConfig> {
        self.with_room(room, |r| Ok(r.config()))
    }

    /// The shareable handle of a room (the per-room lock of the two-level
    /// scheme). The map's read lock is held only for the lookup.
    ///
    /// Holding the handle's `Mutex` pins that one room; observe the lock
    /// order documented on [`RoomHandle`] — in particular, never lock two
    /// rooms at once.
    pub fn room_handle(&self, room: RoomId) -> Result<RoomHandle> {
        self.map_reads.inc();
        self.rooms
            .read()
            .get(&room)
            .cloned()
            .ok_or(ServerError::UnknownRoom(room))
    }

    fn with_room<R>(&self, room: RoomId, f: impl FnOnce(&mut Room) -> Result<R>) -> Result<R> {
        let handle = self.room_handle(room)?;
        let queued = self.clock.now_us();
        let mut guard = handle.lock();
        let acquired = self.clock.now_us();
        self.room_lock_wait.record(acquired.saturating_sub(queued));
        let out = f(&mut guard);
        drop(guard);
        self.room_lock_hold
            .record(self.clock.now_us().saturating_sub(acquired));
        out
    }

    /// Joins a room as the role (and with the queue bound) the
    /// [`JoinRequest`] spells out; returns the client connection carrying
    /// the granted role and the bounded event stream. Requires read
    /// access. The requested role is granted verbatim or the join is
    /// rejected — in particular with
    /// [`crate::error::JoinRejectCause::PresenterSeatTaken`] when the
    /// presenter seat is already held.
    pub fn join(&self, room: RoomId, req: &JoinRequest) -> Result<ClientConnection> {
        self.db.list_documents(&req.user)?; // cheap read-permission probe
        let events = self.with_room(room, |r| r.join(req))?;
        Ok(ClientConnection {
            room,
            user: req.user.clone(),
            role: req.role,
            events,
        })
    }

    /// Joins a room as a [`Role::Moderator`] with default queue bounds —
    /// the symmetric room of the paper, where every partner may annotate,
    /// freeze, and save. The thin shim over [`Self::join`] that pre-role
    /// call sites map onto.
    pub fn join_default(&self, room: RoomId, user: &str) -> Result<ClientConnection> {
        self.join(room, &JoinRequest::moderator(user))
    }

    /// Leaves a room (held freezes are released; the member's role seat is
    /// given up).
    pub fn leave(&self, room: RoomId, user: &str) -> Result<()> {
        self.with_room(room, |r| r.leave(user))
    }

    /// Removes `target` from `room` on `by`'s authority
    /// ([`Capability::EvictMembers`] — moderators and the presenter). The
    /// evicted member's seat is freed; they may rejoin, but do not reclaim
    /// a role by resyncing. The presenter cannot be evicted.
    pub fn evict(&self, room: RoomId, by: &str, target: &str) -> Result<()> {
        self.with_room(room, |r| r.evict(by, target))
    }

    /// Hands the presenter seat from `from` (the current presenter) to the
    /// live member `to`: `from` is demoted to moderator, `to` promoted, in
    /// one atomic pair of `RoleChanged` events.
    pub fn hand_off_presenter(&self, room: RoomId, from: &str, to: &str) -> Result<()> {
        self.with_room(room, |r| r.hand_off_presenter(from, to))
    }

    /// The member's current role (live or reserved), if any.
    pub fn role_of(&self, room: RoomId, user: &str) -> Result<Option<Role>> {
        self.with_room(room, |r| Ok(r.role_of(user)))
    }

    /// Who holds the room's presenter seat (live or reserved), if anyone.
    pub fn presenter(&self, room: RoomId) -> Result<Option<String>> {
        self.with_room(room, |r| Ok(r.presenter().map(str::to_string)))
    }

    /// Reconnects a client whose event stream was lost. `last_seen_seq` is
    /// the highest sequence number the client observed (`0` for none).
    ///
    /// Returns a fresh connection plus the catch-up: the exact missed
    /// event tail when it is still within the room's replay horizon
    /// (guaranteeing the client converges to the identical total event
    /// order), or a full [`crate::resync::RoomSnapshot`] when the client
    /// fell too far behind. Requires read access, like [`Self::join`]. A
    /// member removed involuntarily (dead connection, slow consumer)
    /// reclaims their reserved role here.
    pub fn resync(
        &self,
        room: RoomId,
        user: &str,
        last_seen_seq: u64,
    ) -> Result<(ClientConnection, Resync)> {
        self.db.list_documents(user)?; // cheap read-permission probe
        let (events, catch_up, role) = self.with_room(room, |r| {
            let (events, catch_up) = r.resync(user, last_seen_seq)?;
            let role = r.role_of(user).unwrap_or(Role::Moderator);
            Ok((events, catch_up, role))
        })?;
        Ok((
            ClientConnection {
                room,
                user: user.to_string(),
                role,
                events,
            },
            catch_up,
        ))
    }

    /// Performs an action in a room.
    pub fn act(&self, room: RoomId, user: &str, action: Action) -> Result<()> {
        self.with_room(room, |r| r.act(user, action))
    }

    /// The viewer's current presentation of the room's document.
    pub fn presentation(&self, room: RoomId, user: &str) -> Result<Presentation> {
        self.with_room(room, |r| r.presentation_for(user))
    }

    /// The document hierarchy outline (the client GUI's left pane).
    pub fn outline(&self, room: RoomId) -> Result<String> {
        self.with_room(room, |r| Ok(r.document().outline()))
    }

    /// Brings a stored image object into the room as a shared working copy
    /// (annotations accumulate on it). The payload may be a raw `GIM1`
    /// image or a layered `LIC1` bitstream.
    pub fn open_image(&self, room: RoomId, user: &str, object_id: u64) -> Result<()> {
        // Authorise before the (possibly expensive) database fetch and
        // decode: a viewer is refused without costing the server anything.
        // The payload comes through the room's object cache, so a storm of
        // members opening the same CT image costs one storage read; the
        // database ACL is checked for the user whose miss loads the entry,
        // and the room capability gates every cached serve (room members
        // already share object bytes through snapshot resyncs).
        let cfg = self.delivery_config();
        let delivery = self.with_room(room, |r| {
            r.require_capability(user, Capability::OpenObjects)?;
            Ok(r.delivery_state(cfg))
        })?;
        let data = delivery
            .cache()
            .get_or_load(object_id, || Ok(self.db.get_image_data(user, object_id)?))?;
        let image = decode_image_payload(&data)?;
        self.with_room(room, |r| {
            r.require_capability(user, Capability::OpenObjects)?;
            r.insert_object(object_id, AnnotatedImage::new(image));
            Ok(())
        })
    }

    /// The current adaptive-delivery knobs.
    pub fn delivery_config(&self) -> DeliveryConfig {
        *self.delivery_cfg.lock()
    }

    /// Replaces the adaptive-delivery knobs. Applies to rooms whose
    /// delivery state has not been created yet (a room's policy, cache
    /// bound, and estimator smoothing are fixed at its first delivery).
    pub fn set_delivery_config(&self, cfg: DeliveryConfig) {
        *self.delivery_cfg.lock() = cfg;
    }

    /// Serves a stored image to `user` at a bandwidth-adapted layer depth
    /// (DESIGN.md §16): the payload is fetched once per room through the
    /// room's object cache, the depth is chosen by the room's
    /// [`DeliveryPolicy`](crate::delivery::DeliveryPolicy) from the
    /// member's EWMA bandwidth estimate and the object's **real** LIC1
    /// byte ladder, and the returned prefix is an `Arc` shared with every
    /// other member served the same depth. A payload without a decodable
    /// layered header (raw `GIM1`) is served whole — never a
    /// fixed-fraction guess.
    pub fn deliver_image(&self, room: RoomId, user: &str, object_id: u64) -> Result<ImageDelivery> {
        // `AdjustOwnView`, not `OpenObjects`: a delivery renders an object
        // for the requesting member only — every role can do that, just as
        // every role receives broadcast object bytes — whereas opening
        // brings a new shared working copy into the room.
        let cfg = self.delivery_config();
        let delivery = self.with_room(room, |r| {
            r.require_capability(user, Capability::AdjustOwnView)?;
            Ok(r.delivery_state(cfg))
        })?;
        // Cache load and policy math run outside the room lock: the
        // broadcast hot path never waits behind a storage fetch.
        let full = delivery
            .cache()
            .get_or_load(object_id, || Ok(self.db.get_image_data(user, object_id)?))?;
        let full_bytes = full.len() as u64;
        let estimate_bps = delivery.estimate_bps(user, self.clock.now_s());
        let ladder = rcmo_codec::layered::info(&full)
            .map(|h| h.layer_prefixes())
            .unwrap_or_default();
        let layers = delivery.policy().choose_layers(estimate_bps, &ladder);
        if layers == 0 {
            delivery.record_full_payload(full_bytes);
            return Ok(ImageDelivery {
                payload: full,
                layers: 0,
                total_layers: 0,
                full_bytes,
                estimate_bps,
            });
        }
        let prefix_len = ladder[layers - 1] as usize;
        let payload = delivery
            .cache()
            .prefix(object_id, layers, prefix_len, &full);
        delivery.record_delivery(layers, payload.len() as u64, full_bytes);
        Ok(ImageDelivery {
            payload,
            layers,
            total_layers: ladder.len(),
            full_bytes,
            estimate_bps,
        })
    }

    /// Folds one client-observed transfer (`bytes` over `elapsed_s`
    /// seconds) into `user`'s bandwidth estimator for this room — the
    /// feedback signal [`deliver_image`](Self::deliver_image) adapts to.
    pub fn report_transfer(
        &self,
        room: RoomId,
        user: &str,
        bytes: u64,
        elapsed_s: f64,
    ) -> Result<()> {
        let cfg = self.delivery_config();
        let delivery = self.with_room(room, |r| {
            r.require_capability(user, Capability::AdjustOwnView)?;
            Ok(r.delivery_state(cfg))
        })?;
        delivery.observe_transfer(user, bytes, elapsed_s, self.clock.now_s());
        Ok(())
    }

    /// `user`'s current (staleness-decayed) bandwidth estimate in this
    /// room, if any transfer has been reported yet.
    pub fn estimated_bandwidth(&self, room: RoomId, user: &str) -> Result<Option<f64>> {
        let cfg = self.delivery_config();
        let delivery = self.with_room(room, |r| {
            r.require_capability(user, Capability::AdjustOwnView)?;
            Ok(r.delivery_state(cfg))
        })?;
        Ok(delivery.estimate_bps(user, self.clock.now_s()))
    }

    /// Warms the room's object cache from the CP-net prefetch planner:
    /// the stored images of the components most likely to be requested
    /// (under the document's own preference order) are loaded — one
    /// storage read each — before any viewer asks. Returns how many
    /// objects were newly warmed or already cached.
    pub fn warm_room_cache(&self, room: RoomId, user: &str) -> Result<usize> {
        let cfg = self.delivery_config();
        let (delivery, targets) = self.with_room(room, |r| {
            r.require_capability(user, Capability::OpenObjects)?;
            let doc = r.document();
            let planner = rcmo_core::PrefetchPlanner::default();
            let evidence = rcmo_core::PartialAssignment::empty(doc.net().len());
            let plan = planner.plan(doc, &evidence, cfg.cache_capacity_bytes)?;
            let mut targets: Vec<u64> = Vec::new();
            for item in &plan.items {
                if let rcmo_core::MediaRef::Stored {
                    media_type,
                    object_id,
                } = doc.media(item.component)?
                {
                    if media_type.eq_ignore_ascii_case("image") && !targets.contains(object_id) {
                        targets.push(*object_id);
                    }
                }
            }
            Ok((r.delivery_state(cfg), targets))
        })?;
        let mut warmed = 0;
        for id in targets {
            delivery
                .cache()
                .get_or_load(id, || Ok(self.db.get_image_data(user, id)?))?;
            warmed += 1;
        }
        Ok(warmed)
    }

    /// Renders a shared object's current state (base + annotations).
    pub fn render_object(&self, room: RoomId, object: SharedObjectId) -> Result<GrayImage> {
        self.with_room(room, |r| Ok(r.object(object)?.render()))
    }

    /// Number of annotation elements on a shared object.
    pub fn object_elements(&self, room: RoomId, object: SharedObjectId) -> Result<usize> {
        self.with_room(room, |r| Ok(r.object(object)?.num_elements()))
    }

    /// Saves a shared object's annotated state back into the database
    /// (serialised overlay in `FLD_CM`, base pixels unchanged) and discards
    /// it from the room.
    ///
    /// Crash-safe: the stored object is replaced atomically in place (same
    /// id), and if the save fails for any reason the working copy is put
    /// back into the room — annotations are never lost.
    pub fn save_and_close_image(&self, room: RoomId, user: &str, object_id: u64) -> Result<()> {
        let annotated = self.with_room(room, |r| {
            r.require_capability(user, Capability::SaveObjects)?;
            r.take_object(object_id)
        })?;
        let result = (|| {
            let mut obj = self.db.get_image(user, object_id)?;
            // Only the overlay is stored inline; the pixels stay in
            // FLD_DATA.
            obj.cm = annotated.overlay_to_bytes();
            self.db.update_image(user, object_id, &obj)?;
            Ok(())
        })();
        if result.is_err() {
            // Failed save: restore the working copy so nothing is lost.
            let _ = self.with_room(room, |r| {
                r.insert_object(object_id, annotated);
                Ok(())
            });
        } else {
            // The stored object changed: drop every cached delivery
            // payload of it (all layer depths) so the next viewer reads
            // the new bytes.
            let _ = self.with_room(room, |r| {
                r.invalidate_cached_object(object_id);
                Ok(())
            });
        }
        result
    }

    /// Persists the room's (possibly globally updated) document back to the
    /// database.
    pub fn save_document(&self, room: RoomId, user: &str) -> Result<()> {
        let (doc_id, title, bytes) = self.with_room(room, |r| {
            r.require_capability(user, Capability::SaveObjects)?;
            Ok((
                r.document_id,
                r.document().title().to_string(),
                r.document().to_bytes(),
            ))
        })?;
        self.db
            .update_document(user, doc_id, &DocumentObject { title, data: bytes })?;
        Ok(())
    }

    /// Runs automatic audio segmentation on a stored audio object (16-bit
    /// LE PCM payload), persists the segments into the object's
    /// `FLD_SECTORS`, and shares the result summary with the whole room —
    /// the paper's cooperative voice processing: "if one does keyword
    /// searches, the results will be visible and usable to other partners."
    ///
    /// Returns the detected segments. The segmenter is trained lazily on
    /// first use and shared across rooms.
    pub fn analyse_audio(
        &self,
        room: RoomId,
        user: &str,
        audio_id: u64,
    ) -> Result<Vec<rcmo_audio::Segment>> {
        // Authorise first: the analyst must hold the share-analysis
        // capability before any side effect (the stored sectors) happens.
        self.with_room(room, |r| {
            r.require_capability(user, Capability::ShareAnalysis)
        })?;
        let obj = self.db.get_audio(user, audio_id)?;
        let samples = rcmo_audio::synth::from_pcm16(&obj.data);
        let model = self
            .segmenter
            .get_or_init(|| rcmo_audio::SegmenterModel::train_default(0xA11A));
        let segments = rcmo_audio::segment_audio(model, &samples);
        // Persist into FLD_SECTORS so future sessions reuse the analysis.
        self.db.update_audio_sectors(
            user,
            audio_id,
            &rcmo_audio::segment::encode_segments(&segments),
        )?;
        // Broadcast the summary to the room.
        let hop = model.features().hop_secs();
        let summary = segments
            .iter()
            .map(|s| {
                format!(
                    "{:.2}s-{:.2}s {}",
                    s.frames.start as f64 * hop,
                    s.frames.end as f64 * hop,
                    s.class.name()
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        self.with_room(room, |r| r.share_analysis(user, audio_id, &summary))?;
        Ok(segments)
    }

    /// Registers a dynamic event trigger in a room; the owner (and every
    /// other partner) receives a [`RoomEvent::TriggerFired`] whenever the
    /// condition matches a subsequent room event.
    pub fn add_trigger(
        &self,
        room: RoomId,
        user: &str,
        condition: TriggerCondition,
    ) -> Result<u64> {
        self.with_room(room, |r| r.add_trigger(user, condition))
    }

    /// Removes a trigger (owner only).
    pub fn remove_trigger(&self, room: RoomId, user: &str, trigger: u64) -> Result<()> {
        self.with_room(room, |r| r.remove_trigger(user, trigger))
    }

    /// Broadcasts an announcement into **every** room (the paper's
    /// "broadcasting" future work). Requires admin access in the database.
    ///
    /// Room handles are snapshot under a brief map read lock, then each
    /// room is announced to under its own lock — the announcement never
    /// holds the map while delivering, so one room's slow delivery (or a
    /// dead member's reap cascade) cannot stall the whole server. Rooms
    /// created concurrently with the snapshot may miss the announcement,
    /// exactly as if they had been created just after it.
    pub fn broadcast_announcement(&self, user: &str, text: &str) -> Result<usize> {
        if self.db.user_level(user)? != Some(rcmo_mediadb::AccessLevel::Admin) {
            return Err(ServerError::Invalid(format!(
                "'{user}' is not an administrator"
            )));
        }
        self.map_reads.inc();
        let handles: Vec<RoomHandle> = self.rooms.read().values().cloned().collect();
        let mut reached = 0;
        for handle in handles {
            let queued = self.clock.now_us();
            let mut room = handle.lock();
            let acquired = self.clock.now_us();
            self.room_lock_wait.record(acquired.saturating_sub(queued));
            room.announce(user, text);
            drop(room);
            self.room_lock_hold
                .record(self.clock.now_us().saturating_sub(acquired));
            reached += 1;
        }
        Ok(reached)
    }

    /// Renders a viewer's presentation as text (the Figure-5 content pane):
    /// what the viewer's client shows right now.
    pub fn render_presentation(&self, room: RoomId, user: &str) -> Result<String> {
        self.with_room(room, |r| {
            let p = r.presentation_for(user)?;
            Ok(p.render(r.document()))
        })
    }

    /// Members of a room.
    pub fn members(&self, room: RoomId) -> Result<Vec<String>> {
        self.with_room(room, |r| {
            Ok(r.member_names().iter().map(|s| s.to_string()).collect())
        })
    }

    /// Propagation statistics of a room.
    pub fn room_stats(&self, room: RoomId) -> Result<RoomStats> {
        self.with_room(room, |r| Ok(r.stats()))
    }

    /// Snapshot of every metric the server (and its rooms, through parent
    /// chaining) recorded. Equivalent to
    /// [`Metrics::metrics_snapshot`](rcmo_obs::Metrics::metrics_snapshot).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Number of events retained in a room's change buffer (bounded by its
    /// ring capacity).
    pub fn change_log_len(&self, room: RoomId) -> Result<usize> {
        self.with_room(room, |r| Ok(r.change_log().len()))
    }

    /// Sequence number of the latest event in a room's total order.
    pub fn last_seq(&self, room: RoomId) -> Result<u64> {
        self.with_room(room, |r| Ok(r.change_log().last_seq()))
    }
}

impl Metrics for InteractionServer {
    /// Room propagation counters aggregated over every room of the server
    /// (each room's registry parents into the server's).
    type View = RoomStats;

    fn obs(&self) -> &Registry {
        &self.obs
    }

    fn metrics(&self) -> RoomStats {
        RoomStats::from_registry(&self.obs)
    }
}

/// Decodes an image object payload: raw (`GIM1`) or layered (`LIC1`).
fn decode_image_payload(data: &[u8]) -> Result<GrayImage> {
    if data.starts_with(b"GIM1") {
        Ok(GrayImage::from_bytes(data)?)
    } else if data.starts_with(b"LIC1") {
        rcmo_codec::decode(data).map_err(|e| ServerError::Invalid(format!("codec: {e}")))
    } else {
        Err(ServerError::Invalid(
            "image payload is neither GIM1 nor LIC1".to_string(),
        ))
    }
}

#[cfg(test)]
mod tests;
