//! Actions (client → server), deltas (the changed part of an object), and
//! room events (server → every client in the room).

use crate::role::Role;
use rcmo_core::{ComponentId, PresentationDelta};
use rcmo_imaging::{ElementId, LineElement, TextElement};

/// What a client asks the interaction server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Explicitly choose a presentation form for a component (feeds the
    /// presentation module as evidence).
    Choose {
        /// The component clicked.
        component: ComponentId,
        /// The chosen form index.
        form: usize,
    },
    /// Withdraw the explicit choice on a component.
    Unchoose {
        /// The component.
        component: ComponentId,
    },
    /// Write text onto a shared image.
    AddText {
        /// The shared object.
        object: u64,
        /// The text element.
        element: TextElement,
    },
    /// Draw a line onto a shared image.
    AddLine {
        /// The shared object.
        object: u64,
        /// The line element.
        element: LineElement,
    },
    /// Delete an annotation element from a shared image.
    DeleteElement {
        /// The shared object.
        object: u64,
        /// The element to remove.
        element: ElementId,
    },
    /// Perform an image operation on a component (recorded as a derived
    /// CP-net variable per Section 4.2). `global` decides whether the
    /// result is merged into the shared document or kept viewer-local.
    ApplyOperation {
        /// The component operated on.
        component: ComponentId,
        /// The form the component was presented in.
        trigger_form: usize,
        /// Operation name ("segmentation", "zoom", ...).
        operation: String,
        /// Global (all viewers) or viewer-local.
        global: bool,
    },
    /// Freeze a shared object (only the holder may modify it).
    Freeze {
        /// The object to freeze.
        object: u64,
    },
    /// Release a frozen object.
    Release {
        /// The object to release.
        object: u64,
    },
    /// Free-text chat.
    Chat {
        /// The message.
        text: String,
    },
}

/// Conditions a dynamic event trigger can watch for (the paper's future
/// work: "integrating broadcasting and dynamic event triggers into the
/// system").
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerCondition {
    /// Fires when any operation is applied to this component.
    OperationOn {
        /// The watched component.
        component: ComponentId,
    },
    /// Fires when this shared object changes (annotation added/removed).
    ObjectChanged {
        /// The watched object.
        object: u64,
    },
    /// Fires when a chat message contains the needle (case-sensitive).
    ChatContains {
        /// The substring watched for.
        needle: String,
    },
    /// Fires when a partner's explicit choice targets this component.
    ChoiceOn {
        /// The watched component.
        component: ComponentId,
    },
}

impl TriggerCondition {
    /// `true` if `event` satisfies this condition.
    pub fn matches(&self, event: &RoomEvent) -> bool {
        match (self, event) {
            (
                TriggerCondition::OperationOn { component },
                RoomEvent::OperationApplied { component: c, .. },
            ) => component == c,
            (
                TriggerCondition::ObjectChanged { object },
                RoomEvent::ObjectChanged { object: o, .. },
            ) => object == o,
            (TriggerCondition::ChatContains { needle }, RoomEvent::Chat { text, .. }) => {
                text.contains(needle)
            }
            (
                TriggerCondition::ChoiceOn { component },
                RoomEvent::ChoiceMade { component: c, .. },
            ) => component == c,
            _ => false,
        }
    }
}

/// The changed part of a shared object — the unit of propagation. The
/// hierarchical object structure means a delta is a small fraction of the
/// object ("sending only the relevant parts of the object for redisplay").
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// A text element appeared on an image.
    TextAdded {
        /// The element's id.
        id: ElementId,
        /// The element.
        element: TextElement,
    },
    /// A line element appeared on an image.
    LineAdded {
        /// The element's id.
        id: ElementId,
        /// The element.
        element: LineElement,
    },
    /// An annotation element was removed.
    ElementDeleted {
        /// The removed element's id.
        id: ElementId,
    },
}

impl Delta {
    /// Approximate wire size of the delta in bytes (used by the propagation
    /// experiments; a full-object resend would cost the whole image).
    pub fn encoded_len(&self) -> usize {
        match self {
            Delta::TextAdded { element, .. } => 8 + 4 + 4 + 1 + 4 + element.text.len(),
            Delta::LineAdded { .. } => 8 + 4 * 8 + 1,
            Delta::ElementDeleted { .. } => 8,
        }
    }
}

/// What every client in a room receives.
#[derive(Debug, Clone, PartialEq)]
pub enum RoomEvent {
    /// A partner joined.
    Joined {
        /// Who.
        user: String,
        /// The role they were granted.
        role: Role,
    },
    /// A partner left.
    Left {
        /// Who.
        user: String,
    },
    /// A partner was removed by a moderator or the presenter.
    Evicted {
        /// Who was removed.
        user: String,
        /// Who removed them.
        by: String,
    },
    /// A member's role changed mid-session (presenter handoff: the new
    /// presenter is promoted and the old one demoted in one atomic pair
    /// of events).
    RoleChanged {
        /// Whose role changed.
        user: String,
        /// The role they now hold.
        role: Role,
    },
    /// A shared object changed; the delta carries only the changed part.
    ObjectChanged {
        /// The object.
        object: u64,
        /// Who changed it.
        by: String,
        /// The change.
        delta: Delta,
    },
    /// A partner's explicit form choice (also evidence for presentations).
    ChoiceMade {
        /// Who chose.
        user: String,
        /// The component.
        component: ComponentId,
        /// The chosen form (`None` = choice withdrawn).
        form: Option<usize>,
    },
    /// The shared document gained a global derived variable (an operation
    /// whose result the actor deemed important for everyone).
    OperationApplied {
        /// Who performed it.
        user: String,
        /// The component operated on.
        component: ComponentId,
        /// The operation name.
        operation: String,
    },
    /// An object was frozen.
    Frozen {
        /// The object.
        object: u64,
        /// The holder.
        by: String,
    },
    /// A freeze was released.
    Released {
        /// The object.
        object: u64,
        /// Who released it.
        by: String,
    },
    /// A viewer's presentation was recomputed; clients re-render only the
    /// components listed in `deltas` ("the hierarchical structure of the
    /// object permits sending only the relevant parts of the object for
    /// redisplay", paper §5.3).
    PresentationChanged {
        /// Whose presentation (every viewer has her own view).
        viewer: String,
        /// Bytes the viewer's client must *additionally* fetch to apply the
        /// deltas (components already rendered cost nothing).
        transfer_bytes: u64,
        /// The minimal redisplay set: components whose form or effective
        /// visibility changed since the previously broadcast presentation.
        deltas: Vec<PresentationDelta>,
    },
    /// Chat message.
    Chat {
        /// Who.
        user: String,
        /// The message.
        text: String,
    },
    /// A registered trigger fired (dynamic event triggers, the paper's
    /// future work).
    TriggerFired {
        /// The trigger's id.
        trigger: u64,
        /// Who registered it.
        owner: String,
        /// What fired it, rendered for display.
        cause: String,
    },
    /// An audio analysis ran on a stored object and its results were shared
    /// with the room ("if one does keyword searches, the results will be
    /// visible and usable to other partners").
    AudioAnalysed {
        /// The audio object analysed.
        object: u64,
        /// Who ran the analysis.
        by: String,
        /// Human-readable result summary (per-segment lines).
        summary: String,
    },
}

impl RoomEvent {
    /// Approximate wire size in bytes (for the propagation experiment).
    pub fn encoded_len(&self) -> usize {
        match self {
            RoomEvent::Joined { user, .. } => 1 + 1 + user.len(),
            RoomEvent::Left { user } => 1 + user.len(),
            RoomEvent::Evicted { user, by } => 1 + user.len() + by.len(),
            RoomEvent::RoleChanged { user, .. } => 1 + 1 + user.len(),
            RoomEvent::ObjectChanged { by, delta, .. } => 1 + 8 + by.len() + delta.encoded_len(),
            RoomEvent::ChoiceMade { user, .. } => 1 + user.len() + 4 + 4,
            RoomEvent::OperationApplied {
                user, operation, ..
            } => 1 + user.len() + 4 + operation.len(),
            RoomEvent::Frozen { by, .. } | RoomEvent::Released { by, .. } => 1 + 8 + by.len(),
            // Per delta: component id (4) + old/new form (4+4) + visibility
            // flag (1).
            RoomEvent::PresentationChanged { viewer, deltas, .. } => {
                1 + viewer.len() + 8 + deltas.len() * 13
            }
            RoomEvent::Chat { user, text } => 1 + user.len() + text.len(),
            RoomEvent::AudioAnalysed { by, summary, .. } => 1 + 8 + by.len() + summary.len(),
            RoomEvent::TriggerFired { owner, cause, .. } => 1 + 8 + owner.len() + cause.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_sizes_are_small() {
        let text = Delta::TextAdded {
            id: ElementId(1),
            element: TextElement {
                x: 1,
                y: 2,
                text: "lesion here".to_string(),
                intensity: 255,
                scale: 1,
            },
        };
        assert!(text.encoded_len() < 64);
        let line = Delta::LineAdded {
            id: ElementId(2),
            element: LineElement {
                x0: 0,
                y0: 0,
                x1: 9,
                y1: 9,
                intensity: 200,
            },
        };
        assert!(line.encoded_len() < 64);
        assert_eq!(Delta::ElementDeleted { id: ElementId(3) }.encoded_len(), 8);
    }

    #[test]
    fn event_sizes_scale_with_payload() {
        let small = RoomEvent::Chat {
            user: "a".into(),
            text: "hi".into(),
        };
        let big = RoomEvent::Chat {
            user: "a".into(),
            text: "x".repeat(100),
        };
        assert!(big.encoded_len() > small.encoded_len());
    }
}
