//! Conference roles and the per-role capability table.
//!
//! The paper's rooms are symmetric: every partner may annotate, save,
//! freeze, and re-derive the shared document. A lecture is not — one
//! presenter mutates the document, thousands of viewers watch, and a few
//! moderators keep order. Following the role-structured conference types
//! of the related work (TrueConf's `symmetric`/`asymmetric`/`role`
//! conference taxonomy, the VRVS-style presenter/moderator/viewer rooms),
//! every member holds a [`Role`], and every mutating entry point checks
//! the role against a static capability table before touching room state.
//! A denial is a structured
//! [`ServerError::ActionRejected`](crate::error::ServerError::ActionRejected),
//! never a generic `Invalid`.

use std::fmt;

/// A member's role in a room, granted at join time and carried by the
/// member for the life of their session (it survives live migration and
/// failover with the rest of the room state).
///
/// Exactly one member may hold [`Role::Presenter`] at a time — the
/// "speaker seat". A join requesting it while it is taken is rejected
/// with [`crate::error::JoinRejectCause::PresenterSeatTaken`]; the seat
/// moves only through
/// [`hand_off_presenter`](crate::server::InteractionServer::hand_off_presenter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Role {
    /// The single speaker seat: every capability, including mutating the
    /// shared document globally and handing the seat to someone else.
    Presenter,
    /// Full cooperative-work rights minus the speaker seat: annotate,
    /// freeze, save, configure, evict. The paper's symmetric room of ~4
    /// is a room of moderators — [`crate::server::InteractionServer::join_default`]
    /// grants this role to keep pre-role call sites behaving identically.
    Moderator,
    /// Receive-mostly: follows the broadcast stream, chats, and adjusts
    /// their *own* presentation (form choices, viewer-local operations),
    /// but cannot touch any shared state.
    Viewer,
}

impl Role {
    /// Every role, most privileged first.
    pub const ALL: [Role; 3] = [Role::Presenter, Role::Moderator, Role::Viewer];

    /// `true` if the capability table grants `cap` to this role.
    pub fn allows(self, cap: Capability) -> bool {
        self.capabilities().contains(&cap)
    }

    /// The row of the capability table for this role.
    pub fn capabilities(self) -> &'static [Capability] {
        use Capability::*;
        match self {
            Role::Presenter => &[
                Chat,
                AdjustOwnView,
                AnnotateObjects,
                FreezeObjects,
                ApplyGlobalOperation,
                OpenObjects,
                SaveObjects,
                ManageTriggers,
                ShareAnalysis,
                ConfigureRoom,
                EvictMembers,
                HandOffPresenter,
            ],
            Role::Moderator => &[
                Chat,
                AdjustOwnView,
                AnnotateObjects,
                FreezeObjects,
                ApplyGlobalOperation,
                OpenObjects,
                SaveObjects,
                ManageTriggers,
                ShareAnalysis,
                ConfigureRoom,
                EvictMembers,
            ],
            Role::Viewer => &[Chat, AdjustOwnView],
        }
    }

    /// Short lowercase name (`"presenter"`, `"moderator"`, `"viewer"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Presenter => "presenter",
            Role::Moderator => "moderator",
            Role::Viewer => "viewer",
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One permission a mutating entry point requires. The capability → entry
/// point mapping is fixed; the [`Role`] → capability table above decides
/// who holds what.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Capability {
    /// Send chat messages ([`crate::events::Action::Chat`]).
    Chat,
    /// Adjust one's *own* presentation: explicit form choices and
    /// viewer-local operations (`Choose`, `Unchoose`, local
    /// `ApplyOperation`). Touches no shared state.
    AdjustOwnView,
    /// Annotate shared objects (`AddText`, `AddLine`, `DeleteElement`).
    AnnotateObjects,
    /// Freeze and release shared objects.
    FreezeObjects,
    /// Merge an operation result into the *shared* document (global
    /// `ApplyOperation` — every viewer's presentation re-derives).
    ApplyGlobalOperation,
    /// Bring stored objects into the room as shared working copies
    /// ([`crate::server::InteractionServer::open_image`]).
    OpenObjects,
    /// Persist room state back to the database (`save_and_close_image`,
    /// `save_document`).
    SaveObjects,
    /// Register and remove dynamic event triggers.
    ManageTriggers,
    /// Run and share audio analysis (writes the stored object's sectors).
    ShareAnalysis,
    /// Reconfigure the room (capacity, change-log bound, member queue
    /// bound) through [`crate::server::InteractionServer::configure_room`].
    ConfigureRoom,
    /// Remove another member from the room.
    EvictMembers,
    /// Hand the presenter seat to another member.
    HandOffPresenter,
}

impl Capability {
    /// Short name for display and metrics labels.
    pub fn as_str(self) -> &'static str {
        match self {
            Capability::Chat => "chat",
            Capability::AdjustOwnView => "adjust-own-view",
            Capability::AnnotateObjects => "annotate-objects",
            Capability::FreezeObjects => "freeze-objects",
            Capability::ApplyGlobalOperation => "apply-global-operation",
            Capability::OpenObjects => "open-objects",
            Capability::SaveObjects => "save-objects",
            Capability::ManageTriggers => "manage-triggers",
            Capability::ShareAnalysis => "share-analysis",
            Capability::ConfigureRoom => "configure-room",
            Capability::EvictMembers => "evict-members",
            Capability::HandOffPresenter => "hand-off-presenter",
        }
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A join, spelled out: who, as what, and how their event queue is bounded.
///
/// Replaces the old `join(room, user: &str)` (which could express neither
/// roles nor per-member delivery policy). Build with the per-role
/// constructors and chain the optional knobs:
///
/// ```
/// use rcmo_server::{JoinRequest, Role};
/// let req = JoinRequest::viewer("student-7").with_queue_bound(256);
/// assert_eq!(req.role, Role::Viewer);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct JoinRequest {
    /// The member name.
    pub user: String,
    /// The requested role. Granted verbatim or the join is rejected —
    /// the server never silently downgrades.
    pub role: Role,
    /// Per-member override of the room's bounded send-queue depth
    /// (`None` = the room's configured default). A member that lets its
    /// queue fill is evicted as a slow consumer rather than allowed to
    /// stall or bloat the broadcast hot path.
    pub queue_bound: Option<usize>,
}

impl JoinRequest {
    /// A join as `role`.
    pub fn new(user: &str, role: Role) -> JoinRequest {
        JoinRequest {
            user: user.to_string(),
            role,
            queue_bound: None,
        }
    }

    /// A join for the presenter seat.
    pub fn presenter(user: &str) -> JoinRequest {
        JoinRequest::new(user, Role::Presenter)
    }

    /// A join as a moderator (the symmetric-room default).
    pub fn moderator(user: &str) -> JoinRequest {
        JoinRequest::new(user, Role::Moderator)
    }

    /// A join as a viewer.
    pub fn viewer(user: &str) -> JoinRequest {
        JoinRequest::new(user, Role::Viewer)
    }

    /// Overrides the room's member queue bound for this member.
    pub fn with_queue_bound(mut self, bound: usize) -> JoinRequest {
        self.queue_bound = Some(bound);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_monotone_in_privilege() {
        // Presenter ⊇ Moderator ⊇ Viewer.
        for cap in Role::Viewer.capabilities() {
            assert!(Role::Moderator.allows(*cap));
        }
        for cap in Role::Moderator.capabilities() {
            assert!(Role::Presenter.allows(*cap));
        }
    }

    #[test]
    fn viewer_holds_no_mutating_capability() {
        use Capability::*;
        for cap in [
            AnnotateObjects,
            FreezeObjects,
            ApplyGlobalOperation,
            OpenObjects,
            SaveObjects,
            ManageTriggers,
            ShareAnalysis,
            ConfigureRoom,
            EvictMembers,
            HandOffPresenter,
        ] {
            assert!(!Role::Viewer.allows(cap), "viewer must not hold {cap}");
        }
        assert!(Role::Viewer.allows(Chat));
        assert!(Role::Viewer.allows(AdjustOwnView));
    }

    #[test]
    fn only_presenter_hands_off() {
        assert!(Role::Presenter.allows(Capability::HandOffPresenter));
        assert!(!Role::Moderator.allows(Capability::HandOffPresenter));
        assert!(!Role::Viewer.allows(Capability::HandOffPresenter));
    }

    #[test]
    fn join_request_builders() {
        let req = JoinRequest::presenter("prof").with_queue_bound(64);
        assert_eq!(req.user, "prof");
        assert_eq!(req.role, Role::Presenter);
        assert_eq!(req.queue_bound, Some(64));
        assert_eq!(JoinRequest::viewer("s").queue_bound, None);
    }
}
