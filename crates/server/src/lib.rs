//! # rcmo-server — the interaction server
//!
//! The middle tier of the paper's Figure 1: "responsible for the
//! cooperative work in the system ... keeps track of all objects in and out
//! of shared rooms. If a client makes a change on a multimedia object, that
//! change is immediately propagated to other clients in the room. The
//! interaction server also calls the database server to fetch and store
//! objects ... and keeps track of user actions and transfers them to the
//! presentation module."
//!
//! * [`events`] — the action/event/delta model. Deltas are *hierarchical*:
//!   only the changed part of an object (one annotation element, one form
//!   choice) crosses the wire, mirroring "the hierarchical structure of the
//!   object permits sending only the relevant parts of the object".
//! * [`room`] — shared rooms: membership, the in-room object registry, the
//!   change buffer, freeze/release, per-viewer presentation sessions.
//! * [`resync`] — fault tolerance: sequence-numbered events, the bounded
//!   ring-buffer change log, and snapshot-based client resynchronisation
//!   after a dropped connection.
//! * [`role`] — conference roles ([`Role::Presenter`] /
//!   [`Role::Moderator`] / [`Role::Viewer`]) and the per-role capability
//!   table every mutating entry point checks — the asymmetric lecture
//!   room layered over the paper's symmetric conference.
//! * [`fanout`] — encode-once broadcast: each event is encoded once into
//!   a shared `Arc` payload and fanned out through bounded per-member
//!   queues; slow consumers are evicted and re-enter via snapshot resync.
//! * [`delivery`] — bandwidth-adaptive layered delivery: per-member EWMA
//!   bandwidth estimates drive a [`delivery::DeliveryPolicy`] that picks
//!   an LIC1 layer depth from each object's *real* byte ladder, served
//!   out of a room-level [`delivery::ObjectCache`] so N viewers of one CT
//!   image cost one storage read.
//! * [`server`] — the [`server::InteractionServer`]
//!   facade gluing rooms, the presentation engine, and the multimedia
//!   database together.
//! * [`cluster`] — the sharded interaction cluster: a consistent-hash
//!   room directory over N `InteractionServer` shards, heartbeat-based
//!   failure detection in virtual time, live room migration
//!   (freeze → snapshot → rebuild → thaw with gap-free sequence
//!   numbers), and zero-loss failover from the replication journal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod delivery;
pub mod error;
pub mod events;
pub mod fanout;
pub mod resync;
pub mod role;
pub mod room;
pub mod server;

pub use cluster::{ClusterConfig, ClusterFrontend, ClusterStats, ShardHealth, ShardId};
pub use delivery::{DeliveryConfig, DeliveryPolicy, DeliveryState, ImageDelivery, ObjectCache};
pub use error::{JoinRejectCause, ServerError};
pub use events::{Action, Delta, RoomEvent};
pub use fanout::{EventStream, DEFAULT_MEMBER_QUEUE_BOUND};
pub use resync::{ChangeLog, Resync, RoomSnapshot, SequencedEvent};
pub use role::{Capability, JoinRequest, Role};
pub use room::{RoomConfig, RoomId, RoomState, RoomStats, SharedObjectId};
pub use server::{ClientConnection, DetachedRoom, InteractionServer, RoomHandle};
