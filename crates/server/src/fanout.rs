//! Shared-payload broadcast fan-out: bounded per-member send queues over
//! `Arc`'d immutable events.
//!
//! The pre-refactor broadcast cloned every [`SequencedEvent`] once *per
//! member* — a `PresentationChanged` delta list or an annotation payload
//! was re-materialised N times for an N-member room. For the 10k-viewer
//! lecture that is exactly the wrong shape: the payload is identical for
//! everyone. Here the room encodes each event **once** into an
//! `Arc<SequencedEvent>` and the fan-out loop moves only reference-counted
//! pointers; per-member cost is a queue push, independent of payload size.
//!
//! Each member's queue is **bounded**. A member that stops draining (a
//! stalled client, a modem viewer far behind the stream) sees
//! [`QueueSendError::Full`] on the send side; the room then evicts them
//! through the same reaping path PR 1 built for dead connections — the
//! broadcast hot path never blocks and never buffers unboundedly. An
//! evicted slow consumer re-enters through resync, which hands them a
//! snapshot instead of the events they can no longer replay.
//!
//! The receive side ([`EventStream`]) yields *owned* events (the `Arc` is
//! unwrapped when uncontended, cloned otherwise), so client code is
//! byte-for-byte what it was against the unbounded per-clone channels.

use crate::resync::SequencedEvent;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default bound of a member's send queue (see
/// [`RoomConfig`](crate::room::RoomConfig)). Generous on purpose: the
/// bound exists to catch members that have stopped draining entirely, not
/// to police momentary bursts, and an empty queue costs nothing — the
/// depth is tracked, not preallocated.
pub const DEFAULT_MEMBER_QUEUE_BOUND: usize = 65_536;

/// Why a fan-out send failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueueSendError {
    /// The member's queue is at its bound: a slow consumer. The room
    /// evicts them rather than block or buffer further.
    Full,
    /// The member's receiver is gone: a dead connection.
    Disconnected,
}

/// The room-held send side of one member's event queue. Opaque outside
/// the crate: it appears in detached-room state
/// ([`DetachedRoom`](crate::server::DetachedRoom)) only to be handed back
/// on adoption.
#[derive(Debug)]
pub struct EventQueue {
    tx: Sender<Arc<SequencedEvent>>,
    depth: Arc<AtomicUsize>,
    bound: usize,
}

impl EventQueue {
    /// Pushes a shared event without blocking. Fails `Full` at the bound
    /// and `Disconnected` once the stream is dropped; the queue's depth is
    /// unchanged on failure.
    pub(crate) fn try_send(&self, event: Arc<SequencedEvent>) -> Result<(), QueueSendError> {
        // Reserve a slot first: concurrent sends can momentarily
        // over-reserve, but depth never exceeds `bound` for long and a
        // room's sends are serialised under its lock anyway.
        if self.depth.fetch_add(1, Ordering::AcqRel) >= self.bound {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(QueueSendError::Full);
        }
        if self.tx.send(event).is_err() {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(QueueSendError::Disconnected);
        }
        Ok(())
    }

    /// The configured depth bound.
    pub fn bound(&self) -> usize {
        self.bound
    }
}

/// The client-held receive side of a member's event queue: the `events`
/// field of a [`ClientConnection`](crate::server::ClientConnection).
///
/// Yields owned [`SequencedEvent`]s — the shared `Arc` is unwrapped (or
/// cloned, if other members still hold it) at the consumer, so receive
/// semantics match the old unbounded channel exactly, including
/// disconnection once the room drops the member's queue.
#[derive(Debug)]
pub struct EventStream {
    rx: Receiver<Arc<SequencedEvent>>,
    depth: Arc<AtomicUsize>,
}

impl EventStream {
    /// A non-blocking receive: `None` when the queue is currently empty
    /// *or* the sender is gone (matching `try_recv().ok()` on a channel).
    pub fn try_recv(&self) -> Option<SequencedEvent> {
        match self.rx.try_recv() {
            Ok(ev) => {
                self.depth.fetch_sub(1, Ordering::AcqRel);
                Some(Arc::try_unwrap(ev).unwrap_or_else(|shared| (*shared).clone()))
            }
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Drains everything currently queued, oldest first, without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = SequencedEvent> + '_ {
        std::iter::from_fn(move || self.try_recv())
    }

    /// Events currently queued (sent but not yet received).
    pub fn len(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// `true` if nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Creates one member's bounded queue pair. `bound` is clamped to ≥ 1 (a
/// zero-depth queue would evict its member on their first event).
pub(crate) fn event_queue(bound: usize) -> (EventQueue, EventStream) {
    let (tx, rx) = unbounded();
    let depth = Arc::new(AtomicUsize::new(0));
    (
        EventQueue {
            tx,
            depth: depth.clone(),
            bound: bound.max(1),
        },
        EventStream { rx, depth },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RoomEvent;

    fn ev(seq: u64) -> Arc<SequencedEvent> {
        Arc::new(SequencedEvent {
            seq,
            event: RoomEvent::Chat {
                user: "u".into(),
                text: format!("m{seq}"),
            },
        })
    }

    #[test]
    fn bounded_send_fails_full_then_recovers_after_drain() {
        let (q, s) = event_queue(2);
        q.try_send(ev(1)).unwrap();
        q.try_send(ev(2)).unwrap();
        assert_eq!(q.try_send(ev(3)), Err(QueueSendError::Full));
        assert_eq!(s.len(), 2);
        assert_eq!(s.try_recv().unwrap().seq, 1);
        q.try_send(ev(3)).unwrap();
        let rest: Vec<u64> = s.try_iter().map(|e| e.seq).collect();
        assert_eq!(rest, vec![2, 3]);
        assert!(s.is_empty());
    }

    #[test]
    fn dropped_stream_reports_disconnected() {
        let (q, s) = event_queue(4);
        drop(s);
        assert_eq!(q.try_send(ev(1)), Err(QueueSendError::Disconnected));
    }

    #[test]
    fn shared_payload_is_not_deep_copied_on_send() {
        // Three queues fan out the *same* allocation; only the consumers
        // materialise owned events.
        let queues: Vec<_> = (0..3).map(|_| event_queue(8)).collect();
        let shared = ev(1);
        for (q, _) in &queues {
            q.try_send(shared.clone()).unwrap();
        }
        // 3 queue slots + our handle all point at one allocation.
        assert_eq!(Arc::strong_count(&shared), 4);
        for (_, s) in &queues {
            assert_eq!(s.try_recv().unwrap().seq, 1);
        }
        assert_eq!(Arc::strong_count(&shared), 1);
    }

    #[test]
    fn zero_bound_is_clamped() {
        let (q, _s) = event_queue(0);
        assert_eq!(q.bound(), 1);
        q.try_send(ev(1)).unwrap();
        assert_eq!(q.try_send(ev(2)), Err(QueueSendError::Full));
    }
}
