//! Error type of the interaction server.

use std::fmt;

/// Errors raised by room and server operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// Bubbled up from the multimedia database.
    Media(rcmo_mediadb::MediaError),
    /// Bubbled up from the presentation module.
    Core(rcmo_core::CoreError),
    /// Bubbled up from the imaging module.
    Imaging(rcmo_imaging::ImagingError),
    /// A room id did not resolve.
    UnknownRoom(u64),
    /// The user is not a member of the room.
    NotInRoom {
        /// The user.
        user: String,
        /// The room.
        room: u64,
    },
    /// A shared object id did not resolve inside the room.
    UnknownObject(u64),
    /// The object is frozen by another partner.
    Frozen {
        /// The object.
        object: u64,
        /// Who holds the freeze.
        holder: String,
    },
    /// The user attempted to release a freeze they do not hold / freeze an
    /// already frozen object.
    FreezeConflict(String),
    /// The user is already in the room.
    AlreadyJoined(String),
    /// Anything else that indicates a caller bug.
    Invalid(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Media(e) => write!(f, "media db: {e}"),
            ServerError::Core(e) => write!(f, "presentation: {e}"),
            ServerError::Imaging(e) => write!(f, "imaging: {e}"),
            ServerError::UnknownRoom(r) => write!(f, "unknown room {r}"),
            ServerError::NotInRoom { user, room } => {
                write!(f, "user '{user}' is not in room {room}")
            }
            ServerError::UnknownObject(o) => write!(f, "unknown shared object {o}"),
            ServerError::Frozen { object, holder } => {
                write!(f, "object {object} is frozen by '{holder}'")
            }
            ServerError::FreezeConflict(m) => write!(f, "freeze conflict: {m}"),
            ServerError::AlreadyJoined(u) => write!(f, "user '{u}' already joined"),
            ServerError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Media(e) => Some(e),
            ServerError::Core(e) => Some(e),
            ServerError::Imaging(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rcmo_mediadb::MediaError> for ServerError {
    fn from(e: rcmo_mediadb::MediaError) -> Self {
        ServerError::Media(e)
    }
}

impl From<rcmo_core::CoreError> for ServerError {
    fn from(e: rcmo_core::CoreError) -> Self {
        ServerError::Core(e)
    }
}

impl From<rcmo_imaging::ImagingError> for ServerError {
    fn from(e: rcmo_imaging::ImagingError) -> Self {
        ServerError::Imaging(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ServerError>;
