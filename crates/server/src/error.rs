//! Error type of the interaction server.

use crate::role::{Capability, Role};
use std::fmt;

/// Why a join (or resync-as-join) was refused — the structured cause table
/// a client GUI can act on, modeled on the conferencing CAUSE codes of
/// commercial systems (retry later vs. give up vs. pick another room).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum JoinRejectCause {
    /// The room id resolved nowhere in the cluster.
    RoomNotFound,
    /// The room is frozen mid-migration; retry shortly — it thaws on the
    /// destination shard.
    RoomFrozenForMigration,
    /// The shard owning the room is unreachable (suspected or dead) and
    /// failover has not yet rebuilt the room.
    ShardUnavailable,
    /// The room's member capacity is reached.
    AtCapacity,
    /// The join requested [`Role::Presenter`](crate::role::Role::Presenter)
    /// but another member already holds the seat. Join with a different
    /// role, or wait for a presenter handoff.
    PresenterSeatTaken,
}

impl JoinRejectCause {
    /// Human-readable cause text (the CAUSE-table string).
    pub fn as_str(self) -> &'static str {
        match self {
            JoinRejectCause::RoomNotFound => "room not found",
            JoinRejectCause::RoomFrozenForMigration => "room is migrating; retry shortly",
            JoinRejectCause::ShardUnavailable => "shard unavailable",
            JoinRejectCause::AtCapacity => "maximum number of room participants is reached",
            JoinRejectCause::PresenterSeatTaken => "the presenter seat is already taken",
        }
    }

    /// `true` if the same join is expected to succeed if simply retried
    /// after a short wait (migration freeze, shard failover in progress).
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            JoinRejectCause::RoomFrozenForMigration | JoinRejectCause::ShardUnavailable
        )
    }
}

impl fmt::Display for JoinRejectCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors raised by room and server operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// Bubbled up from the multimedia database.
    Media(rcmo_mediadb::MediaError),
    /// Bubbled up from the presentation module.
    Core(rcmo_core::CoreError),
    /// Bubbled up from the imaging module.
    Imaging(rcmo_imaging::ImagingError),
    /// A room id did not resolve.
    UnknownRoom(u64),
    /// The user is not a member of the room.
    NotInRoom {
        /// The user.
        user: String,
        /// The room.
        room: u64,
    },
    /// A shared object id did not resolve inside the room.
    UnknownObject(u64),
    /// The object is frozen by another partner.
    Frozen {
        /// The object.
        object: u64,
        /// Who holds the freeze.
        holder: String,
    },
    /// The user attempted to release a freeze they do not hold / freeze an
    /// already frozen object.
    FreezeConflict(String),
    /// The user is already in the room.
    AlreadyJoined(String),
    /// A join was refused for a structured, client-actionable cause.
    JoinRejected {
        /// The room the join targeted.
        room: u64,
        /// Why it was refused.
        cause: JoinRejectCause,
    },
    /// The room is frozen for a live migration; mutating calls should be
    /// retried with backoff — the room thaws on its destination shard.
    Migrating(u64),
    /// The shard that owns the room is unreachable (stalled, partitioned,
    /// or dead) and no failover has rebuilt the room yet.
    ShardUnavailable {
        /// The unreachable shard.
        shard: usize,
        /// The room whose call could not be routed.
        room: u64,
    },
    /// A mutating call was refused by the role capability table: the
    /// member's role does not grant the capability the entry point
    /// requires. Structured so a client GUI can grey the control out (or
    /// prompt for a role upgrade) instead of parsing a message string.
    ActionRejected {
        /// The capability the entry point requires.
        required_capability: Capability,
        /// The role the acting member actually holds.
        role: Role,
    },
    /// Anything else that indicates a caller bug.
    Invalid(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Media(e) => write!(f, "media db: {e}"),
            ServerError::Core(e) => write!(f, "presentation: {e}"),
            ServerError::Imaging(e) => write!(f, "imaging: {e}"),
            ServerError::UnknownRoom(r) => write!(f, "unknown room {r}"),
            ServerError::NotInRoom { user, room } => {
                write!(f, "user '{user}' is not in room {room}")
            }
            ServerError::UnknownObject(o) => write!(f, "unknown shared object {o}"),
            ServerError::Frozen { object, holder } => {
                write!(f, "object {object} is frozen by '{holder}'")
            }
            ServerError::FreezeConflict(m) => write!(f, "freeze conflict: {m}"),
            ServerError::AlreadyJoined(u) => write!(f, "user '{u}' already joined"),
            ServerError::JoinRejected { room, cause } => {
                write!(f, "join to room {room} rejected: {cause}")
            }
            ServerError::Migrating(r) => write!(f, "room {r} is frozen for migration"),
            ServerError::ShardUnavailable { shard, room } => {
                write!(f, "shard {shard} owning room {room} is unavailable")
            }
            ServerError::ActionRejected {
                required_capability,
                role,
            } => {
                write!(
                    f,
                    "action requires the '{required_capability}' capability, \
                     which the '{role}' role does not grant"
                )
            }
            ServerError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Media(e) => Some(e),
            ServerError::Core(e) => Some(e),
            ServerError::Imaging(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rcmo_mediadb::MediaError> for ServerError {
    fn from(e: rcmo_mediadb::MediaError) -> Self {
        ServerError::Media(e)
    }
}

impl From<rcmo_core::CoreError> for ServerError {
    fn from(e: rcmo_core::CoreError) -> Self {
        ServerError::Core(e)
    }
}

impl From<rcmo_imaging::ImagingError> for ServerError {
    fn from(e: rcmo_imaging::ImagingError) -> Self {
        ServerError::Imaging(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ServerError>;
