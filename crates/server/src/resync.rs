//! Client resynchronisation: sequence-numbered events, the bounded change
//! log, and snapshot-based catch-up.
//!
//! Every room event carries a monotonically increasing sequence number, so
//! a client that loses its connection can tell the server exactly how far
//! it got. The room keeps a bounded ring buffer of recent events; a
//! reconnecting client within the buffer horizon replays the missed tail
//! and ends up observing the *identical total event order* as everyone
//! else. A client that fell behind the horizon instead receives a
//! [`RoomSnapshot`] — the room state itself is the materialised fold of
//! every evicted event, so compaction loses no information, only replay
//! granularity.

use crate::events::RoomEvent;
use crate::room::SharedObjectId;
use std::collections::VecDeque;

/// A room event tagged with its position in the room's total order.
#[derive(Debug, Clone, PartialEq)]
pub struct SequencedEvent {
    /// Position in the room's total event order (1-based, dense).
    pub seq: u64,
    /// The event.
    pub event: RoomEvent,
}

/// Default ring capacity of a room's change log.
pub const DEFAULT_CHANGE_LOG_CAPACITY: usize = 1024;

/// The room's "large memory buffer which maintains the changes made on the
/// changed objects" — bounded: memory is O(capacity) regardless of session
/// length. Old events are compacted away; the live room state stands in
/// for them (see [`RoomSnapshot`]).
#[derive(Debug)]
pub struct ChangeLog {
    events: VecDeque<SequencedEvent>,
    capacity: usize,
    /// Sequence number the next appended event receives.
    next_seq: u64,
}

impl ChangeLog {
    /// An empty log that retains at most `capacity` events.
    pub fn new(capacity: usize) -> ChangeLog {
        ChangeLog {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            next_seq: 1,
        }
    }

    /// Rebuilds a log from a retained tail — the migration/failover path:
    /// the destination room continues the *same* total order, so the next
    /// appended event gets `last_seq + 1` and a resyncing client can still
    /// replay any tail the source could. `tail` must be dense, ascending,
    /// and end at `last_seq` (it may be empty for a brand-new room).
    pub fn restore(capacity: usize, last_seq: u64, tail: Vec<SequencedEvent>) -> ChangeLog {
        assert!(
            tail.windows(2).all(|w| w[1].seq == w[0].seq + 1),
            "restored tail must be dense"
        );
        assert!(
            tail.last().map(|e| e.seq == last_seq).unwrap_or(true),
            "restored tail must end at last_seq"
        );
        let capacity = capacity.max(1);
        let mut events: VecDeque<SequencedEvent> = tail.into();
        while events.len() > capacity {
            events.pop_front();
        }
        ChangeLog {
            events,
            capacity,
            next_seq: last_seq + 1,
        }
    }

    /// Appends an already-sequenced event verbatim — the replicated-journal
    /// replay path, where the sequence number was assigned by the room
    /// that originally broadcast the event. The order must stay dense.
    pub fn push_sequenced(&mut self, event: SequencedEvent) {
        assert_eq!(
            event.seq, self.next_seq,
            "replicated event breaks the dense total order"
        );
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    /// Appends an event, assigning it the next sequence number. Evicts the
    /// oldest event when full.
    pub fn push(&mut self, event: RoomEvent) -> SequencedEvent {
        let sequenced = SequencedEvent {
            seq: self.next_seq,
            event,
        };
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(sequenced.clone());
        sequenced
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was ever logged or everything was evicted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Re-bounds the ring, evicting the oldest events if it shrinks.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.events.len() > self.capacity {
            self.events.pop_front();
        }
    }

    /// Sequence number of the latest logged event (0 before the first).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Sequence number of the oldest *retained* event, if any.
    pub fn first_retained_seq(&self) -> Option<u64> {
        self.events.front().map(|e| e.seq)
    }

    /// The retained events with `seq > last_seen`, oldest first — or
    /// `None` if `last_seen` is beyond the horizon (events after it were
    /// already evicted), in which case the caller must snapshot.
    pub fn events_since(&self, last_seen: u64) -> Option<Vec<SequencedEvent>> {
        if last_seen >= self.last_seq() {
            return Some(Vec::new());
        }
        match self.first_retained_seq() {
            // The first missed event (last_seen + 1) must still be retained.
            Some(first) if last_seen + 1 >= first => Some(
                self.events
                    .iter()
                    .filter(|e| e.seq > last_seen)
                    .cloned()
                    .collect(),
            ),
            _ => None,
        }
    }

    /// Iterates retained events with `seq >= from` (for trigger scans).
    pub(crate) fn retained_from(&self, from: u64) -> impl Iterator<Item = &SequencedEvent> {
        self.events.iter().filter(move |e| e.seq >= from)
    }

    /// All retained events, oldest first.
    pub fn retained(&self) -> impl Iterator<Item = &SequencedEvent> {
        self.events.iter()
    }
}

/// A full-state catch-up for a client beyond the replay horizon. The room
/// *is* the fold of its event history, so shipping its state is equivalent
/// to replaying every evicted event.
#[derive(Debug, Clone, PartialEq)]
pub struct RoomSnapshot {
    /// The total order position this snapshot reflects: the client is
    /// caught up through `seq` after applying it.
    pub seq: u64,
    /// The shared document, serialised.
    pub document: Vec<u8>,
    /// Every open shared object (id, serialised annotated image).
    pub objects: Vec<(SharedObjectId, Vec<u8>)>,
    /// Current freezes (object, holder).
    pub freezes: Vec<(SharedObjectId, String)>,
    /// Current members.
    pub members: Vec<String>,
}

/// What a reconnecting client receives from `resync`.
#[derive(Debug, Clone, PartialEq)]
pub enum Resync {
    /// The missed tail, oldest first — apply in order after `last_seen`.
    Events(Vec<SequencedEvent>),
    /// Too far behind: replace local state with the snapshot.
    Snapshot(RoomSnapshot),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chat(n: u64) -> RoomEvent {
        RoomEvent::Chat {
            user: "u".into(),
            text: format!("m{n}"),
        }
    }

    #[test]
    fn sequence_numbers_are_dense_from_one() {
        let mut log = ChangeLog::new(4);
        for i in 1..=10u64 {
            assert_eq!(log.push(chat(i)).seq, i);
        }
        assert_eq!(log.last_seq(), 10);
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_tail() {
        let mut log = ChangeLog::new(3);
        for i in 1..=100u64 {
            log.push(chat(i));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.first_retained_seq(), Some(98));
        let seqs: Vec<u64> = log.retained().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![98, 99, 100]);
    }

    #[test]
    fn events_since_replays_exactly_the_missed_tail() {
        let mut log = ChangeLog::new(10);
        for i in 1..=6u64 {
            log.push(chat(i));
        }
        let tail = log.events_since(4).expect("within horizon");
        assert_eq!(tail.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![5, 6]);
        assert!(log.events_since(6).expect("caught up").is_empty());
        // Beyond the end is also "caught up" (idempotent resync).
        assert!(log.events_since(99).expect("ahead").is_empty());
    }

    #[test]
    fn horizon_forces_snapshot() {
        let mut log = ChangeLog::new(3);
        for i in 1..=10u64 {
            log.push(chat(i));
        }
        // first retained is 8: last_seen 6 means event 7 is gone.
        assert!(log.events_since(6).is_none());
        // last_seen 7 still works: the first missed event is 8.
        assert_eq!(log.events_since(7).expect("edge").len(), 3);
    }

    #[test]
    fn empty_log_replays_nothing() {
        let log = ChangeLog::new(3);
        assert!(log.events_since(0).expect("empty").is_empty());
        assert_eq!(log.last_seq(), 0);
        assert!(log.is_empty());
    }
}
