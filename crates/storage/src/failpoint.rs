//! Named failpoints at every durability-relevant site in the storage stack.
//!
//! Each site calls [`hit`] exactly once per durability operation. In normal
//! operation the call just counts; a test can [`arm`] a site so its N-th
//! hit (after arming) fails with [`StorageError::FaultInjected`], simulating
//! a crash at that precise point in the commit protocol. A fired failpoint
//! disarms itself, so recovery code running in the same thread is never
//! re-injected unless the test re-arms.
//!
//! State is **thread-local**: parallel test threads arm and fire
//! independently without interfering. Injected faults increment the
//! `storage.failpoint.injected.count` counter in the global
//! [`rcmo_obs`] registry.
//!
//! The full inventory is [`ALL`]; the torture harness enumerates it to
//! crash at every site at every occurrence (see `tests/crash_torture.rs`).

use crate::error::{Result, StorageError};
use std::cell::RefCell;
use std::collections::HashMap;

/// WAL record append (`Wal::append`), before bytes are written.
pub const WAL_APPEND: &str = "storage.wal.append";
/// WAL fsync (`Wal::sync`), before the sync is issued.
pub const WAL_SYNC: &str = "storage.wal.sync";
/// WAL truncation after checkpoint (`Wal::truncate`).
pub const WAL_TRUNCATE: &str = "storage.wal.truncate";
/// Between the WAL append of a commit record and the publication of the
/// committed snapshot to readers: the transaction is fully in the log but
/// not yet visible in-process.
pub const COMMIT_PUBLISH: &str = "storage.commit.publish";
/// Checkpoint write of one non-meta committed page to the data file.
pub const FLUSH_PAGE: &str = "storage.pager.flush_page";
/// Checkpoint write of the meta page to the data file.
pub const FLUSH_META: &str = "storage.pager.flush_meta";
/// Data-file fsync (`DiskManager::sync`).
pub const DISK_SYNC: &str = "storage.disk.sync";
/// Between the data-file flush and the WAL truncate in commit: the
/// checkpoint boundary where both the data file and the WAL hold the
/// transaction.
pub const CHECKPOINT: &str = "storage.checkpoint";

/// Every failpoint site, in commit-protocol order.
pub const ALL: &[&str] = &[
    WAL_APPEND,
    WAL_SYNC,
    COMMIT_PUBLISH,
    WAL_TRUNCATE,
    FLUSH_PAGE,
    FLUSH_META,
    DISK_SYNC,
    CHECKPOINT,
];

#[derive(Default)]
struct Site {
    hits: u64,
    fire_at: Option<u64>,
}

thread_local! {
    static SITES: RefCell<HashMap<&'static str, Site>> = RefCell::new(HashMap::new());
}

/// Arms `name` so its `nth` hit (1-based, counted from this call) fails.
/// Re-arming resets the count. Panics if `nth` is zero.
pub fn arm(name: &'static str, nth: u64) {
    assert!(nth >= 1, "failpoints fire on a 1-based hit index");
    SITES.with(|s| {
        let mut map = s.borrow_mut();
        let site = map.entry(name).or_default();
        site.hits = 0;
        site.fire_at = Some(nth);
    });
}

/// Disarms every site and zeroes all hit counts for this thread.
pub fn reset() {
    SITES.with(|s| s.borrow_mut().clear());
}

/// Hits observed at `name` since the last [`reset`]/[`arm`] of that site.
pub fn hits(name: &str) -> u64 {
    SITES.with(|s| s.borrow().get(name).map_or(0, |site| site.hits))
}

/// Registers one pass through the failpoint `name`. Returns
/// [`StorageError::FaultInjected`] if the site was armed for this hit;
/// the site then disarms itself.
pub fn hit(name: &'static str) -> Result<()> {
    static INJECTED: rcmo_obs::LazyCounter =
        rcmo_obs::LazyCounter::new("storage.failpoint.injected.count");
    SITES.with(|s| {
        let mut map = s.borrow_mut();
        let site = map.entry(name).or_default();
        site.hits += 1;
        if site.fire_at == Some(site.hits) {
            site.fire_at = None;
            INJECTED.inc();
            return Err(StorageError::FaultInjected(format!(
                "failpoint {} fired on hit {}",
                name, site.hits
            )));
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_failpoints_only_count() {
        reset();
        for _ in 0..5 {
            hit(WAL_APPEND).unwrap();
        }
        assert_eq!(hits(WAL_APPEND), 5);
        assert_eq!(hits(WAL_SYNC), 0);
        reset();
        assert_eq!(hits(WAL_APPEND), 0);
    }

    #[test]
    fn armed_failpoint_fires_once_then_disarms() {
        reset();
        arm(FLUSH_PAGE, 3);
        assert!(hit(FLUSH_PAGE).is_ok());
        assert!(hit(FLUSH_PAGE).is_ok());
        let err = hit(FLUSH_PAGE).unwrap_err();
        assert!(matches!(err, StorageError::FaultInjected(_)));
        // Disarmed: later hits pass and keep counting.
        assert!(hit(FLUSH_PAGE).is_ok());
        assert_eq!(hits(FLUSH_PAGE), 4);
        reset();
    }

    #[test]
    fn arming_resets_the_count_for_that_site() {
        reset();
        hit(CHECKPOINT).unwrap();
        hit(CHECKPOINT).unwrap();
        arm(CHECKPOINT, 1);
        assert!(hit(CHECKPOINT).is_err());
        reset();
    }
}
