//! Fixed-size pages and the on-page primitives shared by all page kinds.
//!
//! Every page is [`PAGE_SIZE`] bytes. The first [`PAGE_HEADER`] bytes are a
//! common header:
//!
//! ```text
//! offset 0..4   crc32 of bytes 4..PAGE_SIZE (stored little-endian)
//! offset 4      page kind tag (PageKind)
//! offset 5..8   reserved (zero)
//! ```
//!
//! The checksum is computed when a page is written to stable storage and
//! verified when it is read back; an in-memory page's checksum field is
//! stale by design.

use crate::error::{Result, StorageError};
use std::fmt;

/// Size of every page in bytes (8 KiB, a common database default).
pub const PAGE_SIZE: usize = 8192;

/// Bytes reserved at the start of every page for the common header.
pub const PAGE_HEADER: usize = 8;

/// Identifier of a page: its index within the data file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// The meta page (always page 0).
    pub const META: PageId = PageId(0);

    /// Sentinel meaning "no page" in linked-list fields.
    pub const NONE: PageId = PageId(u64::MAX);

    /// `true` unless this is the [`NONE`](Self::NONE) sentinel.
    pub fn is_some(self) -> bool {
        self != PageId::NONE
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == PageId::NONE {
            write!(f, "page(none)")
        } else {
            write!(f, "page{}", self.0)
        }
    }
}

/// What lives on a page; stored in the common header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageKind {
    /// Unallocated / on the free list.
    Free = 0,
    /// The database meta page (page 0).
    Meta = 1,
    /// A slotted heap page.
    Heap = 2,
    /// A B+tree internal node.
    BTreeInternal = 3,
    /// A B+tree leaf node.
    BTreeLeaf = 4,
    /// A BLOB chunk page.
    Blob = 5,
}

impl PageKind {
    /// Decodes a header tag.
    pub fn from_tag(tag: u8) -> Option<PageKind> {
        Some(match tag {
            0 => PageKind::Free,
            1 => PageKind::Meta,
            2 => PageKind::Heap,
            3 => PageKind::BTreeInternal,
            4 => PageKind::BTreeLeaf,
            5 => PageKind::Blob,
            _ => return None,
        })
    }
}

/// An in-memory page image.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Page(kind={:?})", self.kind())
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::new(PageKind::Free)
    }
}

impl Page {
    /// A zeroed page of the given kind.
    pub fn new(kind: PageKind) -> Self {
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data[4] = kind as u8;
        Page { data }
    }

    /// Wraps a raw image read from storage, verifying its checksum.
    pub fn from_bytes(page_id: PageId, bytes: &[u8]) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt {
                page: page_id.0,
                detail: format!("image is {} bytes", bytes.len()),
            });
        }
        let stored = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let computed = crc32(&bytes[4..]);
        if stored != computed {
            return Err(StorageError::Corrupt {
                page: page_id.0,
                detail: format!("checksum {computed:#x} != stored {stored:#x}"),
            });
        }
        if PageKind::from_tag(bytes[4]).is_none() {
            return Err(StorageError::Corrupt {
                page: page_id.0,
                detail: format!("unknown page kind {}", bytes[4]),
            });
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        Ok(Page { data })
    }

    /// The page's kind tag.
    pub fn kind(&self) -> PageKind {
        PageKind::from_tag(self.data[4]).unwrap_or(PageKind::Free)
    }

    /// Rewrites the kind tag (page reuse from the free list).
    pub fn set_kind(&mut self, kind: PageKind) {
        self.data[4] = kind as u8;
    }

    /// Refreshes the stored checksum and returns the full image for writing.
    pub fn sealed_bytes(&mut self) -> &[u8; PAGE_SIZE] {
        let sum = crc32(&self.data[4..]);
        self.data[0..4].copy_from_slice(&sum.to_le_bytes());
        &self.data
    }

    /// The raw image as-is, checksum field included. Only valid for writing
    /// to storage if the page was sealed after its last mutation.
    pub fn raw_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Read access to the page body (beyond the common header).
    pub fn body(&self) -> &[u8] {
        &self.data[PAGE_HEADER..]
    }

    /// Write access to the page body (beyond the common header).
    pub fn body_mut(&mut self) -> &mut [u8] {
        &mut self.data[PAGE_HEADER..]
    }

    // Little-endian scalar accessors into the body (offsets are body-relative).

    /// Reads a `u16` at body offset `off`.
    pub fn get_u16(&self, off: usize) -> u16 {
        let b = self.body();
        u16::from_le_bytes([b[off], b[off + 1]])
    }

    /// Writes a `u16` at body offset `off`.
    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.body_mut()[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u32` at body offset `off`.
    pub fn get_u32(&self, off: usize) -> u32 {
        let b = self.body();
        u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
    }

    /// Writes a `u32` at body offset `off`.
    pub fn put_u32(&mut self, off: usize, v: u32) {
        self.body_mut()[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u64` at body offset `off`.
    pub fn get_u64(&self, off: usize) -> u64 {
        let b = self.body();
        let mut a = [0u8; 8];
        a.copy_from_slice(&b[off..off + 8]);
        u64::from_le_bytes(a)
    }

    /// Writes a `u64` at body offset `off`.
    pub fn put_u64(&mut self, off: usize, v: u64) {
        self.body_mut()[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`.
///
/// Table-driven; the table is built on first use.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn page_roundtrip_with_checksum() {
        let mut p = Page::new(PageKind::Heap);
        p.put_u64(0, 0xDEAD_BEEF);
        p.put_u16(8, 42);
        let bytes = p.sealed_bytes().to_vec();
        let q = Page::from_bytes(PageId(3), &bytes).unwrap();
        assert_eq!(q.kind(), PageKind::Heap);
        assert_eq!(q.get_u64(0), 0xDEAD_BEEF);
        assert_eq!(q.get_u16(8), 42);
    }

    #[test]
    fn corruption_detected() {
        let mut p = Page::new(PageKind::Blob);
        p.put_u32(16, 7);
        let mut bytes = p.sealed_bytes().to_vec();
        bytes[100] ^= 0xFF;
        assert!(matches!(
            Page::from_bytes(PageId(9), &bytes),
            Err(StorageError::Corrupt { page: 9, .. })
        ));
    }

    #[test]
    fn wrong_size_rejected() {
        assert!(Page::from_bytes(PageId(1), &[0u8; 100]).is_err());
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut p = Page::new(PageKind::Heap);
        let mut bytes = p.sealed_bytes().to_vec();
        bytes[4] = 200;
        // Fix checksum to isolate the kind check.
        let sum = crc32(&bytes[4..]);
        bytes[0..4].copy_from_slice(&sum.to_le_bytes());
        assert!(Page::from_bytes(PageId(1), &bytes).is_err());
    }

    #[test]
    fn scalar_accessors() {
        let mut p = Page::new(PageKind::Meta);
        p.put_u16(0, u16::MAX);
        p.put_u32(2, u32::MAX - 1);
        p.put_u64(6, u64::MAX - 2);
        assert_eq!(p.get_u16(0), u16::MAX);
        assert_eq!(p.get_u32(2), u32::MAX - 1);
        assert_eq!(p.get_u64(6), u64::MAX - 2);
    }
}
