//! Chunked BLOB storage for multimedia payloads.
//!
//! The paper stores images, audio and compound objects as Oracle BLOBs (up
//! to 4 GB). Here a BLOB is a chain of chunk pages:
//!
//! ```text
//! first page:  0..8 u64 next | 8..16 u64 total_len | 16..20 u32 chunk_len | data
//! later pages: 0..8 u64 next |                       8..12 u32 chunk_len  | data
//! ```
//!
//! [`read_prefix`](BlobStore::read_prefix) serves progressive transfer: the
//! layered image codec (`rcmo-codec`) produces bitstreams whose prefixes
//! decode to coarser resolutions, so a bandwidth-limited client fetches only
//! a prefix of the stored BLOB.

use crate::error::{Result, StorageError};
use crate::page::{PageId, PageKind, PAGE_HEADER, PAGE_SIZE};
use crate::pager::{BufferPool, PageRead};

const BODY: usize = PAGE_SIZE - PAGE_HEADER;
pub(crate) const OFF_NEXT: usize = 0;
pub(crate) const FIRST_TOTAL: usize = 8;
pub(crate) const FIRST_CHUNK_LEN: usize = 16;
const FIRST_DATA: usize = 20;
pub(crate) const CONT_CHUNK_LEN: usize = 8;
const CONT_DATA: usize = 12;

/// Usable bytes in the first chunk page.
pub const FIRST_CAP: usize = BODY - FIRST_DATA;
/// Usable bytes in each continuation page.
pub const CONT_CAP: usize = BODY - CONT_DATA;

/// Identifier of a BLOB: the page id of its first chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlobId(pub u64);

impl std::fmt::Display for BlobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blob{}", self.0)
    }
}

/// BLOB operations over a buffer pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlobStore;

impl BlobStore {
    /// Writes `data` as a new BLOB and returns its id.
    pub fn create(pool: &mut BufferPool, data: &[u8]) -> Result<BlobId> {
        let first = pool.allocate(PageKind::Blob)?;
        let first_chunk = data.len().min(FIRST_CAP);
        pool.with_page_mut(first, |p| {
            p.put_u64(OFF_NEXT, PageId::NONE.0);
            p.put_u64(FIRST_TOTAL, data.len() as u64);
            p.put_u32(FIRST_CHUNK_LEN, first_chunk as u32);
            p.body_mut()[FIRST_DATA..FIRST_DATA + first_chunk]
                .copy_from_slice(&data[..first_chunk]);
        })?;
        let mut prev = first;
        let mut written = first_chunk;
        while written < data.len() {
            let chunk = (data.len() - written).min(CONT_CAP);
            let page = pool.allocate(PageKind::Blob)?;
            pool.with_page_mut(page, |p| {
                p.put_u64(OFF_NEXT, PageId::NONE.0);
                p.put_u32(CONT_CHUNK_LEN, chunk as u32);
                p.body_mut()[CONT_DATA..CONT_DATA + chunk]
                    .copy_from_slice(&data[written..written + chunk]);
            })?;
            pool.with_page_mut(prev, |p| p.put_u64(OFF_NEXT, page.0))?;
            prev = page;
            written += chunk;
        }
        Ok(BlobId(first.0))
    }

    fn check_first<P: PageRead>(pool: &mut P, id: BlobId) -> Result<()> {
        let ok = pool
            .with_page(PageId(id.0), |p| p.kind() == PageKind::Blob)
            .unwrap_or(false);
        if ok {
            Ok(())
        } else {
            Err(StorageError::BlobNotFound(id.0))
        }
    }

    /// Total length of the BLOB in bytes.
    pub fn len<P: PageRead>(pool: &mut P, id: BlobId) -> Result<u64> {
        Self::check_first(pool, id)?;
        pool.with_page(PageId(id.0), |p| p.get_u64(FIRST_TOTAL))
    }

    /// Reads the whole BLOB.
    pub fn read<P: PageRead>(pool: &mut P, id: BlobId) -> Result<Vec<u8>> {
        let total = Self::len(pool, id)?;
        Self::read_prefix(pool, id, total as usize)
    }

    /// Reads the first `n` bytes (or the whole BLOB if shorter) — the
    /// progressive-transfer path.
    pub fn read_prefix<P: PageRead>(pool: &mut P, id: BlobId, n: usize) -> Result<Vec<u8>> {
        Self::check_first(pool, id)?;
        let mut out = Vec::with_capacity(n);
        let mut page = PageId(id.0);
        let mut first = true;
        while page.is_some() && out.len() < n {
            let next = pool.with_page(page, |p| {
                let (len_off, data_off) = if first {
                    (FIRST_CHUNK_LEN, FIRST_DATA)
                } else {
                    (CONT_CHUNK_LEN, CONT_DATA)
                };
                let chunk = p.get_u32(len_off) as usize;
                let take = chunk.min(n - out.len());
                out.extend_from_slice(&p.body()[data_off..data_off + take]);
                PageId(p.get_u64(OFF_NEXT))
            })?;
            first = false;
            page = next;
        }
        Ok(out)
    }

    /// Frees every chunk page of the BLOB.
    pub fn delete(pool: &mut BufferPool, id: BlobId) -> Result<()> {
        Self::check_first(pool, id)?;
        let mut page = PageId(id.0);
        while page.is_some() {
            let next = pool.with_page(page, |p| PageId(p.get_u64(OFF_NEXT)))?;
            pool.free_page(page)?;
            page = next;
        }
        Ok(())
    }

    /// Number of chunk pages a BLOB of `len` bytes occupies.
    pub fn pages_for(len: usize) -> usize {
        if len <= FIRST_CAP {
            1
        } else {
            1 + (len - FIRST_CAP).div_ceil(CONT_CAP)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;
    use crate::page::Page;
    use crate::pager::META_FREE_HEAD;

    fn pool() -> BufferPool {
        let mut disk = DiskManager::in_memory();
        let mut meta = Page::new(PageKind::Meta);
        meta.put_u64(META_FREE_HEAD, PageId::NONE.0);
        disk.write_page(PageId::META, &mut meta).unwrap();
        BufferPool::for_tests(disk, 256)
    }

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn empty_blob() {
        let mut pool = pool();
        let id = BlobStore::create(&mut pool, &[]).unwrap();
        assert_eq!(BlobStore::len(&mut pool, id).unwrap(), 0);
        assert!(BlobStore::read(&mut pool, id).unwrap().is_empty());
    }

    #[test]
    fn single_page_blob() {
        let mut pool = pool();
        let data = pattern(1000);
        let id = BlobStore::create(&mut pool, &data).unwrap();
        assert_eq!(BlobStore::read(&mut pool, id).unwrap(), data);
        assert_eq!(BlobStore::pages_for(1000), 1);
    }

    #[test]
    fn multi_page_blob_roundtrip() {
        let mut pool = pool();
        let data = pattern(100_000);
        let id = BlobStore::create(&mut pool, &data).unwrap();
        assert_eq!(BlobStore::len(&mut pool, id).unwrap(), 100_000);
        assert_eq!(BlobStore::read(&mut pool, id).unwrap(), data);
        assert!(BlobStore::pages_for(100_000) > 12);
    }

    #[test]
    fn exact_boundary_sizes() {
        let mut pool = pool();
        for n in [
            FIRST_CAP,
            FIRST_CAP + 1,
            FIRST_CAP + CONT_CAP,
            FIRST_CAP + CONT_CAP + 1,
        ] {
            let data = pattern(n);
            let id = BlobStore::create(&mut pool, &data).unwrap();
            assert_eq!(BlobStore::read(&mut pool, id).unwrap(), data, "size {n}");
        }
    }

    #[test]
    fn prefix_reads() {
        let mut pool = pool();
        let data = pattern(50_000);
        let id = BlobStore::create(&mut pool, &data).unwrap();
        for n in [
            0usize,
            1,
            100,
            FIRST_CAP,
            FIRST_CAP + 5,
            49_999,
            50_000,
            80_000,
        ] {
            let prefix = BlobStore::read_prefix(&mut pool, id, n).unwrap();
            let want = &data[..n.min(data.len())];
            assert_eq!(prefix, want, "prefix {n}");
        }
    }

    #[test]
    fn delete_frees_pages() {
        let mut pool = pool();
        let data = pattern(60_000);
        let id = BlobStore::create(&mut pool, &data).unwrap();
        let before = pool.num_pages();
        BlobStore::delete(&mut pool, id).unwrap();
        // Creating the same blob again reuses freed pages: no growth.
        let _id2 = BlobStore::create(&mut pool, &data).unwrap();
        assert_eq!(pool.num_pages(), before);
    }

    #[test]
    fn missing_blob_rejected() {
        let mut pool = pool();
        assert!(matches!(
            BlobStore::read(&mut pool, BlobId(999)),
            Err(StorageError::BlobNotFound(999))
        ));
        // A heap page is not a blob.
        let hp = pool.allocate(PageKind::Heap).unwrap();
        assert!(BlobStore::read(&mut pool, BlobId(hp.0)).is_err());
    }
}
