//! The database facade: typed tables, transactions, recovery.
//!
//! ```
//! use rcmo_storage::{Database, Schema, Column, ColumnType, RowValue};
//!
//! let db = Database::in_memory().unwrap();
//! let mut tx = db.begin().unwrap();
//! tx.create_table(
//!     "IMAGE_OBJECTS_TABLE",
//!     Schema::new(vec![
//!         Column::new("ID", ColumnType::U64),
//!         Column::new("FLD_NAME", ColumnType::Text),
//!         Column::new("FLD_DATA", ColumnType::Blob),
//!     ])
//!     .unwrap(),
//! )
//! .unwrap();
//! let blob = tx.put_blob(&[1, 2, 3]).unwrap();
//! let id = tx
//!     .insert(
//!         "IMAGE_OBJECTS_TABLE",
//!         vec![RowValue::Null, RowValue::Text("ct".into()), RowValue::Blob(blob)],
//!     )
//!     .unwrap();
//! tx.commit().unwrap();
//!
//! let mut tx = db.begin().unwrap();
//! let row = tx.get("IMAGE_OBJECTS_TABLE", id).unwrap().unwrap();
//! assert_eq!(row[1], RowValue::Text("ct".into()));
//! ```
//!
//! A [`Transaction`] holds the database's single mutex guard, making the
//! single-writer discipline a compile-time property. Dropping an
//! uncommitted transaction rolls it back.

use crate::blob::{BlobId, BlobStore};
use crate::btree::BTree;
use crate::catalog::{decode_row, encode_row, CatalogEntry, RowValue as RV, Schema, TableInfo};
use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::heap::Heap;
use crate::page::{Page, PageId, PageKind};
use crate::pager::{BufferPool, PoolStats};
use crate::wal::Wal;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

pub use crate::catalog::RowValue;

pub(crate) const META_MAGIC_OFF: usize = 0;
pub(crate) const META_CATALOG_ROOT: usize = 16;
pub(crate) const META_NEXT_TXN: usize = 24;
pub(crate) const META_MAGIC: u64 = 0x5243_4D4F_4442_3101; // "RCMODB1" + version 1

/// Default buffer-pool capacity in frames (2048 × 8 KiB = 16 MiB).
pub const DEFAULT_POOL_FRAMES: usize = 2048;

pub(crate) struct Inner {
    pub(crate) pool: BufferPool,
    pub(crate) wal: Wal,
    pub(crate) catalog: HashMap<String, CatalogEntry>,
    pub(crate) next_txn: u64,
}

/// An embedded database instance. Cloneable handles are not provided; share
/// via `Arc<Database>`.
pub struct Database {
    pub(crate) inner: Mutex<Inner>,
    path: Option<PathBuf>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Database({:?})", self.path)
    }
}

impl Database {
    /// Opens (creating if necessary) a file-backed database at `path`; the
    /// WAL lives next to it at `<path>.wal`. Runs crash recovery first.
    ///
    /// Opening is salvage-tolerant: a torn trailing partial page in the
    /// data file is truncated away, and a WAL whose header is unreadable is
    /// quarantined aside (renamed to `<path>.wal.corrupt-<k>`) rather than
    /// refusing to start. WAL replay itself already stops at the first torn
    /// or corrupt record, salvaging the longest valid committed prefix.
    pub fn open(path: impl AsRef<Path>) -> Result<Database> {
        Self::open_with_pool(path, DEFAULT_POOL_FRAMES)
    }

    /// Creates an ephemeral in-memory database (no durability across drop,
    /// but the full WAL/commit machinery still runs in-process).
    pub fn in_memory() -> Result<Database> {
        Self::finish_open(
            DiskManager::in_memory(),
            Wal::in_memory(),
            None,
            DEFAULT_POOL_FRAMES,
        )
    }

    /// In-memory database with an explicit buffer-pool capacity in frames
    /// (for cache-pressure experiments; minimum 8).
    pub fn in_memory_with_pool(frames: usize) -> Result<Database> {
        Self::finish_open(DiskManager::in_memory(), Wal::in_memory(), None, frames)
    }

    /// File-backed database with an explicit buffer-pool capacity.
    pub fn open_with_pool(path: impl AsRef<Path>, frames: usize) -> Result<Database> {
        let path = path.as_ref().to_path_buf();
        let wal_path = wal_path_for(&path);
        let mut disk = DiskManager::open(&path)?;
        let (mut wal, _quarantined) = Wal::open_or_quarantine(&wal_path)?;
        recover(&mut disk, &mut wal)?;
        Self::finish_open(disk, wal, Some(path), frames)
    }

    /// Opens a database over explicit byte-level [`Backend`]s for the data
    /// file and the WAL (crash-injection harnesses hand in
    /// [`FaultyBackend`](crate::backend::FaultyBackend)s or survivor-image
    /// [`MemBackend`](crate::backend::MemBackend)s here). Applies the same
    /// salvage and recovery as a file-backed open.
    pub fn open_with_backends(
        data: Box<dyn crate::backend::Backend>,
        wal: Box<dyn crate::backend::Backend>,
        frames: usize,
    ) -> Result<Database> {
        let mut disk = DiskManager::from_backend(data)?;
        let mut wal = Wal::from_backend(wal)?;
        recover(&mut disk, &mut wal)?;
        Self::finish_open(disk, wal, None, frames)
    }

    fn finish_open(
        mut disk: DiskManager,
        wal: Wal,
        path: Option<PathBuf>,
        pool_frames: usize,
    ) -> Result<Database> {
        if disk.num_pages() == 0 {
            let mut meta = Page::new(PageKind::Meta);
            meta.put_u64(META_MAGIC_OFF, META_MAGIC);
            meta.put_u64(crate::pager::META_FREE_HEAD, PageId::NONE.0);
            meta.put_u64(META_CATALOG_ROOT, PageId::NONE.0);
            meta.put_u64(META_NEXT_TXN, 1);
            disk.write_page(PageId::META, &mut meta)?;
            disk.sync()?;
        }
        let mut pool = BufferPool::new(disk, pool_frames);
        let magic = pool.with_page(PageId::META, |p| p.get_u64(META_MAGIC_OFF))?;
        if magic != META_MAGIC {
            return Err(StorageError::BadHeader(format!(
                "meta magic {magic:#x} != {META_MAGIC:#x}"
            )));
        }
        let next_txn = pool.with_page(PageId::META, |p| p.get_u64(META_NEXT_TXN))?;
        let mut inner = Inner {
            pool,
            wal,
            catalog: HashMap::new(),
            next_txn,
        };
        // Bootstrap the catalog heap on a fresh database.
        let catalog_root = inner
            .pool
            .with_page(PageId::META, |p| PageId(p.get_u64(META_CATALOG_ROOT)))?;
        if !catalog_root.is_some() {
            let txn = inner.next_txn;
            inner.next_txn += 1;
            let heap = Heap::create(&mut inner.pool)?;
            let root = heap.first_page();
            inner.pool.with_page_mut(PageId::META, |p| {
                p.put_u64(META_CATALOG_ROOT, root.0);
                p.put_u64(META_NEXT_TXN, inner.next_txn);
            })?;
            commit_inner(&mut inner, txn)?;
        }
        reload_catalog(&mut inner)?;
        Ok(Database {
            inner: Mutex::new(inner),
            path,
        })
    }

    /// Begins the (single) read-write transaction. Blocks while another
    /// transaction is open on this database — including one held by the
    /// *same* thread, which self-deadlocks; drop (or scope) the previous
    /// [`Transaction`] first, or use [`try_begin`](Self::try_begin).
    pub fn begin(&self) -> Result<Transaction<'_>> {
        let mut inner = self.inner.lock();
        let txn_id = inner.next_txn;
        inner.next_txn += 1;
        Ok(Transaction {
            inner,
            txn_id,
            done: false,
        })
    }

    /// Non-blocking [`begin`](Self::begin): returns `None` when another
    /// transaction is currently open.
    pub fn try_begin(&self) -> Option<Transaction<'_>> {
        let mut inner = self.inner.try_lock()?;
        let txn_id = inner.next_txn;
        inner.next_txn += 1;
        Some(Transaction {
            inner,
            txn_id,
            done: false,
        })
    }

    /// Buffer-pool statistics.
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.lock().pool.stats()
    }

    /// The data-file path (`None` for in-memory databases).
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

/// Derives the WAL path for a data file.
pub fn wal_path_for(data: &Path) -> PathBuf {
    let mut s = data.as_os_str().to_os_string();
    s.push(".wal");
    PathBuf::from(s)
}

/// Replays committed WAL transactions into the data file and truncates the
/// log. Called on every open; a no-op for a clean shutdown.
fn recover(disk: &mut DiskManager, wal: &mut Wal) -> Result<()> {
    if wal.is_empty()? {
        return Ok(());
    }
    let (images, _committed) = wal.committed_images()?;
    if !images.is_empty() {
        for (page, image) in images {
            disk.write_raw(page, &image)?;
        }
        disk.sync()?;
    }
    wal.truncate()?;
    Ok(())
}

fn reload_catalog(inner: &mut Inner) -> Result<()> {
    inner.catalog.clear();
    let root = inner
        .pool
        .with_page(PageId::META, |p| PageId(p.get_u64(META_CATALOG_ROOT)))?;
    if !root.is_some() {
        return Ok(());
    }
    let heap = Heap::open(root);
    for (record, bytes) in heap.scan(&mut inner.pool)? {
        let info = TableInfo::decode(&bytes)?;
        inner.catalog.insert(
            info.name.clone(),
            CatalogEntry {
                info,
                record,
                hint: None,
            },
        );
    }
    // The in-memory next_txn may have raced past the persisted one; keep the
    // larger to stay monotone.
    let persisted = inner
        .pool
        .with_page(PageId::META, |p| p.get_u64(META_NEXT_TXN))?;
    inner.next_txn = inner.next_txn.max(persisted);
    Ok(())
}

/// WAL-logs all dirty pages, syncs, forces them to the data file, and
/// truncates the WAL (checkpoint-per-commit).
fn commit_inner(inner: &mut Inner, txn_id: u64) -> Result<()> {
    // Persist the txn counter so ids stay monotone across restarts.
    inner
        .pool
        .with_page_mut(PageId::META, |p| p.put_u64(META_NEXT_TXN, inner.next_txn))?;
    let dirty = inner.pool.dirty_ids();
    if dirty.is_empty() {
        return Ok(());
    }
    for id in dirty {
        let image = inner.pool.sealed_image(id)?;
        inner.wal.log_page(txn_id, id, &image)?;
    }
    inner.wal.log_commit(txn_id)?;
    inner.wal.sync()?;
    inner.pool.flush_dirty()?;
    // The checkpoint boundary: the transaction is durable in both the data
    // file and the WAL; only the log truncation remains.
    crate::failpoint::hit(crate::failpoint::CHECKPOINT)?;
    inner.wal.truncate()?;
    Ok(())
}

/// A read-write transaction. All table, index, and BLOB operations live
/// here. Commit or drop (rollback) to release the database.
pub struct Transaction<'db> {
    inner: MutexGuard<'db, Inner>,
    txn_id: u64,
    done: bool,
}

impl<'db> Transaction<'db> {
    /// This transaction's id (visible in the WAL).
    pub fn id(&self) -> u64 {
        self.txn_id
    }

    fn entry(&self, table: &str) -> Result<CatalogEntry> {
        self.inner
            .catalog
            .get(table)
            .cloned()
            .ok_or_else(|| StorageError::Catalog(format!("unknown table '{table}'")))
    }

    fn save_entry(&mut self, entry: &CatalogEntry) -> Result<()> {
        let mut heap = Heap::open(catalog_root(&mut self.inner)?);
        let bytes = entry.info.encode();
        let new_rid = heap.update(&mut self.inner.pool, entry.record, &bytes)?;
        let mut entry = entry.clone();
        entry.record = new_rid;
        self.inner.catalog.insert(entry.info.name.clone(), entry);
        Ok(())
    }

    /// Creates a table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        if self.inner.catalog.contains_key(name) {
            return Err(StorageError::Catalog(format!(
                "table '{name}' already exists"
            )));
        }
        let heap = Heap::create(&mut self.inner.pool)?;
        let index = BTree::create(&mut self.inner.pool)?;
        let info = TableInfo {
            name: name.to_string(),
            schema,
            heap_root: heap.first_page(),
            index_root: index.root(),
            next_id: 1,
        };
        let mut cat_heap = Heap::open(catalog_root(&mut self.inner)?);
        let record = cat_heap.insert(&mut self.inner.pool, &info.encode())?;
        self.inner.catalog.insert(
            name.to_string(),
            CatalogEntry {
                info,
                record,
                hint: None,
            },
        );
        Ok(())
    }

    /// Drops a table, freeing its heap and index pages. BLOBs referenced by
    /// its rows are *not* freed automatically (callers own blob lifecycle).
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let entry = self.entry(name)?;
        Heap::open(entry.info.heap_root).destroy(&mut self.inner.pool)?;
        // Free the index pages: walk isn't implemented per-kind; rebuilds
        // handle space. We free just the root chain conservatively by
        // leaving index pages to the free list rebuild — documented leak
        // avoided by freeing reachable pages below.
        free_btree(&mut self.inner.pool, entry.info.index_root)?;
        let cat_heap = Heap::open(catalog_root(&mut self.inner)?);
        cat_heap.delete(&mut self.inner.pool, entry.record)?;
        self.inner.catalog.remove(name);
        Ok(())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.catalog.keys().cloned().collect();
        names.sort();
        names
    }

    /// A table's schema.
    pub fn schema(&self, table: &str) -> Result<Schema> {
        Ok(self.entry(table)?.info.schema)
    }

    /// Inserts a row. The primary key (column 0) may be
    /// [`RowValue::Null`], in which case the table's id counter assigns it.
    /// Returns the row's primary key.
    pub fn insert(&mut self, table: &str, mut values: Vec<RV>) -> Result<u64> {
        let mut entry = self.entry(table)?;
        if values.is_empty() {
            return Err(StorageError::Catalog("empty row".to_string()));
        }
        let id = match values[0] {
            RV::Null => {
                let id = entry.info.next_id;
                values[0] = RV::U64(id);
                id
            }
            RV::U64(id) => id,
            ref other => {
                return Err(StorageError::Catalog(format!(
                    "primary key must be U64 or Null, got {other:?}"
                )))
            }
        };
        let bytes = encode_row(&entry.info.schema, &values)?;
        let mut heap = Heap::open(entry.info.heap_root);
        if let Some(hint) = entry.hint {
            heap.set_insert_hint(hint);
        }
        let mut index = BTree::open(entry.info.index_root);
        let rid = heap.insert(&mut self.inner.pool, &bytes)?;
        if let Err(e) = index.insert(&mut self.inner.pool, id, rid.pack()) {
            heap.delete(&mut self.inner.pool, rid)?;
            return Err(e);
        }
        entry.info.index_root = index.root();
        entry.info.next_id = entry.info.next_id.max(id + 1);
        entry.hint = Some(heap.insert_hint());
        self.save_entry(&entry)?;
        Ok(id)
    }

    /// Fetches a row by primary key.
    pub fn get(&mut self, table: &str, id: u64) -> Result<Option<Vec<RV>>> {
        let entry = self.entry(table)?;
        let index = BTree::open(entry.info.index_root);
        let Some(packed) = index.get(&mut self.inner.pool, id)? else {
            return Ok(None);
        };
        let heap = Heap::open(entry.info.heap_root);
        let bytes = heap.get(&mut self.inner.pool, crate::heap::RecordId::unpack(packed))?;
        Ok(Some(decode_row(&entry.info.schema, &bytes)?))
    }

    /// Replaces the row with primary key `id`. The new row's key column must
    /// be `Null` (kept) or equal to `id`.
    pub fn update(&mut self, table: &str, id: u64, mut values: Vec<RV>) -> Result<()> {
        let mut entry = self.entry(table)?;
        match values.first() {
            Some(RV::Null) => values[0] = RV::U64(id),
            Some(RV::U64(k)) if *k == id => {}
            Some(other) => {
                return Err(StorageError::Catalog(format!(
                    "update cannot change the primary key (got {other:?})"
                )))
            }
            None => return Err(StorageError::Catalog("empty row".to_string())),
        }
        let bytes = encode_row(&entry.info.schema, &values)?;
        let mut index = BTree::open(entry.info.index_root);
        let packed = index
            .get(&mut self.inner.pool, id)?
            .ok_or(StorageError::KeyNotFound(id))?;
        let mut heap = Heap::open(entry.info.heap_root);
        let old_rid = crate::heap::RecordId::unpack(packed);
        let new_rid = heap.update(&mut self.inner.pool, old_rid, &bytes)?;
        if new_rid != old_rid {
            index.put(&mut self.inner.pool, id, new_rid.pack())?;
            entry.info.index_root = index.root();
            self.save_entry(&entry)?;
        }
        Ok(())
    }

    /// Deletes the row with primary key `id`, returning its values.
    pub fn delete(&mut self, table: &str, id: u64) -> Result<Vec<RV>> {
        let entry = self.entry(table)?;
        let mut index = BTree::open(entry.info.index_root);
        let packed = index.delete(&mut self.inner.pool, id)?;
        let heap = Heap::open(entry.info.heap_root);
        let rid = crate::heap::RecordId::unpack(packed);
        let bytes = heap.get(&mut self.inner.pool, rid)?;
        heap.delete(&mut self.inner.pool, rid)?;
        decode_row(&entry.info.schema, &bytes)
    }

    /// All rows, in primary-key order.
    pub fn scan(&mut self, table: &str) -> Result<Vec<Vec<RV>>> {
        self.range(table, 0, u64::MAX)
    }

    /// Rows with `lo <= id <= hi`, in key order.
    pub fn range(&mut self, table: &str, lo: u64, hi: u64) -> Result<Vec<Vec<RV>>> {
        let entry = self.entry(table)?;
        let index = BTree::open(entry.info.index_root);
        let heap = Heap::open(entry.info.heap_root);
        let pairs = index.range(&mut self.inner.pool, lo, hi)?;
        let mut rows = Vec::with_capacity(pairs.len());
        for (_, packed) in pairs {
            let bytes = heap.get(&mut self.inner.pool, crate::heap::RecordId::unpack(packed))?;
            rows.push(decode_row(&entry.info.schema, &bytes)?);
        }
        Ok(rows)
    }

    /// Number of rows in a table.
    pub fn count(&mut self, table: &str) -> Result<usize> {
        let entry = self.entry(table)?;
        BTree::open(entry.info.index_root).len(&mut self.inner.pool)
    }

    /// Stores a BLOB, returning its id.
    pub fn put_blob(&mut self, data: &[u8]) -> Result<BlobId> {
        BlobStore::create(&mut self.inner.pool, data)
    }

    /// Reads a whole BLOB.
    pub fn get_blob(&mut self, id: BlobId) -> Result<Vec<u8>> {
        BlobStore::read(&mut self.inner.pool, id)
    }

    /// Reads the first `n` bytes of a BLOB (progressive transfer).
    pub fn get_blob_prefix(&mut self, id: BlobId, n: usize) -> Result<Vec<u8>> {
        BlobStore::read_prefix(&mut self.inner.pool, id, n)
    }

    /// A BLOB's length.
    pub fn blob_len(&mut self, id: BlobId) -> Result<u64> {
        BlobStore::len(&mut self.inner.pool, id)
    }

    /// Frees a BLOB.
    pub fn delete_blob(&mut self, id: BlobId) -> Result<()> {
        BlobStore::delete(&mut self.inner.pool, id)
    }

    /// Commits: WAL-logs all dirty pages, syncs, forces them to the data
    /// file, truncates the WAL.
    pub fn commit(mut self) -> Result<()> {
        static LAT: rcmo_obs::LazyHistogram =
            rcmo_obs::LazyHistogram::new("storage.txn.commit.us", rcmo_obs::bounds::LATENCY_US);
        let _t = LAT.start_timer();
        commit_inner(&mut self.inner, self.txn_id)?;
        self.done = true;
        Ok(())
    }

    /// Rolls back explicitly (dropping does the same).
    pub fn rollback(mut self) {
        self.abort();
        self.done = true;
    }

    /// Fault-injection hook: durably writes the WAL (page images + commit
    /// record + sync) but **does not** force pages to the data file and does
    /// not truncate the log — as if the process crashed right after the WAL
    /// sync. Reopening the database must recover the transaction from the
    /// log. Only meaningful for file-backed databases.
    pub fn simulate_crash_after_wal(mut self) -> Result<()> {
        let next_txn = self.inner.next_txn;
        self.inner
            .pool
            .with_page_mut(PageId::META, |p| p.put_u64(META_NEXT_TXN, next_txn))?;
        for id in self.inner.pool.dirty_ids() {
            let image = self.inner.pool.sealed_image(id)?;
            self.inner.wal.log_page(self.txn_id, id, &image)?;
        }
        self.inner.wal.log_commit(self.txn_id)?;
        self.inner.wal.sync()?;
        // Crash: lose the buffer pool, keep the (stale) data file and WAL.
        self.inner.pool.discard_dirty();
        reload_catalog(&mut self.inner)?;
        self.done = true;
        Ok(())
    }

    fn abort(&mut self) {
        self.inner.pool.discard_dirty();
        // The in-memory catalog may hold uncommitted entries; reload from
        // the (clean) pages. Failures here would indicate corruption and
        // surface on the next operation anyway.
        let _ = reload_catalog(&mut self.inner);
    }
}

impl<'db> Drop for Transaction<'db> {
    fn drop(&mut self) {
        if !self.done {
            self.abort();
        }
    }
}

fn catalog_root(inner: &mut Inner) -> Result<PageId> {
    inner
        .pool
        .with_page(PageId::META, |p| PageId(p.get_u64(META_CATALOG_ROOT)))
}

/// Frees all pages reachable from a B+tree root.
fn free_btree(pool: &mut BufferPool, root: PageId) -> Result<()> {
    let kind = pool.with_page(root, |p| p.kind())?;
    if kind == PageKind::BTreeInternal {
        let children: Vec<PageId> = pool.with_page(root, |p| {
            let n = p.get_u16(0) as usize;
            let mut out = vec![PageId(p.get_u64(8))];
            for i in 0..n {
                out.push(PageId(p.get_u64(16 + i * 16 + 8)));
            }
            out
        })?;
        for c in children {
            free_btree(pool, c)?;
        }
    }
    pool.free_page(root)
}

#[cfg(test)]
mod tests;
