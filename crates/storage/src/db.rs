//! The database facade: typed tables, transactions, recovery.
//!
//! ```
//! use rcmo_storage::{Database, Schema, Column, ColumnType, RowValue};
//!
//! let db = Database::in_memory().unwrap();
//! let mut tx = db.begin().unwrap();
//! tx.create_table(
//!     "IMAGE_OBJECTS_TABLE",
//!     Schema::new(vec![
//!         Column::new("ID", ColumnType::U64),
//!         Column::new("FLD_NAME", ColumnType::Text),
//!         Column::new("FLD_DATA", ColumnType::Blob),
//!     ])
//!     .unwrap(),
//! )
//! .unwrap();
//! let blob = tx.put_blob(&[1, 2, 3]).unwrap();
//! let id = tx
//!     .insert(
//!         "IMAGE_OBJECTS_TABLE",
//!         vec![RowValue::Null, RowValue::Text("ct".into()), RowValue::Blob(blob)],
//!     )
//!     .unwrap();
//! tx.commit().unwrap();
//!
//! // Snapshot reads never take the writer lock.
//! let rd = db.begin_read().unwrap();
//! let row = rd.get("IMAGE_OBJECTS_TABLE", id).unwrap().unwrap();
//! assert_eq!(row[1], RowValue::Text("ct".into()));
//! ```
//!
//! # Commit pipeline
//!
//! A [`Transaction`] holds the database's writer mutex, making the
//! single-writer discipline a compile-time property; dropping an uncommitted
//! transaction rolls it back. Commit proceeds in three stages:
//!
//! 1. **Append** — the write set's sealed after-images plus a commit record
//!    go to the WAL under the log lock (no fsync yet in the default,
//!    *deferred* mode).
//! 2. **Publish** — a new immutable [`CommittedState`] (commit sequence
//!    number, copy-on-write page overlay, catalog snapshot) becomes visible
//!    to new readers, and the writer lock is released (*early lock
//!    release*).
//! 3. **Group commit** — the committing thread joins the shared WAL-sync
//!    batch: one fsync covers every commit appended before it started, so
//!    concurrent committers amortize the sync. [`DbOptions::
//!    group_commit_window`] optionally stretches the batch.
//!
//! Checkpoints (folding the committed overlay into the data file and
//! truncating the WAL) are decoupled from commit and triggered by WAL size
//! or commit count — or run eagerly per commit when
//! [`DbOptions::eager_checkpoint`] is set, which restores the historical
//! checkpoint-per-commit behaviour for crash-injection harnesses.

use crate::blob::{BlobId, BlobStore};
use crate::btree::BTree;
use crate::catalog::{decode_row, encode_row, CatalogEntry, RowValue as RV, Schema, TableInfo};
use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::heap::Heap;
use crate::page::{Page, PageId, PageKind};
use crate::pager::{BufferPool, PoolStats, ReadLayer};
use crate::snapshot::{CommittedState, SnapshotReader, SnapshotRegistry};
use crate::wal::Wal;
use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub use crate::catalog::RowValue;

pub(crate) const META_MAGIC_OFF: usize = 0;
pub(crate) const META_CATALOG_ROOT: usize = 16;
pub(crate) const META_NEXT_TXN: usize = 24;
pub(crate) const META_MAGIC: u64 = 0x5243_4D4F_4442_3101; // "RCMODB1" + version 1

/// Default buffer-pool capacity in frames (2048 × 8 KiB = 16 MiB).
pub const DEFAULT_POOL_FRAMES: usize = 2048;

/// Tunables for opening a [`Database`].
#[derive(Debug, Clone)]
pub struct DbOptions {
    /// Soft capacity of the writer's page buffer, in frames.
    pub pool_frames: usize,
    /// Number of lock stripes in the shared page cache.
    pub cache_shards: usize,
    /// Total frames across all cache shards.
    pub cache_frames: usize,
    /// How long a group-commit leader waits for followers to pile onto the
    /// batch before issuing the shared WAL fsync. Zero syncs immediately.
    pub group_commit_window: Duration,
    /// Checkpoint once the WAL grows past this many bytes.
    pub checkpoint_wal_bytes: u64,
    /// Checkpoint after this many commits.
    pub checkpoint_commits: u64,
    /// Checkpoint on every commit (historical behaviour): the WAL is synced
    /// *before* the commit publishes, so a sync failure aborts the
    /// transaction cleanly instead of poisoning the database.
    pub eager_checkpoint: bool,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            pool_frames: DEFAULT_POOL_FRAMES,
            cache_shards: 8,
            cache_frames: DEFAULT_POOL_FRAMES,
            group_commit_window: Duration::ZERO,
            checkpoint_wal_bytes: 8 * 1024 * 1024,
            checkpoint_commits: 4,
            eager_checkpoint: false,
        }
    }
}

impl DbOptions {
    /// Options with [`eager_checkpoint`](Self::eager_checkpoint) set: every
    /// commit syncs the WAL, flushes pages and truncates the log before
    /// returning.
    pub fn eager() -> Self {
        DbOptions {
            eager_checkpoint: true,
            ..DbOptions::default()
        }
    }
}

/// How a checkpoint should make the WAL durable before flushing pages.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CkptSync {
    /// The caller already synced the log (eager commits).
    Done,
    /// Sync via the group-commit path; a failure loses a *published* commit
    /// and must poison the database.
    Publish,
    /// Everything published is already durable (pre-append fold, explicit
    /// checkpoints); a sync failure is an ordinary, clean error.
    Clean,
}

#[derive(Default)]
struct GcState {
    /// Highest commit sequence number whose WAL records are known durable.
    durable: u64,
    /// A leader is currently running the shared fsync.
    syncing: bool,
    /// Set when a published commit could not be made durable.
    poisoned: Option<String>,
}

/// Group-commit coordinator: batches concurrent WAL fsyncs so one physical
/// sync covers every commit appended before it started.
struct GroupCommit {
    /// Highest published commit sequence number appended to the WAL.
    appended: AtomicU64,
    state: Mutex<GcState>,
    synced: Condvar,
}

impl GroupCommit {
    fn new() -> GroupCommit {
        GroupCommit {
            appended: AtomicU64::new(0),
            state: Mutex::new(GcState::default()),
            synced: Condvar::new(),
        }
    }

    /// Records that commit `csn`'s WAL records (appended strictly before
    /// this call) are published and awaiting durability.
    fn note_appended(&self, csn: u64) {
        self.appended.store(csn, Ordering::Release);
    }

    fn check_poisoned(&self) -> Result<()> {
        match self.state.lock().poisoned.as_ref() {
            Some(m) => Err(StorageError::Poisoned(m.clone())),
            None => Ok(()),
        }
    }

    /// Blocks until commit `target`'s WAL records are durable, becoming the
    /// sync leader if nobody else is. The leader reads the high-water mark
    /// *inside* the WAL lock, so a sync is only ever credited for records
    /// that were fully appended before it.
    fn sync_until(&self, target: u64, wal: &Mutex<Wal>, window: Duration) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            if let Some(m) = st.poisoned.as_ref() {
                return Err(StorageError::Poisoned(m.clone()));
            }
            if st.durable >= target {
                return Ok(());
            }
            if st.syncing {
                st = self.synced.wait(st);
                continue;
            }
            st.syncing = true;
            drop(st);
            if !window.is_zero() {
                std::thread::sleep(window);
            }
            let (high, res) = {
                let mut wal = wal.lock();
                let high = self.appended.load(Ordering::Acquire);
                (high, wal.sync())
            };
            st = self.state.lock();
            st.syncing = false;
            match res {
                Ok(()) => st.durable = st.durable.max(high),
                Err(e) => st.poisoned = Some(format!("WAL sync failed after publish: {e}")),
            }
            self.synced.notify_all();
        }
    }

    /// Syncs everything appended so far (checkpoint pre-sync).
    fn sync_now(&self, wal: &Mutex<Wal>) -> Result<()> {
        self.sync_until(self.appended.load(Ordering::Acquire), wal, Duration::ZERO)
    }

    /// Marks everything appended as durable — called after a checkpoint has
    /// folded all committed pages into the (synced) data file.
    fn credit_all(&self) {
        let mut st = self.state.lock();
        st.durable = st.durable.max(self.appended.load(Ordering::Acquire));
        drop(st);
        self.synced.notify_all();
    }
}

/// State shared between the writer, concurrent snapshot readers and the
/// group-commit machinery.
struct Shared {
    layer: Arc<ReadLayer>,
    committed: RwLock<Arc<CommittedState>>,
    wal: Mutex<Wal>,
    gc: GroupCommit,
    snapshots: SnapshotRegistry,
    opts: DbOptions,
}

pub(crate) struct Inner {
    pub(crate) pool: BufferPool,
    pub(crate) catalog: HashMap<String, CatalogEntry>,
    pub(crate) next_txn: u64,
    commits_since_ckpt: u64,
    /// The WAL holds records that must be folded out (a crash-simulation
    /// hook staged a transaction, or a previous commit failed partway):
    /// checkpoint before appending anything new, so two generations of
    /// records can never replay together.
    force_checkpoint: bool,
}

/// An embedded database instance. Cloneable handles are not provided; share
/// via `Arc<Database>`.
pub struct Database {
    pub(crate) writer: Mutex<Inner>,
    shared: Shared,
    path: Option<PathBuf>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Database({:?})", self.path)
    }
}

impl Database {
    /// Opens (creating if necessary) a file-backed database at `path`; the
    /// WAL lives next to it at `<path>.wal`. Runs crash recovery first.
    ///
    /// Opening is salvage-tolerant: a torn trailing partial page in the
    /// data file is truncated away, and a WAL whose header is unreadable is
    /// quarantined aside (renamed to `<path>.wal.corrupt-<k>`) rather than
    /// refusing to start. WAL replay itself already stops at the first torn
    /// or corrupt record, salvaging the longest valid committed prefix.
    pub fn open(path: impl AsRef<Path>) -> Result<Database> {
        Self::open_with_options(path, DbOptions::default())
    }

    /// Opens a file-backed database with explicit [`DbOptions`].
    pub fn open_with_options(path: impl AsRef<Path>, opts: DbOptions) -> Result<Database> {
        let path = path.as_ref().to_path_buf();
        let wal_path = wal_path_for(&path);
        let mut disk = DiskManager::open(&path)?;
        let (mut wal, _quarantined) = Wal::open_or_quarantine(&wal_path)?;
        recover(&mut disk, &mut wal)?;
        Self::finish_open(disk, wal, Some(path), opts)
    }

    /// File-backed database with an explicit buffer-pool capacity (both the
    /// writer's pool and the shared read cache get `frames` frames).
    pub fn open_with_pool(path: impl AsRef<Path>, frames: usize) -> Result<Database> {
        Self::open_with_options(
            path,
            DbOptions {
                pool_frames: frames,
                cache_frames: frames,
                ..DbOptions::default()
            },
        )
    }

    /// Creates an ephemeral in-memory database (no durability across drop,
    /// but the full WAL/commit machinery still runs in-process).
    pub fn in_memory() -> Result<Database> {
        Self::in_memory_with_options(DbOptions::default())
    }

    /// In-memory database with an explicit buffer-pool capacity in frames
    /// (for cache-pressure experiments): both the writer's pool and the
    /// shared read cache are capped at `frames`.
    pub fn in_memory_with_pool(frames: usize) -> Result<Database> {
        Self::in_memory_with_options(DbOptions {
            pool_frames: frames,
            cache_frames: frames,
            ..DbOptions::default()
        })
    }

    /// In-memory database with explicit [`DbOptions`].
    pub fn in_memory_with_options(opts: DbOptions) -> Result<Database> {
        Self::finish_open(DiskManager::in_memory(), Wal::in_memory(), None, opts)
    }

    /// Opens a database over explicit byte-level [`Backend`]s for the data
    /// file and the WAL (crash-injection harnesses hand in
    /// [`FaultyBackend`](crate::backend::FaultyBackend)s or survivor-image
    /// [`MemBackend`](crate::backend::MemBackend)s here). Applies the same
    /// salvage and recovery as a file-backed open, and checkpoints eagerly
    /// on every commit so each durability site is crossed per transaction.
    ///
    /// [`Backend`]: crate::backend::Backend
    pub fn open_with_backends(
        data: Box<dyn crate::backend::Backend>,
        wal: Box<dyn crate::backend::Backend>,
        frames: usize,
    ) -> Result<Database> {
        Self::open_with_backends_opts(
            data,
            wal,
            DbOptions {
                pool_frames: frames,
                cache_frames: frames,
                ..DbOptions::eager()
            },
        )
    }

    /// [`open_with_backends`](Self::open_with_backends) with explicit
    /// [`DbOptions`].
    pub fn open_with_backends_opts(
        data: Box<dyn crate::backend::Backend>,
        wal: Box<dyn crate::backend::Backend>,
        opts: DbOptions,
    ) -> Result<Database> {
        let mut disk = DiskManager::from_backend(data)?;
        let mut wal = Wal::from_backend(wal)?;
        recover(&mut disk, &mut wal)?;
        Self::finish_open(disk, wal, None, opts)
    }

    fn finish_open(
        mut disk: DiskManager,
        wal: Wal,
        path: Option<PathBuf>,
        opts: DbOptions,
    ) -> Result<Database> {
        if disk.num_pages() == 0 {
            let mut meta = Page::new(PageKind::Meta);
            meta.put_u64(META_MAGIC_OFF, META_MAGIC);
            meta.put_u64(crate::pager::META_FREE_HEAD, PageId::NONE.0);
            meta.put_u64(META_CATALOG_ROOT, PageId::NONE.0);
            meta.put_u64(META_NEXT_TXN, 1);
            disk.write_page(PageId::META, &mut meta)?;
            disk.sync()?;
        }
        let num_pages = disk.num_pages();
        let layer = Arc::new(ReadLayer::new(disk, opts.cache_shards, opts.cache_frames));
        let base = Arc::new(CommittedState::bootstrap(num_pages));
        let pool = BufferPool::new(Arc::clone(&layer), Arc::clone(&base), opts.pool_frames);
        let db = Database {
            writer: Mutex::new(Inner {
                pool,
                catalog: HashMap::new(),
                next_txn: 1,
                commits_since_ckpt: 0,
                force_checkpoint: false,
            }),
            shared: Shared {
                layer,
                committed: RwLock::new(base),
                wal: Mutex::new(wal),
                gc: GroupCommit::new(),
                snapshots: SnapshotRegistry::new(),
                opts,
            },
            path,
        };
        let catalog_root = {
            let mut inner = db.writer.lock();
            let magic = inner
                .pool
                .with_page(PageId::META, |p| p.get_u64(META_MAGIC_OFF))?;
            if magic != META_MAGIC {
                return Err(StorageError::BadHeader(format!(
                    "meta magic {magic:#x} != {META_MAGIC:#x}"
                )));
            }
            inner.next_txn = inner
                .pool
                .with_page(PageId::META, |p| p.get_u64(META_NEXT_TXN))?;
            inner
                .pool
                .with_page(PageId::META, |p| PageId(p.get_u64(META_CATALOG_ROOT)))?
        };
        // Bootstrap the catalog heap on a fresh database.
        if !catalog_root.is_some() {
            let mut tx = db.begin()?;
            let heap = Heap::create(&mut tx.inner.pool)?;
            let root = heap.first_page();
            tx.inner
                .pool
                .with_page_mut(PageId::META, |p| p.put_u64(META_CATALOG_ROOT, root.0))?;
            tx.commit()?;
        }
        {
            let mut inner = db.writer.lock();
            reload_catalog(&mut inner)?;
            db.install_catalog(&mut inner);
        }
        Ok(db)
    }

    /// Begins the (single) read-write transaction. Blocks while another
    /// write transaction is open on this database — including one held by
    /// the *same* thread, which self-deadlocks; drop (or scope) the previous
    /// [`Transaction`] first, or use [`try_begin`](Self::try_begin).
    /// Concurrent [`begin_read`](Self::begin_read) readers never block this.
    pub fn begin(&self) -> Result<Transaction<'_>> {
        self.shared.gc.check_poisoned()?;
        let mut inner = self.writer.lock();
        let txn_id = inner.next_txn;
        inner.next_txn += 1;
        Ok(Transaction {
            db: self,
            inner,
            txn_id,
            done: false,
        })
    }

    /// Non-blocking [`begin`](Self::begin): returns `None` when another
    /// write transaction is currently open (or the database is poisoned).
    pub fn try_begin(&self) -> Option<Transaction<'_>> {
        self.shared.gc.check_poisoned().ok()?;
        let mut inner = self.writer.try_lock()?;
        let txn_id = inner.next_txn;
        inner.next_txn += 1;
        Some(Transaction {
            db: self,
            inner,
            txn_id,
            done: false,
        })
    }

    /// Begins a read-only snapshot transaction: it observes the most
    /// recently *committed* state and never blocks (or is blocked by) the
    /// writer. Holding one pins its snapshot version: checkpoints stall
    /// until every strictly-older snapshot is released, so drop readers
    /// promptly.
    pub fn begin_read(&self) -> Result<ReadTransaction<'_>> {
        self.shared.gc.check_poisoned()?;
        let snap = self
            .shared
            .snapshots
            .register_current(&self.shared.committed);
        Ok(ReadTransaction { db: self, snap })
    }

    /// Folds all committed pages into the data file and truncates the WAL.
    /// Blocks until snapshot readers of older versions are released.
    pub fn checkpoint(&self) -> Result<()> {
        self.shared.gc.check_poisoned()?;
        let mut inner = self.writer.lock();
        self.checkpoint_locked(&mut inner, CkptSync::Clean)
    }

    /// Buffer-pool statistics, merged across the writer's pool and the
    /// shared read cache.
    pub fn pool_stats(&self) -> PoolStats {
        let pool = self.writer.lock().pool.stats();
        pool.merged(self.shared.layer.stats())
    }

    /// The data-file path (`None` for in-memory databases).
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Publishes the writer's write set as the next committed version and
    /// rebases the pool onto it. Returns the new commit sequence number.
    fn publish(&self, inner: &mut Inner) -> u64 {
        let old = Arc::clone(&self.shared.committed.read());
        let mut pages = old.pages.clone();
        for (id, page) in inner.pool.take_write_set() {
            pages.insert(id, page);
        }
        let state = Arc::new(CommittedState {
            csn: old.csn + 1,
            pages,
            catalog: Arc::new(inner.catalog.clone()),
            num_pages: inner.pool.num_pages(),
        });
        *self.shared.committed.write() = Arc::clone(&state);
        let csn = state.csn;
        inner.pool.set_base(state);
        csn
    }

    /// Re-publishes the current version with the freshly loaded catalog
    /// (open-time only; the version number does not change).
    fn install_catalog(&self, inner: &mut Inner) {
        let cur = Arc::clone(&self.shared.committed.read());
        let state = Arc::new(CommittedState {
            csn: cur.csn,
            pages: cur.pages.clone(),
            catalog: Arc::new(inner.catalog.clone()),
            num_pages: cur.num_pages,
        });
        *self.shared.committed.write() = Arc::clone(&state);
        if !inner.pool.has_dirty() {
            inner.pool.set_base(state);
        }
    }

    /// Folds the committed page overlay into the data file and truncates
    /// the WAL. Requires the writer lock (via `inner`); waits for snapshot
    /// readers of versions older than the one being folded.
    fn checkpoint_locked(&self, inner: &mut Inner, sync: CkptSync) -> Result<()> {
        let shared = &self.shared;
        let state = Arc::clone(&shared.committed.read());
        if state.pages.is_empty() && shared.wal.lock().is_empty()? {
            inner.commits_since_ckpt = 0;
            inner.force_checkpoint = false;
            return Ok(());
        }
        match sync {
            CkptSync::Done => {}
            CkptSync::Publish => shared.gc.sync_now(&shared.wal)?,
            CkptSync::Clean => shared.wal.lock().sync()?,
        }
        // Readers at exactly `state.csn` are safe — their overlay shadows
        // every page rewritten below. Anything older must drain first.
        shared.snapshots.wait_none_older_than(state.csn);
        if !state.pages.is_empty() {
            let mut ids: Vec<PageId> = state.pages.keys().copied().collect();
            ids.sort();
            let mut disk = shared.layer.disk.lock();
            for id in &ids {
                crate::failpoint::hit(if *id == PageId::META {
                    crate::failpoint::FLUSH_META
                } else {
                    crate::failpoint::FLUSH_PAGE
                })?;
                disk.write_raw(*id, state.pages[id].raw_bytes())?;
            }
            disk.sync()?;
        }
        // The checkpoint boundary: all committed pages are durable in the
        // data file; only the log truncation remains.
        crate::failpoint::hit(crate::failpoint::CHECKPOINT)?;
        shared.wal.lock().truncate()?;
        // Push the folded images into the shared cache, then re-publish the
        // same version with an empty overlay — strictly in that order. The
        // inserts double as invalidation (the cache may still hold pre-fold
        // images cached by readers of older versions), and they must land
        // before the empty-overlay state becomes visible: a reader
        // registering against the clean state resolves folded pages through
        // the cache, so the cache must never be stale while that state is
        // published.
        for (id, page) in &state.pages {
            shared.layer.cache.insert(*id, Arc::clone(page));
        }
        let clean = Arc::new(CommittedState {
            csn: state.csn,
            pages: HashMap::new(),
            catalog: Arc::clone(&state.catalog),
            num_pages: state.num_pages,
        });
        *shared.committed.write() = Arc::clone(&clean);
        if !inner.pool.has_dirty() {
            // With a live write set (pre-append fold) the pool keeps its
            // old base; the overlay Arcs stay valid and match the disk.
            inner.pool.set_base(clean);
        }
        inner.commits_since_ckpt = 0;
        inner.force_checkpoint = false;
        shared.gc.credit_all();
        Ok(())
    }
}

/// Derives the WAL path for a data file.
pub fn wal_path_for(data: &Path) -> PathBuf {
    let mut s = data.as_os_str().to_os_string();
    s.push(".wal");
    PathBuf::from(s)
}

/// Replays committed WAL transactions into the data file and truncates the
/// log. Called on every open; a no-op for a clean shutdown.
fn recover(disk: &mut DiskManager, wal: &mut Wal) -> Result<()> {
    if wal.is_empty()? {
        return Ok(());
    }
    let (images, _committed) = wal.committed_images()?;
    if !images.is_empty() {
        for (page, image) in images {
            disk.write_raw(page, &image)?;
        }
        disk.sync()?;
    }
    wal.truncate()?;
    Ok(())
}

fn reload_catalog(inner: &mut Inner) -> Result<()> {
    inner.catalog.clear();
    let root = inner
        .pool
        .with_page(PageId::META, |p| PageId(p.get_u64(META_CATALOG_ROOT)))?;
    if !root.is_some() {
        return Ok(());
    }
    let heap = Heap::open(root);
    for (record, bytes) in heap.scan(&mut inner.pool)? {
        let info = TableInfo::decode(&bytes)?;
        inner.catalog.insert(
            info.name.clone(),
            CatalogEntry {
                info,
                record,
                hint: None,
            },
        );
    }
    // The in-memory next_txn may have raced past the persisted one; keep the
    // larger to stay monotone.
    let persisted = inner
        .pool
        .with_page(PageId::META, |p| p.get_u64(META_NEXT_TXN))?;
    inner.next_txn = inner.next_txn.max(persisted);
    Ok(())
}

/// Classifies a checkpoint error that struck after the transaction
/// published: the commit stands (its WAL records are synced before any page
/// flush can fail), so callers must not read the error as "not committed".
/// Poisoning passes through — it carries the stronger "durability unknown"
/// meaning.
fn checkpoint_after_commit(e: StorageError) -> StorageError {
    match e {
        e @ (StorageError::Poisoned(_) | StorageError::CheckpointAfterCommit(_)) => e,
        e => StorageError::CheckpointAfterCommit(e.to_string()),
    }
}

/// A read-write transaction. All table, index, and BLOB mutations live
/// here. Commit or drop (rollback) to release the writer.
pub struct Transaction<'db> {
    db: &'db Database,
    inner: MutexGuard<'db, Inner>,
    txn_id: u64,
    done: bool,
}

impl<'db> Transaction<'db> {
    /// This transaction's id (visible in the WAL).
    pub fn id(&self) -> u64 {
        self.txn_id
    }

    fn entry(&self, table: &str) -> Result<CatalogEntry> {
        self.inner
            .catalog
            .get(table)
            .cloned()
            .ok_or_else(|| StorageError::Catalog(format!("unknown table '{table}'")))
    }

    fn save_entry(&mut self, entry: &CatalogEntry) -> Result<()> {
        let mut heap = Heap::open(catalog_root(&mut self.inner)?);
        let bytes = entry.info.encode();
        let new_rid = heap.update(&mut self.inner.pool, entry.record, &bytes)?;
        let mut entry = entry.clone();
        entry.record = new_rid;
        self.inner.catalog.insert(entry.info.name.clone(), entry);
        Ok(())
    }

    /// Creates a table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        if self.inner.catalog.contains_key(name) {
            return Err(StorageError::Catalog(format!(
                "table '{name}' already exists"
            )));
        }
        let heap = Heap::create(&mut self.inner.pool)?;
        let index = BTree::create(&mut self.inner.pool)?;
        let info = TableInfo {
            name: name.to_string(),
            schema,
            heap_root: heap.first_page(),
            index_root: index.root(),
            next_id: 1,
        };
        let mut cat_heap = Heap::open(catalog_root(&mut self.inner)?);
        let record = cat_heap.insert(&mut self.inner.pool, &info.encode())?;
        self.inner.catalog.insert(
            name.to_string(),
            CatalogEntry {
                info,
                record,
                hint: None,
            },
        );
        Ok(())
    }

    /// Drops a table, freeing its heap and index pages. BLOBs referenced by
    /// its rows are *not* freed automatically (callers own blob lifecycle).
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let entry = self.entry(name)?;
        Heap::open(entry.info.heap_root).destroy(&mut self.inner.pool)?;
        free_btree(&mut self.inner.pool, entry.info.index_root)?;
        let cat_heap = Heap::open(catalog_root(&mut self.inner)?);
        cat_heap.delete(&mut self.inner.pool, entry.record)?;
        self.inner.catalog.remove(name);
        Ok(())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.catalog.keys().cloned().collect();
        names.sort();
        names
    }

    /// A table's schema.
    pub fn schema(&self, table: &str) -> Result<Schema> {
        Ok(self.entry(table)?.info.schema)
    }

    /// Inserts a row. The primary key (column 0) may be
    /// [`RowValue::Null`], in which case the table's id counter assigns it.
    /// Returns the row's primary key.
    pub fn insert(&mut self, table: &str, mut values: Vec<RV>) -> Result<u64> {
        let mut entry = self.entry(table)?;
        if values.is_empty() {
            return Err(StorageError::Catalog("empty row".to_string()));
        }
        let id = match values[0] {
            RV::Null => {
                let id = entry.info.next_id;
                values[0] = RV::U64(id);
                id
            }
            RV::U64(id) => id,
            ref other => {
                return Err(StorageError::Catalog(format!(
                    "primary key must be U64 or Null, got {other:?}"
                )))
            }
        };
        let bytes = encode_row(&entry.info.schema, &values)?;
        let mut heap = Heap::open(entry.info.heap_root);
        if let Some(hint) = entry.hint {
            heap.set_insert_hint(hint);
        }
        let mut index = BTree::open(entry.info.index_root);
        let rid = heap.insert(&mut self.inner.pool, &bytes)?;
        if let Err(e) = index.insert(&mut self.inner.pool, id, rid.pack()) {
            heap.delete(&mut self.inner.pool, rid)?;
            return Err(e);
        }
        entry.info.index_root = index.root();
        entry.info.next_id = entry.info.next_id.max(id + 1);
        entry.hint = Some(heap.insert_hint());
        self.save_entry(&entry)?;
        Ok(id)
    }

    /// Fetches a row by primary key.
    pub fn get(&mut self, table: &str, id: u64) -> Result<Option<Vec<RV>>> {
        let entry = self.entry(table)?;
        let index = BTree::open(entry.info.index_root);
        let Some(packed) = index.get(&mut self.inner.pool, id)? else {
            return Ok(None);
        };
        let heap = Heap::open(entry.info.heap_root);
        let bytes = heap.get(&mut self.inner.pool, crate::heap::RecordId::unpack(packed))?;
        Ok(Some(decode_row(&entry.info.schema, &bytes)?))
    }

    /// Replaces the row with primary key `id`. The new row's key column must
    /// be `Null` (kept) or equal to `id`.
    pub fn update(&mut self, table: &str, id: u64, mut values: Vec<RV>) -> Result<()> {
        let mut entry = self.entry(table)?;
        match values.first() {
            Some(RV::Null) => values[0] = RV::U64(id),
            Some(RV::U64(k)) if *k == id => {}
            Some(other) => {
                return Err(StorageError::Catalog(format!(
                    "update cannot change the primary key (got {other:?})"
                )))
            }
            None => return Err(StorageError::Catalog("empty row".to_string())),
        }
        let bytes = encode_row(&entry.info.schema, &values)?;
        let mut index = BTree::open(entry.info.index_root);
        let packed = index
            .get(&mut self.inner.pool, id)?
            .ok_or(StorageError::KeyNotFound(id))?;
        let mut heap = Heap::open(entry.info.heap_root);
        let old_rid = crate::heap::RecordId::unpack(packed);
        let new_rid = heap.update(&mut self.inner.pool, old_rid, &bytes)?;
        if new_rid != old_rid {
            index.put(&mut self.inner.pool, id, new_rid.pack())?;
            entry.info.index_root = index.root();
            self.save_entry(&entry)?;
        }
        Ok(())
    }

    /// Deletes the row with primary key `id`, returning its values.
    pub fn delete(&mut self, table: &str, id: u64) -> Result<Vec<RV>> {
        let entry = self.entry(table)?;
        let mut index = BTree::open(entry.info.index_root);
        let packed = index.delete(&mut self.inner.pool, id)?;
        let heap = Heap::open(entry.info.heap_root);
        let rid = crate::heap::RecordId::unpack(packed);
        let bytes = heap.get(&mut self.inner.pool, rid)?;
        heap.delete(&mut self.inner.pool, rid)?;
        decode_row(&entry.info.schema, &bytes)
    }

    /// All rows, in primary-key order.
    pub fn scan(&mut self, table: &str) -> Result<Vec<Vec<RV>>> {
        self.range(table, 0, u64::MAX)
    }

    /// Rows with `lo <= id <= hi`, in key order.
    pub fn range(&mut self, table: &str, lo: u64, hi: u64) -> Result<Vec<Vec<RV>>> {
        let entry = self.entry(table)?;
        let index = BTree::open(entry.info.index_root);
        let heap = Heap::open(entry.info.heap_root);
        let pairs = index.range(&mut self.inner.pool, lo, hi)?;
        let mut rows = Vec::with_capacity(pairs.len());
        for (_, packed) in pairs {
            let bytes = heap.get(&mut self.inner.pool, crate::heap::RecordId::unpack(packed))?;
            rows.push(decode_row(&entry.info.schema, &bytes)?);
        }
        Ok(rows)
    }

    /// Number of rows in a table.
    pub fn count(&mut self, table: &str) -> Result<usize> {
        let entry = self.entry(table)?;
        BTree::open(entry.info.index_root).len(&mut self.inner.pool)
    }

    /// Stores a BLOB, returning its id.
    pub fn put_blob(&mut self, data: &[u8]) -> Result<BlobId> {
        BlobStore::create(&mut self.inner.pool, data)
    }

    /// Reads a whole BLOB.
    pub fn get_blob(&mut self, id: BlobId) -> Result<Vec<u8>> {
        BlobStore::read(&mut self.inner.pool, id)
    }

    /// Reads the first `n` bytes of a BLOB (progressive transfer).
    pub fn get_blob_prefix(&mut self, id: BlobId, n: usize) -> Result<Vec<u8>> {
        BlobStore::read_prefix(&mut self.inner.pool, id, n)
    }

    /// A BLOB's length.
    pub fn blob_len(&mut self, id: BlobId) -> Result<u64> {
        BlobStore::len(&mut self.inner.pool, id)
    }

    /// Frees a BLOB.
    pub fn delete_blob(&mut self, id: BlobId) -> Result<()> {
        BlobStore::delete(&mut self.inner.pool, id)
    }

    /// Appends the write set's sealed images plus the commit record to the
    /// WAL (syncing eagerly in eager-checkpoint mode) and returns the log's
    /// byte length.
    fn append_to_wal(&mut self, dirty: &[PageId]) -> Result<u64> {
        let db = self.db;
        let mut wal = db.shared.wal.lock();
        for &id in dirty {
            let image = self.inner.pool.sealed_image(id)?;
            wal.log_page(self.txn_id, id, &image)?;
        }
        wal.log_commit(self.txn_id)?;
        if db.shared.opts.eager_checkpoint {
            wal.sync()?;
        }
        wal.len()
    }

    /// Commits: appends the write set to the WAL, publishes the new
    /// committed version (releasing the writer lock), then waits for the
    /// shared group-commit fsync to cover this commit. Checkpoints run when
    /// due (WAL size / commit count), or on every commit in eager mode.
    ///
    /// If a previous commit failed after touching the WAL (or a crash hook
    /// staged records), this commit first folds the orphaned log out,
    /// blocking until snapshot readers of *older* versions are released —
    /// the same wait as [`Database::checkpoint`].
    ///
    /// # Errors
    ///
    /// Most errors mean the transaction did **not** commit and was rolled
    /// back. Two variants mean the opposite — the transaction *did* publish
    /// and must not be retried:
    ///
    /// * [`StorageError::CheckpointAfterCommit`] — the commit is visible and
    ///   durable; only post-commit checkpoint housekeeping failed (it is
    ///   redone before the next commit appends).
    /// * [`StorageError::Poisoned`] — the commit is visible in-process but
    ///   its WAL sync failed, so durability is unknown; reopen to recover
    ///   the durable prefix.
    pub fn commit(mut self) -> Result<()> {
        static LAT: rcmo_obs::LazyHistogram =
            rcmo_obs::LazyHistogram::new("storage.txn.commit.us", rcmo_obs::bounds::LATENCY_US);
        let _t = LAT.start_timer();
        let db = self.db;

        // Fold previously staged or orphaned WAL records out before
        // appending, so two generations of records can never replay
        // together. This must not be skipped: the orphaned tail may be torn,
        // and anything appended after a tear is unreachable to replay. The
        // fold blocks until snapshot readers of older versions drain
        // (`checkpoint_locked` waits on the registry), exactly like an
        // explicit [`Database::checkpoint`].
        if self.inner.force_checkpoint {
            db.checkpoint_locked(&mut self.inner, CkptSync::Clean)?;
        }

        // Persist the txn counter so ids stay monotone across restarts.
        // This also keeps the write set non-empty, so every commit appends
        // records and commit ids in the log are strictly monotone.
        let next_txn = self.inner.next_txn;
        self.inner
            .pool
            .with_page_mut(PageId::META, |p| p.put_u64(META_NEXT_TXN, next_txn))?;
        let dirty = self.inner.pool.dirty_ids();
        let wal_len = match self.append_to_wal(&dirty) {
            Ok(len) => len,
            Err(e) => {
                self.inner.force_checkpoint = true;
                return Err(e);
            }
        };
        if let Err(e) = crate::failpoint::hit(crate::failpoint::COMMIT_PUBLISH) {
            self.inner.force_checkpoint = true;
            return Err(e);
        }
        let csn = db.publish(&mut self.inner);
        self.done = true;
        db.shared.gc.note_appended(csn);
        self.inner.commits_since_ckpt += 1;

        if db.shared.opts.eager_checkpoint {
            if let Err(e) = db.checkpoint_locked(&mut self.inner, CkptSync::Done) {
                self.inner.force_checkpoint = true;
                return Err(checkpoint_after_commit(e));
            }
            return Ok(());
        }
        // The forced fold above either ran or errored out, so only the
        // size/interval triggers remain.
        let due = wal_len >= db.shared.opts.checkpoint_wal_bytes
            || self.inner.commits_since_ckpt >= db.shared.opts.checkpoint_commits;
        if due && db.shared.snapshots.none_older_than(csn) {
            if let Err(e) = db.checkpoint_locked(&mut self.inner, CkptSync::Publish) {
                self.inner.force_checkpoint = true;
                return Err(checkpoint_after_commit(e));
            }
            return Ok(());
        }
        // Early lock release: free the writer while this commit's WAL
        // records reach stable storage via the shared group-commit sync.
        drop(self);
        db.shared
            .gc
            .sync_until(csn, &db.shared.wal, db.shared.opts.group_commit_window)
    }

    /// Rolls back explicitly (dropping does the same). Unlike commit, this
    /// releases the writer lock immediately — no durability work runs.
    pub fn rollback(mut self) {
        self.abort();
        self.done = true;
    }

    /// Fault-injection hook: durably writes the WAL (page images + commit
    /// record + sync) but **does not** force pages to the data file and does
    /// not truncate the log — as if the process crashed right after the WAL
    /// sync. Reopening the database recovers the transaction from the log;
    /// committing again in-process instead folds it away first (the crash
    /// "didn't happen").
    pub fn simulate_crash_after_wal(mut self) -> Result<()> {
        let next_txn = self.inner.next_txn;
        self.inner
            .pool
            .with_page_mut(PageId::META, |p| p.put_u64(META_NEXT_TXN, next_txn))?;
        let dirty = self.inner.pool.dirty_ids();
        {
            let mut wal = self.db.shared.wal.lock();
            for &id in &dirty {
                let image = self.inner.pool.sealed_image(id)?;
                wal.log_page(self.txn_id, id, &image)?;
            }
            wal.log_commit(self.txn_id)?;
            wal.sync()?;
        }
        // Crash: lose the in-flight state, keep the (stale) data file and
        // the WAL. The staged records must be folded out before any later
        // commit appends.
        self.abort();
        self.inner.force_checkpoint = true;
        self.done = true;
        Ok(())
    }

    fn abort(&mut self) {
        self.inner.pool.discard_dirty();
        // The in-memory catalog may hold uncommitted entries; restore the
        // committed one from the base snapshot.
        let catalog = (*self.inner.pool.base().catalog).clone();
        self.inner.catalog = catalog;
    }
}

impl<'db> Drop for Transaction<'db> {
    fn drop(&mut self) {
        if !self.done {
            self.abort();
        }
    }
}

/// A read-only snapshot transaction: observes one committed version for its
/// whole lifetime, without ever taking the writer lock. All methods take
/// `&self`; the snapshot is immutable.
pub struct ReadTransaction<'db> {
    db: &'db Database,
    snap: Arc<CommittedState>,
}

impl<'db> ReadTransaction<'db> {
    /// The commit sequence number this snapshot observes.
    pub fn snapshot_csn(&self) -> u64 {
        self.snap.csn
    }

    fn entry(&self, table: &str) -> Result<CatalogEntry> {
        self.snap
            .catalog
            .get(table)
            .cloned()
            .ok_or_else(|| StorageError::Catalog(format!("unknown table '{table}'")))
    }

    fn reader(&self) -> SnapshotReader<'_> {
        SnapshotReader::new(&self.snap, &self.db.shared.layer)
    }

    /// Names of all tables in the snapshot, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.snap.catalog.keys().cloned().collect();
        names.sort();
        names
    }

    /// A table's schema.
    pub fn schema(&self, table: &str) -> Result<Schema> {
        Ok(self.entry(table)?.info.schema)
    }

    /// Fetches a row by primary key.
    pub fn get(&self, table: &str, id: u64) -> Result<Option<Vec<RV>>> {
        let entry = self.entry(table)?;
        let mut r = self.reader();
        let Some(packed) = BTree::open(entry.info.index_root).get(&mut r, id)? else {
            return Ok(None);
        };
        let bytes =
            Heap::open(entry.info.heap_root).get(&mut r, crate::heap::RecordId::unpack(packed))?;
        Ok(Some(decode_row(&entry.info.schema, &bytes)?))
    }

    /// All rows, in primary-key order.
    pub fn scan(&self, table: &str) -> Result<Vec<Vec<RV>>> {
        self.range(table, 0, u64::MAX)
    }

    /// Rows with `lo <= id <= hi`, in key order.
    pub fn range(&self, table: &str, lo: u64, hi: u64) -> Result<Vec<Vec<RV>>> {
        let entry = self.entry(table)?;
        let mut r = self.reader();
        let index = BTree::open(entry.info.index_root);
        let heap = Heap::open(entry.info.heap_root);
        let pairs = index.range(&mut r, lo, hi)?;
        let mut rows = Vec::with_capacity(pairs.len());
        for (_, packed) in pairs {
            let bytes = heap.get(&mut r, crate::heap::RecordId::unpack(packed))?;
            rows.push(decode_row(&entry.info.schema, &bytes)?);
        }
        Ok(rows)
    }

    /// Number of rows in a table.
    pub fn count(&self, table: &str) -> Result<usize> {
        let entry = self.entry(table)?;
        BTree::open(entry.info.index_root).len(&mut self.reader())
    }

    /// Reads a whole BLOB.
    pub fn get_blob(&self, id: BlobId) -> Result<Vec<u8>> {
        BlobStore::read(&mut self.reader(), id)
    }

    /// Reads the first `n` bytes of a BLOB (progressive transfer).
    pub fn get_blob_prefix(&self, id: BlobId, n: usize) -> Result<Vec<u8>> {
        BlobStore::read_prefix(&mut self.reader(), id, n)
    }

    /// A BLOB's length.
    pub fn blob_len(&self, id: BlobId) -> Result<u64> {
        BlobStore::len(&mut self.reader(), id)
    }
}

impl<'db> Drop for ReadTransaction<'db> {
    fn drop(&mut self) {
        self.db.shared.snapshots.release(self.snap.csn);
    }
}

fn catalog_root(inner: &mut Inner) -> Result<PageId> {
    inner
        .pool
        .with_page(PageId::META, |p| PageId(p.get_u64(META_CATALOG_ROOT)))
}

/// Frees all pages reachable from a B+tree root.
fn free_btree(pool: &mut BufferPool, root: PageId) -> Result<()> {
    let kind = pool.with_page(root, |p| p.kind())?;
    if kind == PageKind::BTreeInternal {
        let children: Vec<PageId> = pool.with_page(root, |p| {
            let n = p.get_u16(0) as usize;
            let mut out = vec![PageId(p.get_u64(8))];
            for i in 0..n {
                out.push(PageId(p.get_u64(16 + i * 16 + 8)));
            }
            out
        })?;
        for c in children {
            free_btree(pool, c)?;
        }
    }
    pool.free_page(root)
}

#[cfg(test)]
mod tests;
