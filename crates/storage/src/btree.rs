//! A B+tree mapping `u64` keys to `u64` values (primary-key → packed record
//! id in this engine).
//!
//! Node layouts (body-relative offsets):
//!
//! ```text
//! leaf:     0..2 u16 nkeys | 2..10 u64 next_leaf
//!           10..  nkeys × (u64 key, u64 value)
//! internal: 0..2 u16 nkeys | 8..16 u64 child0
//!           16..  nkeys × (u64 key_i, u64 child_{i+1})
//! ```
//!
//! In an internal node, `child_i` covers keys `< key_i`; the last child
//! covers the rest. Leaves are chained left-to-right for range scans.
//!
//! Deletion is *lazy*: keys are removed from leaves but nodes are never
//! merged (the common trade-off in embedded engines; space is reclaimed when
//! the index is rebuilt). Underflowing pages therefore stay in the tree but
//! empty leaves remain linked and are skipped by scans.

use crate::error::{Result, StorageError};
use crate::page::{PageId, PageKind};
use crate::pager::{BufferPool, PageRead};

pub(crate) const OFF_NKEYS: usize = 0;
pub(crate) const OFF_NEXT_LEAF: usize = 2;
pub(crate) const LEAF_ENTRIES: usize = 10;
pub(crate) const OFF_CHILD0: usize = 8;
pub(crate) const INTERNAL_ENTRIES: usize = 16;

/// Maximum keys per leaf (fits well inside one page body).
pub const LEAF_CAP: usize = 500;
/// Maximum keys per internal node.
pub const INTERNAL_CAP: usize = 500;

/// A B+tree handle; `root` must be persisted by the caller (catalog) and
/// refreshed from [`BTree::root`] after mutations.
#[derive(Debug, Clone, Copy)]
pub struct BTree {
    root: PageId,
}

fn leaf_key(pool: &mut BufferPool, page: PageId, i: usize) -> Result<u64> {
    pool.with_page(page, |p| p.get_u64(LEAF_ENTRIES + i * 16))
}

impl BTree {
    /// Creates an empty tree (a single empty leaf).
    pub fn create(pool: &mut BufferPool) -> Result<BTree> {
        let root = pool.allocate(PageKind::BTreeLeaf)?;
        pool.with_page_mut(root, |p| {
            p.put_u16(OFF_NKEYS, 0);
            p.put_u64(OFF_NEXT_LEAF, PageId::NONE.0);
        })?;
        Ok(BTree { root })
    }

    /// Opens a tree rooted at `root`.
    pub fn open(root: PageId) -> BTree {
        BTree { root }
    }

    /// The current root page (persist after mutations).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Finds the leaf that should contain `key`.
    fn find_leaf<P: PageRead>(&self, pool: &mut P, key: u64) -> Result<PageId> {
        let mut node = self.root;
        loop {
            let (kind, nkeys) =
                pool.with_page(node, |p| (p.kind(), p.get_u16(OFF_NKEYS) as usize))?;
            match kind {
                PageKind::BTreeLeaf => return Ok(node),
                PageKind::BTreeInternal => {
                    node = pool.with_page(node, |p| {
                        let mut child = PageId(p.get_u64(OFF_CHILD0));
                        for i in 0..nkeys {
                            let k = p.get_u64(INTERNAL_ENTRIES + i * 16);
                            if key >= k {
                                child = PageId(p.get_u64(INTERNAL_ENTRIES + i * 16 + 8));
                            } else {
                                break;
                            }
                        }
                        child
                    })?;
                }
                other => {
                    return Err(StorageError::Internal(format!(
                        "b+tree descent hit a {other:?} page"
                    )))
                }
            }
        }
    }

    /// Looks `key` up. Generic over the page source so snapshot readers
    /// share the code path with the writer's pool.
    pub fn get<P: PageRead>(&self, pool: &mut P, key: u64) -> Result<Option<u64>> {
        static LAT: rcmo_obs::LazyHistogram =
            rcmo_obs::LazyHistogram::new("storage.btree.get.us", rcmo_obs::bounds::LATENCY_US);
        let _t = LAT.start_timer();
        let leaf = self.find_leaf(pool, key)?;
        pool.with_page(leaf, |p| {
            let n = p.get_u16(OFF_NKEYS) as usize;
            for i in 0..n {
                let k = p.get_u64(LEAF_ENTRIES + i * 16);
                if k == key {
                    return Some(p.get_u64(LEAF_ENTRIES + i * 16 + 8));
                }
                if k > key {
                    break;
                }
            }
            None
        })
    }

    /// Inserts `key → value`. Fails with [`StorageError::DuplicateKey`] if
    /// the key exists (primary-key semantics); use
    /// [`put`](Self::put) for upserts.
    pub fn insert(&mut self, pool: &mut BufferPool, key: u64, value: u64) -> Result<()> {
        if self.get(pool, key)?.is_some() {
            return Err(StorageError::DuplicateKey(key));
        }
        self.insert_unchecked(pool, key, value)
    }

    /// Inserts or replaces `key → value`.
    pub fn put(&mut self, pool: &mut BufferPool, key: u64, value: u64) -> Result<()> {
        static LAT: rcmo_obs::LazyHistogram =
            rcmo_obs::LazyHistogram::new("storage.btree.put.us", rcmo_obs::bounds::LATENCY_US);
        let _t = LAT.start_timer();
        let leaf = self.find_leaf(pool, key)?;
        let replaced = pool.with_page_mut(leaf, |p| {
            let n = p.get_u16(OFF_NKEYS) as usize;
            for i in 0..n {
                if p.get_u64(LEAF_ENTRIES + i * 16) == key {
                    p.put_u64(LEAF_ENTRIES + i * 16 + 8, value);
                    return true;
                }
            }
            false
        })?;
        if replaced {
            return Ok(());
        }
        self.insert_unchecked(pool, key, value)
    }

    fn insert_unchecked(&mut self, pool: &mut BufferPool, key: u64, value: u64) -> Result<()> {
        if let Some((sep, right)) = self.insert_rec(pool, self.root, key, value)? {
            // Root split: build a new internal root.
            let new_root = pool.allocate(PageKind::BTreeInternal)?;
            let old_root = self.root;
            pool.with_page_mut(new_root, |p| {
                p.put_u16(OFF_NKEYS, 1);
                p.put_u64(OFF_CHILD0, old_root.0);
                p.put_u64(INTERNAL_ENTRIES, sep);
                p.put_u64(INTERNAL_ENTRIES + 8, right.0);
            })?;
            self.root = new_root;
        }
        Ok(())
    }

    /// Recursive insert; returns `Some((separator, new right sibling))` when
    /// the child split.
    fn insert_rec(
        &mut self,
        pool: &mut BufferPool,
        node: PageId,
        key: u64,
        value: u64,
    ) -> Result<Option<(u64, PageId)>> {
        let kind = pool.with_page(node, |p| p.kind())?;
        match kind {
            PageKind::BTreeLeaf => self.insert_leaf(pool, node, key, value),
            PageKind::BTreeInternal => {
                let (child, child_idx, nkeys) = pool.with_page(node, |p| {
                    let n = p.get_u16(OFF_NKEYS) as usize;
                    let mut child = PageId(p.get_u64(OFF_CHILD0));
                    let mut idx = 0usize;
                    for i in 0..n {
                        let k = p.get_u64(INTERNAL_ENTRIES + i * 16);
                        if key >= k {
                            child = PageId(p.get_u64(INTERNAL_ENTRIES + i * 16 + 8));
                            idx = i + 1;
                        } else {
                            break;
                        }
                    }
                    (child, idx, n)
                })?;
                let Some((sep, right)) = self.insert_rec(pool, child, key, value)? else {
                    return Ok(None);
                };
                // Insert (sep, right) into this node at position child_idx.
                if nkeys < INTERNAL_CAP {
                    pool.with_page_mut(node, |p| {
                        let n = p.get_u16(OFF_NKEYS) as usize;
                        // Shift entries right of child_idx.
                        for i in (child_idx..n).rev() {
                            let k = p.get_u64(INTERNAL_ENTRIES + i * 16);
                            let c = p.get_u64(INTERNAL_ENTRIES + i * 16 + 8);
                            p.put_u64(INTERNAL_ENTRIES + (i + 1) * 16, k);
                            p.put_u64(INTERNAL_ENTRIES + (i + 1) * 16 + 8, c);
                        }
                        p.put_u64(INTERNAL_ENTRIES + child_idx * 16, sep);
                        p.put_u64(INTERNAL_ENTRIES + child_idx * 16 + 8, right.0);
                        p.put_u16(OFF_NKEYS, (n + 1) as u16);
                    })?;
                    return Ok(None);
                }
                // Split this internal node.
                self.split_internal(pool, node, child_idx, sep, right)
            }
            other => Err(StorageError::Internal(format!(
                "b+tree insert hit a {other:?} page"
            ))),
        }
    }

    fn insert_leaf(
        &mut self,
        pool: &mut BufferPool,
        leaf: PageId,
        key: u64,
        value: u64,
    ) -> Result<Option<(u64, PageId)>> {
        let nkeys = pool.with_page(leaf, |p| p.get_u16(OFF_NKEYS) as usize)?;
        if nkeys < LEAF_CAP {
            pool.with_page_mut(leaf, |p| {
                let n = p.get_u16(OFF_NKEYS) as usize;
                let mut pos = n;
                for i in 0..n {
                    if p.get_u64(LEAF_ENTRIES + i * 16) > key {
                        pos = i;
                        break;
                    }
                }
                for i in (pos..n).rev() {
                    let k = p.get_u64(LEAF_ENTRIES + i * 16);
                    let v = p.get_u64(LEAF_ENTRIES + i * 16 + 8);
                    p.put_u64(LEAF_ENTRIES + (i + 1) * 16, k);
                    p.put_u64(LEAF_ENTRIES + (i + 1) * 16 + 8, v);
                }
                p.put_u64(LEAF_ENTRIES + pos * 16, key);
                p.put_u64(LEAF_ENTRIES + pos * 16 + 8, value);
                p.put_u16(OFF_NKEYS, (n + 1) as u16);
            })?;
            return Ok(None);
        }
        // Split: move the upper half to a fresh right leaf, then insert into
        // the appropriate side.
        let right = pool.allocate(PageKind::BTreeLeaf)?;
        let mid = LEAF_CAP / 2;
        let mut moved: Vec<(u64, u64)> = Vec::with_capacity(LEAF_CAP - mid);
        let old_next = pool.with_page_mut(leaf, |p| {
            let n = p.get_u16(OFF_NKEYS) as usize;
            for i in mid..n {
                moved.push((
                    p.get_u64(LEAF_ENTRIES + i * 16),
                    p.get_u64(LEAF_ENTRIES + i * 16 + 8),
                ));
            }
            p.put_u16(OFF_NKEYS, mid as u16);
            let old_next = p.get_u64(OFF_NEXT_LEAF);
            p.put_u64(OFF_NEXT_LEAF, right.0);
            old_next
        })?;
        pool.with_page_mut(right, |p| {
            p.put_u16(OFF_NKEYS, moved.len() as u16);
            p.put_u64(OFF_NEXT_LEAF, old_next);
            for (i, (k, v)) in moved.iter().enumerate() {
                p.put_u64(LEAF_ENTRIES + i * 16, *k);
                p.put_u64(LEAF_ENTRIES + i * 16 + 8, *v);
            }
        })?;
        let sep = leaf_key(pool, right, 0)?;
        // Insert the pending key into the correct half (both have room now).
        let target = if key >= sep { right } else { leaf };
        let sub = self.insert_leaf(pool, target, key, value)?;
        debug_assert!(sub.is_none(), "post-split leaf cannot split again");
        Ok(Some((sep, right)))
    }

    fn split_internal(
        &mut self,
        pool: &mut BufferPool,
        node: PageId,
        pending_idx: usize,
        pending_sep: u64,
        pending_child: PageId,
    ) -> Result<Option<(u64, PageId)>> {
        // Materialise entries, insert the pending one, split in memory, and
        // write both halves back. Simpler than in-place shifting around the
        // promotion point and still O(cap).
        let child0 = pool.with_page(node, |p| p.get_u64(OFF_CHILD0))?;
        let mut entries: Vec<(u64, u64)> = pool.with_page(node, |p| {
            let n = p.get_u16(OFF_NKEYS) as usize;
            (0..n)
                .map(|i| {
                    (
                        p.get_u64(INTERNAL_ENTRIES + i * 16),
                        p.get_u64(INTERNAL_ENTRIES + i * 16 + 8),
                    )
                })
                .collect()
        })?;
        entries.insert(pending_idx, (pending_sep, pending_child.0));
        let mid = entries.len() / 2;
        let (promoted, right_child0) = entries[mid];
        let left: Vec<(u64, u64)> = entries[..mid].to_vec();
        let right_entries: Vec<(u64, u64)> = entries[mid + 1..].to_vec();
        let right = pool.allocate(PageKind::BTreeInternal)?;
        pool.with_page_mut(node, |p| {
            p.put_u16(OFF_NKEYS, left.len() as u16);
            p.put_u64(OFF_CHILD0, child0);
            for (i, (k, c)) in left.iter().enumerate() {
                p.put_u64(INTERNAL_ENTRIES + i * 16, *k);
                p.put_u64(INTERNAL_ENTRIES + i * 16 + 8, *c);
            }
        })?;
        pool.with_page_mut(right, |p| {
            p.put_u16(OFF_NKEYS, right_entries.len() as u16);
            p.put_u64(OFF_CHILD0, right_child0);
            for (i, (k, c)) in right_entries.iter().enumerate() {
                p.put_u64(INTERNAL_ENTRIES + i * 16, *k);
                p.put_u64(INTERNAL_ENTRIES + i * 16 + 8, *c);
            }
        })?;
        Ok(Some((promoted, right)))
    }

    /// Removes `key`; returns its value or [`StorageError::KeyNotFound`].
    pub fn delete(&mut self, pool: &mut BufferPool, key: u64) -> Result<u64> {
        let leaf = self.find_leaf(pool, key)?;
        pool.with_page_mut(leaf, |p| {
            let n = p.get_u16(OFF_NKEYS) as usize;
            for i in 0..n {
                if p.get_u64(LEAF_ENTRIES + i * 16) == key {
                    let value = p.get_u64(LEAF_ENTRIES + i * 16 + 8);
                    for j in i + 1..n {
                        let k = p.get_u64(LEAF_ENTRIES + j * 16);
                        let v = p.get_u64(LEAF_ENTRIES + j * 16 + 8);
                        p.put_u64(LEAF_ENTRIES + (j - 1) * 16, k);
                        p.put_u64(LEAF_ENTRIES + (j - 1) * 16 + 8, v);
                    }
                    p.put_u16(OFF_NKEYS, (n - 1) as u16);
                    return Ok(value);
                }
            }
            Err(StorageError::KeyNotFound(key))
        })?
    }

    /// Returns all `(key, value)` pairs with `start <= key <= end`,
    /// ascending.
    pub fn range<P: PageRead>(
        &self,
        pool: &mut P,
        start: u64,
        end: u64,
    ) -> Result<Vec<(u64, u64)>> {
        let mut out = Vec::new();
        if start > end {
            return Ok(out);
        }
        let mut leaf = self.find_leaf(pool, start)?;
        loop {
            let next = pool.with_page(leaf, |p| {
                let n = p.get_u16(OFF_NKEYS) as usize;
                for i in 0..n {
                    let k = p.get_u64(LEAF_ENTRIES + i * 16);
                    if k >= start && k <= end {
                        out.push((k, p.get_u64(LEAF_ENTRIES + i * 16 + 8)));
                    }
                }
                PageId(p.get_u64(OFF_NEXT_LEAF))
            })?;
            // Stop once the last key of this leaf passed `end` or no next.
            if let Some(&(last, _)) = out.last() {
                if last >= end {
                    break;
                }
            }
            if !next.is_some() {
                break;
            }
            let first_next = pool.with_page(next, |p| {
                let n = p.get_u16(OFF_NKEYS) as usize;
                if n == 0 {
                    None
                } else {
                    Some(p.get_u64(LEAF_ENTRIES))
                }
            })?;
            if let Some(k) = first_next {
                if k > end {
                    break;
                }
            }
            leaf = next;
        }
        Ok(out)
    }

    /// All entries in key order.
    pub fn scan_all<P: PageRead>(&self, pool: &mut P) -> Result<Vec<(u64, u64)>> {
        self.range(pool, 0, u64::MAX)
    }

    /// Number of keys (walks the leaf chain).
    pub fn len<P: PageRead>(&self, pool: &mut P) -> Result<usize> {
        Ok(self.scan_all(pool)?.len())
    }

    /// `true` if the tree holds no keys.
    pub fn is_empty<P: PageRead>(&self, pool: &mut P) -> Result<bool> {
        Ok(self.len(pool)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;
    use crate::page::Page;
    use crate::pager::META_FREE_HEAD;

    fn pool() -> BufferPool {
        let mut disk = DiskManager::in_memory();
        let mut meta = Page::new(PageKind::Meta);
        meta.put_u64(META_FREE_HEAD, PageId::NONE.0);
        disk.write_page(PageId::META, &mut meta).unwrap();
        BufferPool::for_tests(disk, 256)
    }

    #[test]
    fn empty_tree() {
        let mut pool = pool();
        let tree = BTree::create(&mut pool).unwrap();
        assert_eq!(tree.get(&mut pool, 5).unwrap(), None);
        assert!(tree.is_empty(&mut pool).unwrap());
    }

    #[test]
    fn insert_get_small() {
        let mut pool = pool();
        let mut tree = BTree::create(&mut pool).unwrap();
        for k in [5u64, 1, 9, 3, 7] {
            tree.insert(&mut pool, k, k * 100).unwrap();
        }
        for k in [1u64, 3, 5, 7, 9] {
            assert_eq!(tree.get(&mut pool, k).unwrap(), Some(k * 100));
        }
        assert_eq!(tree.get(&mut pool, 4).unwrap(), None);
        assert_eq!(
            tree.scan_all(&mut pool).unwrap(),
            vec![(1, 100), (3, 300), (5, 500), (7, 700), (9, 900)]
        );
    }

    #[test]
    fn duplicate_rejected_put_replaces() {
        let mut pool = pool();
        let mut tree = BTree::create(&mut pool).unwrap();
        tree.insert(&mut pool, 1, 10).unwrap();
        assert!(matches!(
            tree.insert(&mut pool, 1, 20),
            Err(StorageError::DuplicateKey(1))
        ));
        tree.put(&mut pool, 1, 20).unwrap();
        assert_eq!(tree.get(&mut pool, 1).unwrap(), Some(20));
        tree.put(&mut pool, 2, 30).unwrap();
        assert_eq!(tree.len(&mut pool).unwrap(), 2);
    }

    #[test]
    fn large_sequential_insert_splits() {
        let mut pool = pool();
        let mut tree = BTree::create(&mut pool).unwrap();
        let n = 5_000u64;
        for k in 0..n {
            tree.insert(&mut pool, k, k + 1).unwrap();
        }
        assert_eq!(tree.len(&mut pool).unwrap(), n as usize);
        for k in (0..n).step_by(97) {
            assert_eq!(tree.get(&mut pool, k).unwrap(), Some(k + 1));
        }
        // Root must be internal by now.
        assert_eq!(
            pool.with_page(tree.root(), |p| p.kind()).unwrap(),
            PageKind::BTreeInternal
        );
    }

    #[test]
    fn large_random_insert_scan_is_sorted() {
        use rand::prelude::*;
        let mut pool = pool();
        let mut tree = BTree::create(&mut pool).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut keys: Vec<u64> = (0..4_000u64).collect();
        keys.shuffle(&mut rng);
        for &k in &keys {
            tree.insert(&mut pool, k, u64::MAX - k).unwrap();
        }
        let all = tree.scan_all(&mut pool).unwrap();
        assert_eq!(all.len(), keys.len());
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "sorted unique");
        for (k, v) in all {
            assert_eq!(v, u64::MAX - k);
        }
    }

    #[test]
    fn range_queries() {
        let mut pool = pool();
        let mut tree = BTree::create(&mut pool).unwrap();
        for k in (0..2_000u64).map(|i| i * 2) {
            tree.insert(&mut pool, k, k).unwrap();
        }
        let r = tree.range(&mut pool, 100, 120).unwrap();
        assert_eq!(
            r.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120]
        );
        assert!(tree.range(&mut pool, 51, 51).unwrap().is_empty());
        assert!(tree.range(&mut pool, 10, 5).unwrap().is_empty());
        let head = tree.range(&mut pool, 0, 10).unwrap();
        assert_eq!(head.len(), 6);
    }

    #[test]
    fn delete_and_reinsert() {
        let mut pool = pool();
        let mut tree = BTree::create(&mut pool).unwrap();
        for k in 0..1_200u64 {
            tree.insert(&mut pool, k, k).unwrap();
        }
        for k in (0..1_200u64).filter(|k| k % 3 == 0) {
            assert_eq!(tree.delete(&mut pool, k).unwrap(), k);
        }
        assert_eq!(tree.len(&mut pool).unwrap(), 800);
        assert!(matches!(
            tree.delete(&mut pool, 0),
            Err(StorageError::KeyNotFound(0))
        ));
        assert_eq!(tree.get(&mut pool, 3).unwrap(), None);
        assert_eq!(tree.get(&mut pool, 4).unwrap(), Some(4));
        // Deleted keys can be reinserted.
        tree.insert(&mut pool, 3, 33).unwrap();
        assert_eq!(tree.get(&mut pool, 3).unwrap(), Some(33));
    }

    #[test]
    fn interleaved_workload() {
        use rand::prelude::*;
        let mut pool = pool();
        let mut tree = BTree::create(&mut pool).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..8_000 {
            let k = rng.gen_range(0..1_000u64);
            if rng.gen_bool(0.6) {
                tree.put(&mut pool, k, k * 7).unwrap();
                model.insert(k, k * 7);
            } else if model.remove(&k).is_some() {
                tree.delete(&mut pool, k).unwrap();
            } else {
                assert!(tree.delete(&mut pool, k).is_err());
            }
        }
        let got = tree.scan_all(&mut pool).unwrap();
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(got, want);
    }
}
