//! MVCC-lite snapshots: immutable committed versions shared between the
//! single writer and any number of concurrent readers.
//!
//! The database publishes an `Arc<CommittedState>` on every commit. A reader
//! clones that `Arc` (its *snapshot*) and reads through it for its whole
//! lifetime: pages committed since the last checkpoint come from the
//! version's copy-on-write page overlay, everything else from the shared
//! [`ReadLayer`](crate::pager::ReadLayer) (sharded page cache + data file).
//! Readers therefore never take the writer lock and can never observe a
//! half-committed transaction — the overlay map is frozen at publish time.
//!
//! The [`SnapshotRegistry`] tracks which versions still have live readers so
//! a checkpoint never overwrites on-disk page images while a reader of an
//! *older* version might still fall through the overlay to the data file.

use crate::catalog::CatalogEntry;
use crate::error::{Result, StorageError};
use crate::page::{Page, PageId};
use crate::pager::{PageRead, ReadLayer};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// One immutable version of the committed database.
#[derive(Debug)]
pub(crate) struct CommittedState {
    /// Commit sequence number. Bumped by every commit; *preserved* by the
    /// checkpoint that folds this version's overlay into the data file.
    pub(crate) csn: u64,
    /// Pages committed since the last checkpoint (newest image wins).
    ///
    /// Invariant: every committed page at or beyond the data file's end
    /// appears here, so the overlay plus the file covers `0..num_pages`
    /// without gaps and a checkpoint never has to invent filler pages.
    pub(crate) pages: HashMap<PageId, Arc<Page>>,
    /// The committed catalog, shared by reference with readers.
    pub(crate) catalog: Arc<HashMap<String, CatalogEntry>>,
    /// One past the highest committed page id.
    pub(crate) num_pages: u64,
}

impl CommittedState {
    /// The state of a database with no published commits yet: `num_pages`
    /// on-disk pages, an empty overlay and an empty catalog.
    pub(crate) fn bootstrap(num_pages: u64) -> CommittedState {
        CommittedState {
            csn: 0,
            pages: HashMap::new(),
            catalog: Arc::new(HashMap::new()),
            num_pages,
        }
    }
}

/// Reference counts of live reader snapshots, keyed by version.
///
/// The checkpoint uses this as a gate: folding version V's overlay into the
/// data file is safe only once no reader of a version *older than* V is
/// alive (readers at exactly V are fine — their overlay shadows every page
/// the checkpoint rewrites). Registration reads the current version under
/// the same lock the gate takes, so a reader can never slip an older
/// version past a checkpoint that already passed the gate.
#[derive(Debug, Default)]
pub(crate) struct SnapshotRegistry {
    live: Mutex<BTreeMap<u64, usize>>,
    released: Condvar,
}

impl SnapshotRegistry {
    pub(crate) fn new() -> SnapshotRegistry {
        SnapshotRegistry::default()
    }

    /// Atomically clones the current committed version out of `committed`
    /// and registers a reader of it.
    pub(crate) fn register_current(
        &self,
        committed: &RwLock<Arc<CommittedState>>,
    ) -> Arc<CommittedState> {
        let mut live = self.live.lock();
        let snap = Arc::clone(&committed.read());
        *live.entry(snap.csn).or_insert(0) += 1;
        snap
    }

    /// Releases one reader of version `csn`.
    pub(crate) fn release(&self, csn: u64) {
        let mut live = self.live.lock();
        if let Some(n) = live.get_mut(&csn) {
            *n -= 1;
            if *n == 0 {
                live.remove(&csn);
            }
        }
        drop(live);
        self.released.notify_all();
    }

    /// `true` when no live snapshot is older than version `csn`.
    pub(crate) fn none_older_than(&self, csn: u64) -> bool {
        match self.live.lock().keys().next() {
            None => true,
            Some(&oldest) => oldest >= csn,
        }
    }

    /// Blocks until every snapshot older than version `csn` is released.
    pub(crate) fn wait_none_older_than(&self, csn: u64) {
        let mut live = self.live.lock();
        loop {
            let ok = match live.keys().next() {
                None => true,
                Some(&oldest) => oldest >= csn,
            };
            if ok {
                return;
            }
            live = self.released.wait(live);
        }
    }
}

/// A [`PageRead`] view of one committed version: overlay first, then the
/// shared read layer. Constructed per call by read transactions; holds no
/// locks.
pub(crate) struct SnapshotReader<'a> {
    snap: &'a CommittedState,
    layer: &'a ReadLayer,
}

impl<'a> SnapshotReader<'a> {
    pub(crate) fn new(snap: &'a CommittedState, layer: &'a ReadLayer) -> SnapshotReader<'a> {
        SnapshotReader { snap, layer }
    }
}

impl PageRead for SnapshotReader<'_> {
    fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        if id.0 >= self.snap.num_pages {
            return Err(StorageError::PageOutOfBounds(id.0));
        }
        if let Some(page) = self.snap.pages.get(&id) {
            return Ok(f(page));
        }
        let page = self.layer.read(id)?;
        Ok(f(&page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_tracks_oldest_live_version() {
        let reg = SnapshotRegistry::new();
        assert!(reg.none_older_than(5));
        let committed = RwLock::new(Arc::new(CommittedState::bootstrap(1)));
        let snap = reg.register_current(&committed);
        assert_eq!(snap.csn, 0);
        assert!(reg.none_older_than(0));
        assert!(!reg.none_older_than(1));
        reg.release(0);
        assert!(reg.none_older_than(1));
    }

    #[test]
    fn wait_unblocks_when_old_reader_releases() {
        let reg = Arc::new(SnapshotRegistry::new());
        let committed = RwLock::new(Arc::new(CommittedState::bootstrap(1)));
        let snap = reg.register_current(&committed);
        let reg2 = Arc::clone(&reg);
        let t = std::thread::spawn(move || reg2.wait_none_older_than(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "gate must hold while the reader lives");
        reg.release(snap.csn);
        t.join().unwrap();
    }
}
