//! Slotted-page heap files: unordered record storage with stable record ids.
//!
//! Body layout of a heap page (offsets relative to the page body):
//!
//! ```text
//! 0..2    u16 slot_count
//! 2..4    u16 free_end        (records occupy free_end..BODY, grow downward)
//! 4..12   u64 next_page       (chain link, PageId::NONE at the tail)
//! 12..    slot directory      (4 bytes per slot: u16 offset, u16 len)
//! ```
//!
//! A deleted slot has `offset == len == 0`; slots are reused by later
//! inserts, so a [`RecordId`] (page, slot) stays valid until its record is
//! deleted. Pages are compacted lazily when an insert fails on
//! fragmentation but the page has enough total free space.

use crate::error::{Result, StorageError};
use crate::page::{Page, PageId, PageKind, PAGE_HEADER, PAGE_SIZE};
use crate::pager::{BufferPool, PageRead};

const BODY: usize = PAGE_SIZE - PAGE_HEADER;
pub(crate) const OFF_SLOT_COUNT: usize = 0;
const OFF_FREE_END: usize = 2;
pub(crate) const OFF_NEXT: usize = 4;
const SLOTS_START: usize = 12;

/// Largest record a heap page can store (one record, one slot).
pub const MAX_RECORD: usize = BODY - SLOTS_START - 4;

/// Stable identifier of a heap record: page plus slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// The heap page holding the record.
    pub page: PageId,
    /// The slot index within that page.
    pub slot: u16,
}

impl RecordId {
    /// Packs into a `u64` (page in the high 48 bits) for index storage.
    pub fn pack(self) -> u64 {
        (self.page.0 << 16) | self.slot as u64
    }

    /// Reverses [`pack`](Self::pack).
    pub fn unpack(v: u64) -> RecordId {
        RecordId {
            page: PageId(v >> 16),
            slot: (v & 0xFFFF) as u16,
        }
    }
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

/// Initialises a fresh heap page image.
pub fn init_heap_page(page: &mut Page) {
    *page = Page::new(PageKind::Heap);
    page.put_u16(OFF_SLOT_COUNT, 0);
    page.put_u16(OFF_FREE_END, BODY as u16);
    page.put_u64(OFF_NEXT, PageId::NONE.0);
}

pub(crate) fn slot_entry(page: &Page, slot: u16) -> (u16, u16) {
    let base = SLOTS_START + slot as usize * 4;
    (page.get_u16(base), page.get_u16(base + 2))
}

fn set_slot(page: &mut Page, slot: u16, offset: u16, len: u16) {
    let base = SLOTS_START + slot as usize * 4;
    page.put_u16(base, offset);
    page.put_u16(base + 2, len);
}

/// Contiguous free bytes between the slot directory and the record area.
fn gap(page: &Page) -> usize {
    let slots = page.get_u16(OFF_SLOT_COUNT) as usize;
    let free_end = page.get_u16(OFF_FREE_END) as usize;
    free_end.saturating_sub(SLOTS_START + slots * 4)
}

/// Total reclaimable bytes (gap plus dead record space).
fn total_free(page: &Page) -> usize {
    let slots = page.get_u16(OFF_SLOT_COUNT) as usize;
    let mut live: usize = 0;
    for s in 0..slots {
        let (_, len) = slot_entry(page, s as u16);
        live += len as usize;
    }
    BODY - (SLOTS_START + slots * 4) - live
}

fn find_free_slot(page: &Page) -> Option<u16> {
    let slots = page.get_u16(OFF_SLOT_COUNT);
    (0..slots).find(|&s| {
        let (off, len) = slot_entry(page, s);
        off == 0 && len == 0
    })
}

/// Rewrites the record area so all live records are contiguous at the end.
fn compact(page: &mut Page) {
    let slots = page.get_u16(OFF_SLOT_COUNT);
    let mut live: Vec<(u16, Vec<u8>)> = Vec::new();
    for s in 0..slots {
        let (off, len) = slot_entry(page, s);
        if len > 0 {
            live.push((s, page.body()[off as usize..(off + len) as usize].to_vec()));
        }
    }
    let mut free_end = BODY;
    for (s, bytes) in live {
        free_end -= bytes.len();
        page.body_mut()[free_end..free_end + bytes.len()].copy_from_slice(&bytes);
        set_slot(page, s, free_end as u16, bytes.len() as u16);
    }
    page.put_u16(OFF_FREE_END, free_end as u16);
}

/// Tries to place `bytes` in `page`; returns the slot on success.
fn insert_into_page(page: &mut Page, bytes: &[u8]) -> Option<u16> {
    let need_slot = find_free_slot(page).is_none();
    let needed = bytes.len() + if need_slot { 4 } else { 0 };
    if gap(page) < needed {
        if total_free(page) < needed {
            return None;
        }
        compact(page);
        if gap(page) < needed {
            return None;
        }
    }
    let slot = match find_free_slot(page) {
        Some(s) => s,
        None => {
            let s = page.get_u16(OFF_SLOT_COUNT);
            page.put_u16(OFF_SLOT_COUNT, s + 1);
            s
        }
    };
    let free_end = page.get_u16(OFF_FREE_END) as usize - bytes.len();
    page.body_mut()[free_end..free_end + bytes.len()].copy_from_slice(bytes);
    page.put_u16(OFF_FREE_END, free_end as u16);
    set_slot(page, slot, free_end as u16, bytes.len() as u16);
    Some(slot)
}

/// A handle over one heap chain. Not persisted — rebuilt from the chain's
/// first page (stored in the catalog). Caches the last page known to have
/// room so repeated inserts don't rescan the chain.
#[derive(Debug, Clone, Copy)]
pub struct Heap {
    first: PageId,
    insert_hint: PageId,
}

impl Heap {
    /// Creates a brand-new heap chain, allocating its first page.
    pub fn create(pool: &mut BufferPool) -> Result<Heap> {
        let first = pool.allocate(PageKind::Heap)?;
        pool.with_page_mut(first, init_heap_page)?;
        Ok(Heap {
            first,
            insert_hint: first,
        })
    }

    /// Opens an existing chain rooted at `first`.
    pub fn open(first: PageId) -> Heap {
        Heap {
            first,
            insert_hint: first,
        }
    }

    /// The chain's first page (persist this in the catalog).
    pub fn first_page(&self) -> PageId {
        self.first
    }

    /// The page the last insert landed on (seed for the next handle).
    pub fn insert_hint(&self) -> PageId {
        self.insert_hint
    }

    /// Seeds the insert hint (e.g. from the catalog's in-memory cache).
    pub fn set_insert_hint(&mut self, hint: PageId) {
        self.insert_hint = hint;
    }

    /// Inserts a record, extending the chain if every page is full.
    pub fn insert(&mut self, pool: &mut BufferPool, bytes: &[u8]) -> Result<RecordId> {
        if bytes.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge(bytes.len()));
        }
        // Try the hint first, then walk from it to the tail. Pages are
        // probed read-only so a full page is never dirtied by the attempt
        // (a dirty page cannot be evicted, and a long walk must not pin the
        // whole chain into the pool).
        let mut current = self.insert_hint;
        loop {
            let need_slot_bytes = bytes.len() + 4;
            let (fits, next) = pool.with_page(current, |p| {
                let fits = gap(p) >= need_slot_bytes || total_free(p) >= need_slot_bytes;
                (fits, PageId(p.get_u64(OFF_NEXT)))
            })?;
            if fits {
                let slot = pool.with_page_mut(current, |p| insert_into_page(p, bytes))?;
                if let Some(slot) = slot {
                    self.insert_hint = current;
                    return Ok(RecordId {
                        page: current,
                        slot,
                    });
                }
                // The conservative probe over-estimated (slot reuse nuance);
                // fall through and keep walking.
            }
            if next.is_some() {
                current = next;
            } else {
                let fresh = pool.allocate(PageKind::Heap)?;
                pool.with_page_mut(fresh, init_heap_page)?;
                pool.with_page_mut(current, |p| p.put_u64(OFF_NEXT, fresh.0))?;
                current = fresh;
            }
        }
    }

    /// Reads a record. Generic over the page source so snapshot readers
    /// share the code path with the writer's pool.
    pub fn get<P: PageRead>(&self, pool: &mut P, rid: RecordId) -> Result<Vec<u8>> {
        pool.with_page(rid.page, |p| {
            if p.kind() != PageKind::Heap {
                return Err(StorageError::RecordNotFound {
                    page: rid.page.0,
                    slot: rid.slot,
                });
            }
            let slots = p.get_u16(OFF_SLOT_COUNT);
            if rid.slot >= slots {
                return Err(StorageError::RecordNotFound {
                    page: rid.page.0,
                    slot: rid.slot,
                });
            }
            let (off, len) = slot_entry(p, rid.slot);
            if len == 0 {
                return Err(StorageError::RecordNotFound {
                    page: rid.page.0,
                    slot: rid.slot,
                });
            }
            Ok(p.body()[off as usize..(off + len) as usize].to_vec())
        })?
    }

    /// Deletes a record (its slot becomes reusable).
    pub fn delete(&self, pool: &mut BufferPool, rid: RecordId) -> Result<()> {
        pool.with_page_mut(rid.page, |p| {
            let slots = p.get_u16(OFF_SLOT_COUNT);
            if rid.slot >= slots {
                return Err(StorageError::RecordNotFound {
                    page: rid.page.0,
                    slot: rid.slot,
                });
            }
            let (_, len) = slot_entry(p, rid.slot);
            if len == 0 {
                return Err(StorageError::RecordNotFound {
                    page: rid.page.0,
                    slot: rid.slot,
                });
            }
            set_slot(p, rid.slot, 0, 0);
            Ok(())
        })?
    }

    /// Updates a record in place when possible; otherwise deletes and
    /// re-inserts, returning the (possibly new) record id.
    pub fn update(
        &mut self,
        pool: &mut BufferPool,
        rid: RecordId,
        bytes: &[u8],
    ) -> Result<RecordId> {
        if bytes.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge(bytes.len()));
        }
        let in_place = pool.with_page_mut(rid.page, |p| {
            let slots = p.get_u16(OFF_SLOT_COUNT);
            if rid.slot >= slots {
                return Err(StorageError::RecordNotFound {
                    page: rid.page.0,
                    slot: rid.slot,
                });
            }
            let (off, len) = slot_entry(p, rid.slot);
            if len == 0 {
                return Err(StorageError::RecordNotFound {
                    page: rid.page.0,
                    slot: rid.slot,
                });
            }
            if bytes.len() <= len as usize {
                // Shrinking (or equal) fits in the existing space.
                p.body_mut()[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
                set_slot(p, rid.slot, off, bytes.len() as u16);
                Ok(true)
            } else {
                Ok(false)
            }
        })??;
        if in_place {
            return Ok(rid);
        }
        self.delete(pool, rid)?;
        self.insert(pool, bytes)
    }

    /// Scans the whole chain, returning `(record id, bytes)` pairs in
    /// physical order.
    pub fn scan<P: PageRead>(&self, pool: &mut P) -> Result<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut current = self.first;
        while current.is_some() {
            let next = pool.with_page(current, |p| {
                let slots = p.get_u16(OFF_SLOT_COUNT);
                for s in 0..slots {
                    let (off, len) = slot_entry(p, s);
                    if len > 0 {
                        out.push((
                            RecordId {
                                page: current,
                                slot: s,
                            },
                            p.body()[off as usize..(off + len) as usize].to_vec(),
                        ));
                    }
                }
                PageId(p.get_u64(OFF_NEXT))
            })?;
            current = next;
        }
        Ok(out)
    }

    /// Frees every page of the chain (drop table).
    pub fn destroy(self, pool: &mut BufferPool) -> Result<()> {
        let mut current = self.first;
        while current.is_some() {
            let next = pool.with_page(current, |p| PageId(p.get_u64(OFF_NEXT)))?;
            pool.free_page(current)?;
            current = next;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;
    use crate::pager::META_FREE_HEAD;

    fn pool() -> BufferPool {
        let mut disk = DiskManager::in_memory();
        let mut meta = Page::new(PageKind::Meta);
        meta.put_u64(META_FREE_HEAD, PageId::NONE.0);
        disk.write_page(PageId::META, &mut meta).unwrap();
        BufferPool::for_tests(disk, 64)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut pool = pool();
        let mut heap = Heap::create(&mut pool).unwrap();
        let a = heap.insert(&mut pool, b"hello").unwrap();
        let b = heap.insert(&mut pool, b"world!").unwrap();
        assert_eq!(heap.get(&mut pool, a).unwrap(), b"hello");
        assert_eq!(heap.get(&mut pool, b).unwrap(), b"world!");
    }

    #[test]
    fn record_id_pack_roundtrip() {
        let rid = RecordId {
            page: PageId(123_456_789),
            slot: 4321,
        };
        assert_eq!(RecordId::unpack(rid.pack()), rid);
    }

    #[test]
    fn delete_then_get_fails_and_slot_reused() {
        let mut pool = pool();
        let mut heap = Heap::create(&mut pool).unwrap();
        let a = heap.insert(&mut pool, b"one").unwrap();
        heap.delete(&mut pool, a).unwrap();
        assert!(heap.get(&mut pool, a).is_err());
        assert!(heap.delete(&mut pool, a).is_err());
        let b = heap.insert(&mut pool, b"two").unwrap();
        assert_eq!(b.slot, a.slot, "deleted slot reused");
        assert_eq!(heap.get(&mut pool, b).unwrap(), b"two");
    }

    #[test]
    fn records_spill_to_new_pages() {
        let mut pool = pool();
        let mut heap = Heap::create(&mut pool).unwrap();
        let payload = vec![7u8; 1000];
        let rids: Vec<RecordId> = (0..40)
            .map(|_| heap.insert(&mut pool, &payload).unwrap())
            .collect();
        let pages: std::collections::HashSet<PageId> = rids.iter().map(|r| r.page).collect();
        assert!(pages.len() > 1, "40 KB must span multiple 8 KiB pages");
        for rid in &rids {
            assert_eq!(heap.get(&mut pool, *rid).unwrap().len(), 1000);
        }
        let scanned = heap.scan(&mut pool).unwrap();
        assert_eq!(scanned.len(), 40);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut pool = pool();
        let mut heap = Heap::create(&mut pool).unwrap();
        assert!(matches!(
            heap.insert(&mut pool, &vec![0u8; MAX_RECORD + 1]),
            Err(StorageError::RecordTooLarge(_))
        ));
        // Exactly MAX_RECORD fits.
        let rid = heap.insert(&mut pool, &vec![1u8; MAX_RECORD]).unwrap();
        assert_eq!(heap.get(&mut pool, rid).unwrap().len(), MAX_RECORD);
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut pool = pool();
        let mut heap = Heap::create(&mut pool).unwrap();
        // Fill one page with ~2 KB records, delete every other one, then
        // insert a record that only fits after compaction.
        let mut rids = Vec::new();
        for _ in 0..4 {
            rids.push(heap.insert(&mut pool, &vec![9u8; 1900]).unwrap());
        }
        let first_page = rids[0].page;
        heap.delete(&mut pool, rids[0]).unwrap();
        heap.delete(&mut pool, rids[2]).unwrap();
        // 3800+ bytes reclaimable but fragmented; a 3000-byte record needs
        // compaction to fit in the same page.
        let rid = heap.insert(&mut pool, &vec![3u8; 3000]).unwrap();
        assert_eq!(rid.page, first_page, "compaction made room in page 1");
        assert_eq!(heap.get(&mut pool, rids[1]).unwrap(), vec![9u8; 1900]);
        assert_eq!(heap.get(&mut pool, rids[3]).unwrap(), vec![9u8; 1900]);
    }

    #[test]
    fn update_in_place_and_relocating() {
        let mut pool = pool();
        let mut heap = Heap::create(&mut pool).unwrap();
        let rid = heap.insert(&mut pool, b"abcdef").unwrap();
        // Shrink: stays in place.
        let r2 = heap.update(&mut pool, rid, b"xyz").unwrap();
        assert_eq!(r2, rid);
        assert_eq!(heap.get(&mut pool, rid).unwrap(), b"xyz");
        // Grow: may relocate, old id invalid if it moved.
        let r3 = heap.update(&mut pool, r2, &vec![5u8; 4000]).unwrap();
        assert_eq!(heap.get(&mut pool, r3).unwrap(), vec![5u8; 4000]);
    }

    #[test]
    fn scan_skips_deleted() {
        let mut pool = pool();
        let mut heap = Heap::create(&mut pool).unwrap();
        let a = heap.insert(&mut pool, b"a").unwrap();
        let _b = heap.insert(&mut pool, b"b").unwrap();
        heap.delete(&mut pool, a).unwrap();
        let scanned = heap.scan(&mut pool).unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].1, b"b");
    }

    #[test]
    fn destroy_returns_pages_to_free_list() {
        let mut pool = pool();
        let mut heap = Heap::create(&mut pool).unwrap();
        for _ in 0..30 {
            heap.insert(&mut pool, &vec![1u8; 2000]).unwrap();
        }
        let first = heap.first_page();
        heap.destroy(&mut pool).unwrap();
        // The freed pages are reusable.
        let reused = pool.allocate(PageKind::Heap).unwrap();
        assert!(reused == first || reused.0 > 0);
    }
}
