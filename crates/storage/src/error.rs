//! Error type of the storage engine.

use std::fmt;
use std::io;

/// Errors raised by the storage engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum StorageError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A page checksum mismatch (corruption or torn write).
    Corrupt {
        /// The page involved.
        page: u64,
        /// Details.
        detail: String,
    },
    /// The file is not a database of this engine / wrong version.
    BadHeader(String),
    /// A page id beyond the end of the file was requested.
    PageOutOfBounds(u64),
    /// The buffer pool has no evictable (clean, unpinned) frame left.
    PoolExhausted,
    /// A record exceeds the per-page capacity (use a BLOB instead).
    RecordTooLarge(usize),
    /// A record id did not resolve to a live record.
    RecordNotFound {
        /// The heap page.
        page: u64,
        /// The slot within the page.
        slot: u16,
    },
    /// A WAL record failed to decode (torn tail — recovery stops there).
    WalTornTail(u64),
    /// Catalog-level problem (unknown table, duplicate table, arity
    /// mismatch, type mismatch...).
    Catalog(String),
    /// A primary key already exists.
    DuplicateKey(u64),
    /// A key was not found in an index.
    KeyNotFound(u64),
    /// A BLOB id did not resolve to a live BLOB.
    BlobNotFound(u64),
    /// Generic invariant violation — indicates an engine bug.
    Internal(String),
    /// The database is poisoned: a commit became visible to readers but its
    /// WAL sync failed, so in-memory state and stable storage disagree. No
    /// further transactions are accepted; reopen the database to recover
    /// the durable prefix.
    Poisoned(String),
    /// A checkpoint step failed *after* the transaction committed: the
    /// transaction is visible to readers and its WAL records are synced, so
    /// it survives a reopen. Callers must **not** retry the transaction —
    /// only checkpoint housekeeping failed, and it is retried automatically
    /// before the next commit appends. The payload describes the underlying
    /// checkpoint failure.
    CheckpointAfterCommit(String),
    /// A deliberately injected fault (armed failpoint or `FaultyBackend`
    /// crash/transient error). Distinguishes simulated failures from real
    /// bugs in crash-torture harnesses; never raised in production.
    FaultInjected(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::Corrupt { page, detail } => {
                write!(f, "page {page} corrupt: {detail}")
            }
            StorageError::BadHeader(m) => write!(f, "bad database header: {m}"),
            StorageError::PageOutOfBounds(p) => write!(f, "page {p} out of bounds"),
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted"),
            StorageError::RecordTooLarge(n) => {
                write!(f, "record of {n} bytes exceeds page capacity")
            }
            StorageError::RecordNotFound { page, slot } => {
                write!(f, "record {page}:{slot} not found")
            }
            StorageError::WalTornTail(off) => write!(f, "torn WAL tail at offset {off}"),
            StorageError::Catalog(m) => write!(f, "catalog error: {m}"),
            StorageError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            StorageError::KeyNotFound(k) => write!(f, "key {k} not found"),
            StorageError::BlobNotFound(b) => write!(f, "blob {b} not found"),
            StorageError::Internal(m) => write!(f, "internal error: {m}"),
            StorageError::Poisoned(m) => write!(f, "database poisoned: {m}"),
            StorageError::CheckpointAfterCommit(m) => write!(
                f,
                "checkpoint failed after commit (the transaction is committed and durable): {m}"
            ),
            StorageError::FaultInjected(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for the storage engine.
pub type Result<T> = std::result::Result<T, StorageError>;
