//! Whole-database invariant checking.
//!
//! [`Database::check_integrity`] walks every on-disk structure from the
//! meta page outward and verifies the storage invariants the engine relies
//! on:
//!
//! * the meta page carries the magic and its roots resolve,
//! * the free list is acyclic and made of `Free` pages,
//! * every table's heap chain is reachable, typed `Heap`, and acyclic,
//! * every table's B+tree has uniform leaf depth (balance), globally
//!   strictly-ascending keys (ordering), and a leaf sibling chain that
//!   matches the tree's in-order leaves,
//! * every index entry resolves to a live heap record that decodes under
//!   the table schema with a matching primary key, and every live heap
//!   record is referenced by the index (no orphans),
//! * every `Blob` value reaches an intact chunk chain whose lengths sum to
//!   the recorded total,
//! * no page is claimed by two different structures.
//!
//! Problems are collected, not thrown: hard invariant violations land in
//! [`IntegrityReport::errors`], benign oddities (e.g. pages leaked by
//! `drop_table`, which intentionally does not chase blobs) in
//! [`IntegrityReport::warnings`]. The crash-torture harness asserts
//! [`IntegrityReport::is_ok`] after every simulated crash and reopen.

use crate::blob;
use crate::btree;
use crate::catalog::{decode_row, ColumnType, RowValue};
use crate::db::{Database, Inner, META_CATALOG_ROOT, META_MAGIC, META_MAGIC_OFF};
use crate::heap::{self, Heap, RecordId};
use crate::page::{PageId, PageKind};
use crate::pager::META_FREE_HEAD;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The outcome of a [`Database::check_integrity`] walk.
#[derive(Debug, Default)]
pub struct IntegrityReport {
    /// Total pages in the data file.
    pub pages: u64,
    /// Tables found in the catalog.
    pub tables: usize,
    /// Live rows across all tables.
    pub rows: u64,
    /// Distinct blobs reachable from rows.
    pub blobs: usize,
    /// Pages on the free list.
    pub free_pages: u64,
    /// Hard invariant violations (corruption, unbalanced trees, orphans…).
    pub errors: Vec<String>,
    /// Benign oddities (unreachable pages leaked by design…).
    pub warnings: Vec<String>,
}

impl IntegrityReport {
    /// `true` when no hard invariant was violated (warnings allowed).
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

impl fmt::Display for IntegrityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "integrity: {} pages, {} tables, {} rows, {} blobs, {} free, {} errors, {} warnings",
            self.pages,
            self.tables,
            self.rows,
            self.blobs,
            self.free_pages,
            self.errors.len(),
            self.warnings.len()
        )
    }
}

impl Database {
    /// Walks every committed structure and verifies the storage invariants
    /// (see the [module docs](self)). Takes the writer lock: do not call
    /// while a [`Transaction`](crate::Transaction) is open on the same
    /// thread. Snapshot readers are unaffected.
    pub fn check_integrity(&self) -> IntegrityReport {
        let mut inner = self.writer.lock();
        check(&mut inner)
    }
}

/// Page-ownership ledger: page id → what claimed it.
struct Claims {
    owner: HashMap<u64, String>,
    pages: u64,
}

impl Claims {
    /// Claims `page` for `what`. Records an error and returns `false` if the
    /// page is out of bounds or already claimed by something else.
    fn claim(&mut self, page: PageId, what: &str, errors: &mut Vec<String>) -> bool {
        if page.0 >= self.pages {
            errors.push(format!("{what}: page {} out of bounds", page.0));
            return false;
        }
        if let Some(prev) = self.owner.get(&page.0) {
            errors.push(format!("{what}: page {} already claimed by {prev}", page.0));
            return false;
        }
        self.owner.insert(page.0, what.to_string());
        true
    }
}

fn check(inner: &mut Inner) -> IntegrityReport {
    let mut rep = IntegrityReport {
        pages: inner.pool.num_pages(),
        ..IntegrityReport::default()
    };
    let mut claims = Claims {
        owner: HashMap::new(),
        pages: rep.pages,
    };

    // Meta page.
    if rep.pages == 0 {
        rep.errors.push("data file has no meta page".to_string());
        return rep;
    }
    claims.claim(PageId::META, "meta", &mut rep.errors);
    match inner.pool.with_page(PageId::META, |p| {
        (
            p.kind(),
            p.get_u64(META_MAGIC_OFF),
            p.get_u64(META_FREE_HEAD),
        )
    }) {
        Ok((kind, magic, free_head)) => {
            if kind != PageKind::Meta {
                rep.errors.push(format!("meta page has kind {kind:?}"));
            }
            if magic != META_MAGIC {
                rep.errors
                    .push(format!("meta magic {magic:#x} != {META_MAGIC:#x}"));
            }
            walk_free_list(inner, PageId(free_head), &mut claims, &mut rep);
        }
        Err(e) => rep.errors.push(format!("meta page unreadable: {e}")),
    }

    // Catalog heap.
    let catalog_root = match inner
        .pool
        .with_page(PageId::META, |p| PageId(p.get_u64(META_CATALOG_ROOT)))
    {
        Ok(root) => root,
        Err(_) => return rep, // already reported above
    };
    if catalog_root.is_some() {
        walk_heap_chain(inner, catalog_root, "catalog heap", &mut claims, &mut rep);
    } else {
        rep.errors.push("meta page has no catalog root".to_string());
    }

    // Tables: the in-memory catalog was loaded from the catalog heap at
    // open, so it is the authoritative view of what should be reachable.
    let tables: Vec<_> = {
        let mut t: Vec<_> = inner.catalog.values().map(|e| e.info.clone()).collect();
        t.sort_by(|a, b| a.name.cmp(&b.name));
        t
    };
    rep.tables = tables.len();
    let mut seen_blobs: HashSet<u64> = HashSet::new();
    for info in &tables {
        let live = walk_heap_chain(
            inner,
            info.heap_root,
            &format!("table {} heap", info.name),
            &mut claims,
            &mut rep,
        );
        let pairs = walk_btree(inner, info, &mut claims, &mut rep);
        check_rows(
            inner,
            info,
            &live,
            &pairs,
            &mut seen_blobs,
            &mut claims,
            &mut rep,
        );
        rep.rows += pairs.len() as u64;
    }

    // Anything not claimed by now is unreachable. `drop_table` leaks blob
    // pages by design, so this is a warning, not an error.
    for id in 0..rep.pages {
        if !claims.owner.contains_key(&id) {
            let kind = inner
                .pool
                .with_page(PageId(id), |p| format!("{:?}", p.kind()))
                .unwrap_or_else(|e| format!("unreadable: {e}"));
            rep.warnings
                .push(format!("page {id} ({kind}) unreachable from any root"));
        }
    }
    rep
}

fn walk_free_list(inner: &mut Inner, head: PageId, claims: &mut Claims, rep: &mut IntegrityReport) {
    let mut node = head;
    while node.is_some() {
        if !claims.claim(node, "free list", &mut rep.errors) {
            return; // out of bounds or cycle back into something claimed
        }
        match inner.pool.with_page(node, |p| (p.kind(), p.get_u64(0))) {
            Ok((kind, next)) => {
                if kind != PageKind::Free {
                    rep.errors
                        .push(format!("free-list page {} has kind {kind:?}", node.0));
                }
                rep.free_pages += 1;
                node = PageId(next);
            }
            Err(e) => {
                rep.errors
                    .push(format!("free-list page {} unreadable: {e}", node.0));
                return;
            }
        }
    }
}

/// Claims and type-checks a heap chain; returns the set of live record ids.
fn walk_heap_chain(
    inner: &mut Inner,
    first: PageId,
    what: &str,
    claims: &mut Claims,
    rep: &mut IntegrityReport,
) -> HashSet<u64> {
    let mut live = HashSet::new();
    let mut node = first;
    while node.is_some() {
        if !claims.claim(node, what, &mut rep.errors) {
            return live;
        }
        let scanned = inner.pool.with_page(node, |p| {
            if p.kind() != PageKind::Heap {
                return Err(format!("{what}: page {} has kind {:?}", node.0, p.kind()));
            }
            let slots = p.get_u16(heap::OFF_SLOT_COUNT);
            let mut rids = Vec::new();
            for slot in 0..slots {
                let (_off, len) = heap::slot_entry(p, slot);
                if len > 0 {
                    rids.push(RecordId { page: node, slot }.pack());
                }
            }
            Ok((rids, PageId(p.get_u64(heap::OFF_NEXT))))
        });
        match scanned {
            Ok(Ok((rids, next))) => {
                live.extend(rids);
                node = next;
            }
            Ok(Err(msg)) => {
                rep.errors.push(msg);
                return live;
            }
            Err(e) => {
                rep.errors
                    .push(format!("{what}: page {} unreadable: {e}", node.0));
                return live;
            }
        }
    }
    live
}

/// Claims and structurally verifies a table's B+tree. Returns the in-order
/// `(key, value)` pairs.
fn walk_btree(
    inner: &mut Inner,
    info: &crate::catalog::TableInfo,
    claims: &mut Claims,
    rep: &mut IntegrityReport,
) -> Vec<(u64, u64)> {
    let what = format!("table {} index", info.name);
    let mut pairs = Vec::new();
    let mut leaves = Vec::new();
    let mut leaf_depth: Option<usize> = None;
    walk_btree_node(
        inner,
        info.index_root,
        0,
        &what,
        claims,
        rep,
        &mut pairs,
        &mut leaves,
        &mut leaf_depth,
    );
    // Ordering: globally strictly ascending (covers intra-leaf order and
    // subtree separation).
    for w in pairs.windows(2) {
        if w[0].0 >= w[1].0 {
            rep.errors.push(format!(
                "{what}: keys out of order ({} then {})",
                w[0].0, w[1].0
            ));
            break;
        }
    }
    // The sibling chain must enumerate exactly the in-order leaves.
    if let Some(&first) = leaves.first() {
        let mut chain = Vec::new();
        let mut node = first;
        let mut seen = HashSet::new();
        while node.is_some() {
            if !seen.insert(node.0) {
                rep.errors
                    .push(format!("{what}: leaf chain cycles at page {}", node.0));
                break;
            }
            chain.push(node);
            match inner
                .pool
                .with_page(node, |p| PageId(p.get_u64(btree::OFF_NEXT_LEAF)))
            {
                Ok(next) => node = next,
                Err(e) => {
                    rep.errors
                        .push(format!("{what}: leaf page {} unreadable: {e}", node.0));
                    break;
                }
            }
        }
        if chain != leaves {
            rep.errors.push(format!(
                "{what}: leaf sibling chain ({} leaves) disagrees with tree order ({} leaves)",
                chain.len(),
                leaves.len()
            ));
        }
    }
    pairs
}

#[allow(clippy::too_many_arguments)]
fn walk_btree_node(
    inner: &mut Inner,
    node: PageId,
    depth: usize,
    what: &str,
    claims: &mut Claims,
    rep: &mut IntegrityReport,
    pairs: &mut Vec<(u64, u64)>,
    leaves: &mut Vec<PageId>,
    leaf_depth: &mut Option<usize>,
) {
    if !claims.claim(node, what, &mut rep.errors) {
        return;
    }
    let read = inner.pool.with_page(node, |p| {
        let kind = p.kind();
        let nkeys = p.get_u16(btree::OFF_NKEYS) as usize;
        match kind {
            PageKind::BTreeLeaf => {
                let mut kv = Vec::with_capacity(nkeys);
                for i in 0..nkeys {
                    kv.push((
                        p.get_u64(btree::LEAF_ENTRIES + i * 16),
                        p.get_u64(btree::LEAF_ENTRIES + i * 16 + 8),
                    ));
                }
                Ok((true, kv, Vec::new()))
            }
            PageKind::BTreeInternal => {
                let mut children = vec![PageId(p.get_u64(btree::OFF_CHILD0))];
                let mut keys = Vec::with_capacity(nkeys);
                for i in 0..nkeys {
                    keys.push(p.get_u64(btree::INTERNAL_ENTRIES + i * 16));
                    children.push(PageId(p.get_u64(btree::INTERNAL_ENTRIES + i * 16 + 8)));
                }
                let kv = keys.into_iter().map(|k| (k, 0)).collect();
                Ok((false, kv, children))
            }
            other => Err(format!(
                "{what}: page {} in tree has kind {other:?}",
                node.0
            )),
        }
    });
    match read {
        Ok(Ok((is_leaf, kv, children))) => {
            if is_leaf {
                if kv.len() > crate::btree::LEAF_CAP {
                    rep.errors
                        .push(format!("{what}: leaf {} overflows ({})", node.0, kv.len()));
                }
                match *leaf_depth {
                    None => *leaf_depth = Some(depth),
                    Some(d) if d != depth => rep.errors.push(format!(
                        "{what}: unbalanced — leaf {} at depth {depth}, expected {d}",
                        node.0
                    )),
                    _ => {}
                }
                leaves.push(node);
                pairs.extend(kv);
            } else {
                if kv.len() > crate::btree::INTERNAL_CAP {
                    rep.errors.push(format!(
                        "{what}: internal {} overflows ({})",
                        node.0,
                        kv.len()
                    ));
                }
                for child in children {
                    walk_btree_node(
                        inner,
                        child,
                        depth + 1,
                        what,
                        claims,
                        rep,
                        pairs,
                        leaves,
                        leaf_depth,
                    );
                }
            }
        }
        Ok(Err(msg)) => rep.errors.push(msg),
        Err(e) => rep
            .errors
            .push(format!("{what}: page {} unreadable: {e}", node.0)),
    }
}

/// Resolves every index entry to its heap record, decodes it under the
/// schema, chases blob values, and flags orphan heap records.
#[allow(clippy::too_many_arguments)]
fn check_rows(
    inner: &mut Inner,
    info: &crate::catalog::TableInfo,
    live: &HashSet<u64>,
    pairs: &[(u64, u64)],
    seen_blobs: &mut HashSet<u64>,
    claims: &mut Claims,
    rep: &mut IntegrityReport,
) {
    let what = format!("table {}", info.name);
    let heap = Heap::open(info.heap_root);
    let mut referenced: HashSet<u64> = HashSet::new();
    for &(key, packed) in pairs {
        if !live.contains(&packed) {
            rep.errors.push(format!(
                "{what}: index key {key} points at dead record {:?}",
                RecordId::unpack(packed)
            ));
            continue;
        }
        referenced.insert(packed);
        let bytes = match heap.get(&mut inner.pool, RecordId::unpack(packed)) {
            Ok(b) => b,
            Err(e) => {
                rep.errors
                    .push(format!("{what}: record for key {key} unreadable: {e}"));
                continue;
            }
        };
        let row = match decode_row(&info.schema, &bytes) {
            Ok(r) => r,
            Err(e) => {
                rep.errors
                    .push(format!("{what}: row {key} fails to decode: {e}"));
                continue;
            }
        };
        if row.first() != Some(&RowValue::U64(key)) {
            rep.errors.push(format!(
                "{what}: row stored under key {key} carries pk {:?}",
                row.first()
            ));
        }
        for (col, value) in info.schema.columns().iter().zip(&row) {
            if col.ty == ColumnType::Blob {
                if let RowValue::Blob(id) = value {
                    if seen_blobs.insert(id.0) {
                        walk_blob(inner, *id, &what, key, claims, rep);
                    }
                }
            }
        }
    }
    for &orphan in live.difference(&referenced) {
        rep.errors.push(format!(
            "{what}: heap record {:?} not referenced by the index",
            RecordId::unpack(orphan)
        ));
    }
}

fn walk_blob(
    inner: &mut Inner,
    id: crate::blob::BlobId,
    what: &str,
    key: u64,
    claims: &mut Claims,
    rep: &mut IntegrityReport,
) {
    let label = format!("blob {}", id.0);
    let mut node = id.0;
    let mut first = true;
    let mut total: u64 = 0;
    let mut sum: u64 = 0;
    loop {
        let page = PageId(node);
        if !page.is_some() {
            break;
        }
        if !claims.claim(page, &label, &mut rep.errors) {
            // Out of bounds, a cycle within this chain, or a page shared
            // with another structure — all already reported.
            return;
        }
        let read = inner.pool.with_page(page, |p| {
            if p.kind() != PageKind::Blob {
                return Err(format!(
                    "{what}: row {key} {label} page {node} has kind {:?}",
                    p.kind()
                ));
            }
            let next = p.get_u64(blob::OFF_NEXT);
            let (t, chunk, cap) = if first {
                (
                    p.get_u64(blob::FIRST_TOTAL),
                    p.get_u32(blob::FIRST_CHUNK_LEN) as u64,
                    blob::FIRST_CAP as u64,
                )
            } else {
                (
                    0,
                    p.get_u32(blob::CONT_CHUNK_LEN) as u64,
                    blob::CONT_CAP as u64,
                )
            };
            if chunk > cap {
                return Err(format!(
                    "{what}: row {key} {label} page {node} chunk {chunk} exceeds capacity {cap}"
                ));
            }
            Ok((next, t, chunk))
        });
        match read {
            Ok(Ok((next, t, chunk))) => {
                if first {
                    total = t;
                    first = false;
                }
                sum += chunk;
                node = next;
            }
            Ok(Err(msg)) => {
                rep.errors.push(msg);
                return;
            }
            Err(e) => {
                rep.errors.push(format!(
                    "{what}: row {key} {label} page {node} unreadable: {e}"
                ));
                return;
            }
        }
    }
    if sum != total {
        rep.errors.push(format!(
            "{what}: row {key} {label} chunks sum to {sum}, header says {total}"
        ));
    }
    rep.blobs += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Column, ColumnType, Schema};
    use crate::db::RowValue;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("ID", ColumnType::U64),
            Column::new("V", ColumnType::I64),
            Column::new("B", ColumnType::Blob),
        ])
        .unwrap()
    }

    #[test]
    fn fresh_database_is_clean() {
        let db = Database::in_memory().unwrap();
        let rep = db.check_integrity();
        assert!(rep.is_ok(), "errors: {:?}", rep.errors);
        assert_eq!(rep.tables, 0);
    }

    #[test]
    fn populated_database_is_clean() {
        let db = Database::in_memory().unwrap();
        {
            let mut tx = db.begin().unwrap();
            tx.create_table("T", schema()).unwrap();
            for i in 0..700u64 {
                // enough rows to force B+tree splits
                let blob = if i % 50 == 0 {
                    let b = tx.put_blob(&vec![i as u8; 9000]).unwrap();
                    RowValue::Blob(b)
                } else {
                    RowValue::Null
                };
                tx.insert("T", vec![RowValue::Null, RowValue::I64(i as i64), blob])
                    .unwrap();
            }
            tx.commit().unwrap();
        }
        {
            let mut tx = db.begin().unwrap();
            for i in (0..700u64).step_by(3) {
                tx.delete("T", i + 1).unwrap();
            }
            tx.commit().unwrap();
        }
        let rep = db.check_integrity();
        assert!(rep.is_ok(), "errors: {:?}", rep.errors);
        assert_eq!(rep.tables, 1);
        assert!(rep.rows > 0);
        assert!(rep.blobs > 0);
    }

    #[test]
    fn dropped_table_leaves_only_warnings() {
        let db = Database::in_memory().unwrap();
        {
            let mut tx = db.begin().unwrap();
            tx.create_table("T", schema()).unwrap();
            let b = tx.put_blob(&[5u8; 20_000]).unwrap();
            tx.insert(
                "T",
                vec![RowValue::Null, RowValue::I64(1), RowValue::Blob(b)],
            )
            .unwrap();
            tx.commit().unwrap();
        }
        {
            let mut tx = db.begin().unwrap();
            tx.drop_table("T").unwrap();
            tx.commit().unwrap();
        }
        let rep = db.check_integrity();
        assert!(rep.is_ok(), "errors: {:?}", rep.errors);
        // drop_table leaks blob pages by design — they show up as warnings.
        assert!(!rep.warnings.is_empty());
    }
}
