//! The system catalog: table schemas, row encoding, and the persistent
//! table directory.
//!
//! Tables are typed: a [`Schema`] is an ordered list of [`Column`]s, the
//! first of which must be the `u64` primary key (matching the `ID` column
//! every table in the paper's Figure 7 carries). Rows are encoded
//! column-by-column with a one-byte tag so `NULL`s and type errors are
//! detected on decode.

use crate::blob::BlobId;
use crate::error::{Result, StorageError};
use crate::heap::RecordId;
use crate::page::PageId;

/// Column type of a table schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Unsigned 64-bit integer (the mandatory type of the primary key).
    U64,
    /// Signed 64-bit integer.
    I64,
    /// 64-bit float.
    F64,
    /// UTF-8 string.
    Text,
    /// Raw bytes stored inline in the row (small payloads only).
    Bytes,
    /// Reference to a BLOB chain (large payloads).
    Blob,
}

impl ColumnType {
    fn tag(self) -> u8 {
        match self {
            ColumnType::U64 => 0,
            ColumnType::I64 => 1,
            ColumnType::F64 => 2,
            ColumnType::Text => 3,
            ColumnType::Bytes => 4,
            ColumnType::Blob => 5,
        }
    }

    fn from_tag(tag: u8) -> Option<ColumnType> {
        Some(match tag {
            0 => ColumnType::U64,
            1 => ColumnType::I64,
            2 => ColumnType::F64,
            3 => ColumnType::Text,
            4 => ColumnType::Bytes,
            5 => ColumnType::Blob,
            _ => return None,
        })
    }
}

/// One column of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: &str, ty: ColumnType) -> Self {
        Column {
            name: name.to_string(),
            ty,
        }
    }
}

/// An ordered list of columns; the first must be a `U64` primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds and validates a schema.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        if columns.is_empty() {
            return Err(StorageError::Catalog("schema has no columns".to_string()));
        }
        if columns[0].ty != ColumnType::U64 {
            return Err(StorageError::Catalog(format!(
                "first column '{}' must be the U64 primary key",
                columns[0].name
            )));
        }
        let mut names = std::collections::HashSet::new();
        for c in &columns {
            if !names.insert(c.name.as_str()) {
                return Err(StorageError::Catalog(format!(
                    "duplicate column '{}'",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

/// A runtime row value.
#[derive(Debug, Clone, PartialEq)]
pub enum RowValue {
    /// SQL NULL (allowed in every column except the primary key).
    Null,
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Text(String),
    /// Inline bytes.
    Bytes(Vec<u8>),
    /// BLOB reference.
    Blob(BlobId),
}

impl RowValue {
    fn matches(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (RowValue::Null, _)
                | (RowValue::U64(_), ColumnType::U64)
                | (RowValue::I64(_), ColumnType::I64)
                | (RowValue::F64(_), ColumnType::F64)
                | (RowValue::Text(_), ColumnType::Text)
                | (RowValue::Bytes(_), ColumnType::Bytes)
                | (RowValue::Blob(_), ColumnType::Blob)
        )
    }

    /// Extracts a `u64` or fails (primary-key access).
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            RowValue::U64(v) => Ok(*v),
            other => Err(StorageError::Catalog(format!(
                "expected U64 value, got {other:?}"
            ))),
        }
    }

    /// Extracts text or fails.
    pub fn as_text(&self) -> Result<&str> {
        match self {
            RowValue::Text(s) => Ok(s),
            other => Err(StorageError::Catalog(format!(
                "expected Text value, got {other:?}"
            ))),
        }
    }

    /// Extracts a BLOB reference or fails.
    pub fn as_blob(&self) -> Result<BlobId> {
        match self {
            RowValue::Blob(b) => Ok(*b),
            other => Err(StorageError::Catalog(format!(
                "expected Blob value, got {other:?}"
            ))),
        }
    }
}

const VAL_NULL: u8 = 0;
const VAL_U64: u8 = 1;
const VAL_I64: u8 = 2;
const VAL_F64: u8 = 3;
const VAL_TEXT: u8 = 4;
const VAL_BYTES: u8 = 5;
const VAL_BLOB: u8 = 6;

/// Encodes a row against `schema` (arity and type checked; the primary key
/// must be a non-null `U64`).
pub fn encode_row(schema: &Schema, values: &[RowValue]) -> Result<Vec<u8>> {
    if values.len() != schema.arity() {
        return Err(StorageError::Catalog(format!(
            "row has {} values, schema {} columns",
            values.len(),
            schema.arity()
        )));
    }
    if matches!(values[0], RowValue::Null) {
        return Err(StorageError::Catalog(
            "primary key must not be NULL".to_string(),
        ));
    }
    let mut buf = Vec::with_capacity(64);
    for (v, c) in values.iter().zip(schema.columns()) {
        if !v.matches(c.ty) {
            return Err(StorageError::Catalog(format!(
                "value {:?} does not match column '{}' of type {:?}",
                v, c.name, c.ty
            )));
        }
        match v {
            RowValue::Null => buf.push(VAL_NULL),
            RowValue::U64(x) => {
                buf.push(VAL_U64);
                buf.extend_from_slice(&x.to_le_bytes());
            }
            RowValue::I64(x) => {
                buf.push(VAL_I64);
                buf.extend_from_slice(&x.to_le_bytes());
            }
            RowValue::F64(x) => {
                buf.push(VAL_F64);
                buf.extend_from_slice(&x.to_le_bytes());
            }
            RowValue::Text(s) => {
                buf.push(VAL_TEXT);
                buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                buf.extend_from_slice(s.as_bytes());
            }
            RowValue::Bytes(b) => {
                buf.push(VAL_BYTES);
                buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
                buf.extend_from_slice(b);
            }
            RowValue::Blob(b) => {
                buf.push(VAL_BLOB);
                buf.extend_from_slice(&b.0.to_le_bytes());
            }
        }
    }
    Ok(buf)
}

/// Little-endian cursor over a byte slice, shared by the row and catalog
/// decoders.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(StorageError::Catalog(format!(
                "record truncated at offset {}",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Decodes a row encoded by [`encode_row`].
pub fn decode_row(schema: &Schema, bytes: &[u8]) -> Result<Vec<RowValue>> {
    let mut values = Vec::with_capacity(schema.arity());
    let mut cur = Cursor::new(bytes);
    for c in schema.columns() {
        let tag = cur.u8()?;
        let v = match tag {
            VAL_NULL => RowValue::Null,
            VAL_U64 => RowValue::U64(cur.u64()?),
            VAL_I64 => RowValue::I64(cur.u64()? as i64),
            VAL_F64 => RowValue::F64(f64::from_le_bytes(cur.u64()?.to_le_bytes())),
            VAL_TEXT => {
                let len = cur.u32()? as usize;
                let raw = cur.take(len)?;
                RowValue::Text(String::from_utf8(raw.to_vec()).map_err(|_| {
                    StorageError::Catalog(format!("column '{}' holds invalid UTF-8", c.name))
                })?)
            }
            VAL_BYTES => {
                let len = cur.u32()? as usize;
                RowValue::Bytes(cur.take(len)?.to_vec())
            }
            VAL_BLOB => RowValue::Blob(BlobId(cur.u64()?)),
            t => {
                return Err(StorageError::Catalog(format!(
                    "unknown value tag {t} in column '{}'",
                    c.name
                )))
            }
        };
        if !v.matches(c.ty) {
            return Err(StorageError::Catalog(format!(
                "decoded {:?} does not match column '{}' of type {:?}",
                v, c.name, c.ty
            )));
        }
        values.push(v);
    }
    if !cur.done() {
        return Err(StorageError::Catalog("trailing bytes in row".to_string()));
    }
    Ok(values)
}

/// Persistent description of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableInfo {
    /// Table name (unique).
    pub name: String,
    /// Column layout.
    pub schema: Schema,
    /// First page of the table's heap chain.
    pub heap_root: PageId,
    /// Root page of the primary-key B+tree.
    pub index_root: PageId,
    /// Next auto-assigned primary key.
    pub next_id: u64,
}

impl TableInfo {
    /// Encodes for storage in the catalog heap. The trailing three `u64`
    /// fields are fixed-size so routine updates (index root moves, id
    /// counter bumps) rewrite in place.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&(self.name.len() as u16).to_le_bytes());
        buf.extend_from_slice(self.name.as_bytes());
        buf.extend_from_slice(&(self.schema.arity() as u16).to_le_bytes());
        for c in self.schema.columns() {
            buf.extend_from_slice(&(c.name.len() as u16).to_le_bytes());
            buf.extend_from_slice(c.name.as_bytes());
            buf.push(c.ty.tag());
        }
        buf.extend_from_slice(&self.heap_root.0.to_le_bytes());
        buf.extend_from_slice(&self.index_root.0.to_le_bytes());
        buf.extend_from_slice(&self.next_id.to_le_bytes());
        buf
    }

    /// Decodes a catalog record.
    pub fn decode(bytes: &[u8]) -> Result<TableInfo> {
        let mut cur = Cursor::new(bytes);
        let name_len = cur.u16()? as usize;
        let name = String::from_utf8(cur.take(name_len)?.to_vec())
            .map_err(|_| StorageError::Catalog("table name invalid UTF-8".to_string()))?;
        let ncols = cur.u16()? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let cname_len = cur.u16()? as usize;
            let cname = String::from_utf8(cur.take(cname_len)?.to_vec())
                .map_err(|_| StorageError::Catalog("column name invalid UTF-8".to_string()))?;
            let ty = ColumnType::from_tag(cur.u8()?)
                .ok_or_else(|| StorageError::Catalog("unknown column type tag".to_string()))?;
            columns.push(Column { name: cname, ty });
        }
        let heap_root = PageId(cur.u64()?);
        let index_root = PageId(cur.u64()?);
        let next_id = cur.u64()?;
        if !cur.done() {
            return Err(StorageError::Catalog(
                "trailing bytes in catalog record".to_string(),
            ));
        }
        Ok(TableInfo {
            name,
            schema: Schema::new(columns)?,
            heap_root,
            index_root,
            next_id,
        })
    }
}

/// In-memory catalog entry: the persistent info plus where it lives in the
/// catalog heap.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The table description.
    pub info: TableInfo,
    /// The catalog-heap record that stores it.
    pub record: RecordId,
    /// In-memory insert hint: the heap page the last insert landed on
    /// (not persisted; avoids re-walking the chain on every insert).
    pub hint: Option<PageId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("ID", ColumnType::U64),
            Column::new("FLD_NAME", ColumnType::Text),
            Column::new("FLD_QUALITY", ColumnType::I64),
            Column::new("FLD_SCORE", ColumnType::F64),
            Column::new("FLD_META", ColumnType::Bytes),
            Column::new("FLD_DATA", ColumnType::Blob),
        ])
        .unwrap()
    }

    #[test]
    fn schema_validation() {
        assert!(Schema::new(vec![]).is_err());
        assert!(Schema::new(vec![Column::new("ID", ColumnType::Text)]).is_err());
        assert!(Schema::new(vec![
            Column::new("ID", ColumnType::U64),
            Column::new("ID", ColumnType::Text),
        ])
        .is_err());
        let s = schema();
        assert_eq!(s.arity(), 6);
        assert_eq!(s.column_index("FLD_DATA"), Some(5));
        assert_eq!(s.column_index("nope"), None);
    }

    #[test]
    fn row_roundtrip() {
        let s = schema();
        let row = vec![
            RowValue::U64(7),
            RowValue::Text("ct-scan".to_string()),
            RowValue::I64(-3),
            RowValue::F64(0.25),
            RowValue::Bytes(vec![1, 2, 3]),
            RowValue::Blob(BlobId(42)),
        ];
        let bytes = encode_row(&s, &row).unwrap();
        assert_eq!(decode_row(&s, &bytes).unwrap(), row);
    }

    #[test]
    fn nulls_roundtrip_except_pk() {
        let s = schema();
        let row = vec![
            RowValue::U64(1),
            RowValue::Null,
            RowValue::Null,
            RowValue::Null,
            RowValue::Null,
            RowValue::Null,
        ];
        let bytes = encode_row(&s, &row).unwrap();
        assert_eq!(decode_row(&s, &bytes).unwrap(), row);
        let bad = vec![
            RowValue::Null,
            RowValue::Null,
            RowValue::Null,
            RowValue::Null,
            RowValue::Null,
            RowValue::Null,
        ];
        assert!(encode_row(&s, &bad).is_err());
    }

    #[test]
    fn arity_and_type_mismatches_rejected() {
        let s = schema();
        assert!(encode_row(&s, &[RowValue::U64(1)]).is_err());
        let wrong = vec![
            RowValue::U64(1),
            RowValue::U64(2), // should be Text
            RowValue::I64(0),
            RowValue::F64(0.0),
            RowValue::Bytes(vec![]),
            RowValue::Blob(BlobId(0)),
        ];
        assert!(encode_row(&s, &wrong).is_err());
    }

    #[test]
    fn decode_rejects_corruption() {
        let s = schema();
        let row = vec![
            RowValue::U64(7),
            RowValue::Text("x".to_string()),
            RowValue::I64(0),
            RowValue::F64(0.0),
            RowValue::Bytes(vec![]),
            RowValue::Blob(BlobId(1)),
        ];
        let bytes = encode_row(&s, &row).unwrap();
        assert!(decode_row(&s, &bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_row(&s, &extra).is_err());
        let mut bad_tag = bytes;
        bad_tag[0] = 99;
        assert!(decode_row(&s, &bad_tag).is_err());
    }

    #[test]
    fn table_info_roundtrip_and_stable_size() {
        let info = TableInfo {
            name: "IMAGE_OBJECTS_TABLE".to_string(),
            schema: schema(),
            heap_root: PageId(5),
            index_root: PageId(9),
            next_id: 17,
        };
        let bytes = info.encode();
        assert_eq!(TableInfo::decode(&bytes).unwrap(), info);
        // Bumping counters keeps the encoded size identical (in-place update).
        let mut bumped = info.clone();
        bumped.next_id = 99_999;
        bumped.index_root = PageId(12345);
        assert_eq!(bumped.encode().len(), bytes.len());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(RowValue::U64(5).as_u64().unwrap(), 5);
        assert!(RowValue::Text("x".into()).as_u64().is_err());
        assert_eq!(RowValue::Text("x".into()).as_text().unwrap(), "x");
        assert_eq!(RowValue::Blob(BlobId(3)).as_blob().unwrap(), BlobId(3));
        assert!(RowValue::Null.as_blob().is_err());
    }
}
