//! Redo-only write-ahead log.
//!
//! The WAL carries *after-images* of every page a transaction dirtied,
//! followed by a commit record. Records are individually checksummed so a
//! torn tail (crash mid-append) is detected and discarded; everything before
//! the first bad record that belongs to a committed transaction is replayed.
//!
//! On-disk layout:
//!
//! ```text
//! magic "RCWL"
//! record := tag u8 | len u32 | payload | crc32(tag ‖ len ‖ payload) u32
//! tag 'P': payload = txn u64 | page u64 | PAGE_SIZE image bytes
//! tag 'C': payload = txn u64
//! ```
//!
//! Storage goes through the byte-level [`Backend`] abstraction so the same
//! code path serves files, in-memory buffers and the crash-injecting
//! simulator. Durability sites pass through [`crate::failpoint`] hooks.

use crate::backend::{Backend, FileBackend, MemBackend};
use crate::error::{Result, StorageError};
use crate::failpoint;
use crate::page::{crc32, PageId, PAGE_SIZE};
use std::collections::HashSet;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"RCWL";

/// A raw page after-image carried by the log.
pub type PageImage = Vec<u8>;
const TAG_PAGE: u8 = b'P';
const TAG_COMMIT: u8 = b'C';

static WAL_QUARANTINED: rcmo_obs::LazyCounter =
    rcmo_obs::LazyCounter::new("storage.salvage.wal_quarantined.count");
static WAL_BAD_COMMIT: rcmo_obs::LazyCounter =
    rcmo_obs::LazyCounter::new("storage.salvage.wal_bad_commit.count");

/// A decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// After-image of a page written by a transaction.
    PageImage {
        /// The writing transaction.
        txn: u64,
        /// The page the image belongs to.
        page: PageId,
        /// The sealed page image.
        image: Vec<u8>,
    },
    /// Transaction commit marker.
    Commit {
        /// The committing transaction.
        txn: u64,
    },
}

/// The write-ahead log over a byte-level [`Backend`].
///
/// Commit records must be strictly monotone in transaction id: the log
/// remembers the highest committed id, [`log_commit`](Self::log_commit) is
/// idempotent for a repeat of that id (a durability hook may already have
/// written it) and rejects anything lower, and replay treats a duplicate or
/// non-monotonic commit record as the end of the valid prefix rather than
/// silently applying it.
#[derive(Debug)]
pub struct Wal {
    backend: Box<dyn Backend>,
    /// Highest transaction id with a commit record in the log.
    last_commit_txn: Option<u64>,
}

impl Wal {
    /// Opens (or creates) a file-backed WAL at `path`. Errors with
    /// [`StorageError::BadHeader`] if the file exists but does not start
    /// with the WAL magic; see [`open_or_quarantine`](Self::open_or_quarantine)
    /// for the salvaging variant.
    pub fn open(path: &Path) -> Result<Self> {
        Self::from_backend_strict(Box::new(FileBackend::open(path)?))
    }

    /// Opens the WAL at `path`, quarantining it first if its header is
    /// unreadable: a log whose magic is damaged (e.g. a crash tore the very
    /// first write of a fresh log, or the file was corrupted at rest) is
    /// renamed aside to `<path>.corrupt-<k>` and a fresh log is started, so
    /// the database opens read-consistent instead of refusing to start.
    /// Returns the WAL and the quarantine path if one was created.
    pub fn open_or_quarantine(path: &Path) -> Result<(Self, Option<PathBuf>)> {
        let quarantined = if Self::header_is_bad(path)? {
            let aside = Self::quarantine_path(path);
            std::fs::rename(path, &aside)?;
            WAL_QUARANTINED.inc();
            Some(aside)
        } else {
            None
        };
        Ok((Self::open(path)?, quarantined))
    }

    /// `true` if the file at `path` exists, is non-empty, and does not
    /// start with the WAL magic.
    fn header_is_bad(path: &Path) -> Result<bool> {
        use std::io::Read;
        let mut file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e.into()),
        };
        if file.metadata()?.len() == 0 {
            return Ok(false);
        }
        let mut magic = [0u8; 4];
        match file.read_exact(&mut magic) {
            Ok(()) => Ok(&magic != MAGIC),
            // Shorter than the magic: torn first write — quarantine.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(true),
            Err(e) => Err(e.into()),
        }
    }

    fn quarantine_path(path: &Path) -> PathBuf {
        let mut k = 1u32;
        loop {
            let mut name = path.as_os_str().to_os_string();
            name.push(format!(".corrupt-{k}"));
            let candidate = PathBuf::from(name);
            if !candidate.exists() {
                return candidate;
            }
            k += 1;
        }
    }

    /// Creates an in-memory WAL.
    pub fn in_memory() -> Self {
        let mut backend = MemBackend::new();
        backend
            .write_at(0, MAGIC)
            .expect("in-memory write cannot fail");
        Wal {
            backend: Box::new(backend),
            last_commit_txn: None,
        }
    }

    /// Opens a WAL over an arbitrary backend. A damaged header is salvaged
    /// in place: the log is reset to just the magic (there is no file to
    /// rename aside) and the quarantine counter is bumped.
    pub fn from_backend(mut backend: Box<dyn Backend>) -> Result<Self> {
        if Self::backend_header_is_bad(backend.as_mut())? {
            backend.set_len(0)?;
            backend.write_at(0, MAGIC)?;
            backend.sync()?;
            WAL_QUARANTINED.inc();
        }
        Self::from_backend_strict(backend)
    }

    fn backend_header_is_bad(backend: &mut dyn Backend) -> Result<bool> {
        let len = backend.len()?;
        if len == 0 {
            return Ok(false);
        }
        if len < MAGIC.len() as u64 {
            return Ok(true);
        }
        let mut magic = [0u8; 4];
        backend.read_at(0, &mut magic)?;
        Ok(&magic != MAGIC)
    }

    fn from_backend_strict(mut backend: Box<dyn Backend>) -> Result<Self> {
        let len = backend.len()?;
        if len == 0 {
            backend.write_at(0, MAGIC)?;
            backend.sync()?;
        } else {
            if len < MAGIC.len() as u64 {
                return Err(StorageError::BadHeader("WAL magic mismatch".to_string()));
            }
            let mut magic = [0u8; 4];
            backend.read_at(0, &mut magic)?;
            if &magic != MAGIC {
                return Err(StorageError::BadHeader("WAL magic mismatch".to_string()));
            }
        }
        let mut wal = Wal {
            backend,
            last_commit_txn: None,
        };
        // Resume the monotonicity watermark from the valid record prefix.
        wal.last_commit_txn = wal
            .records()?
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .max();
        Ok(wal)
    }

    /// Direct access to the underlying backend — for tests and harnesses
    /// that need to tear or corrupt the raw log bytes.
    pub fn backend_mut(&mut self) -> &mut dyn Backend {
        self.backend.as_mut()
    }

    fn append(&mut self, tag: u8, payload: &[u8]) -> Result<()> {
        failpoint::hit(failpoint::WAL_APPEND)?;
        let len = payload.len() as u32;
        let mut framed = Vec::with_capacity(payload.len() + 9);
        framed.push(tag);
        framed.extend_from_slice(&len.to_le_bytes());
        framed.extend_from_slice(payload);
        let sum = crc32(&framed);
        framed.extend_from_slice(&sum.to_le_bytes());
        let end = self.backend.len()?;
        self.backend.write_at(end, &framed)
    }

    /// Appends a page after-image for `txn`.
    pub fn log_page(&mut self, txn: u64, page: PageId, image: &[u8; PAGE_SIZE]) -> Result<()> {
        static LAT: rcmo_obs::LazyHistogram =
            rcmo_obs::LazyHistogram::new("storage.wal.append.us", rcmo_obs::bounds::LATENCY_US);
        let _t = LAT.start_timer();
        let mut payload = Vec::with_capacity(16 + PAGE_SIZE);
        payload.extend_from_slice(&txn.to_le_bytes());
        payload.extend_from_slice(&page.0.to_le_bytes());
        payload.extend_from_slice(image);
        self.append(TAG_PAGE, &payload)
    }

    /// Appends a commit marker for `txn`.
    ///
    /// Idempotent for the most recently committed id (a crash-simulation
    /// hook may have logged it already); a commit for any *lower* id would
    /// break the log's monotonicity invariant and is rejected.
    pub fn log_commit(&mut self, txn: u64) -> Result<()> {
        if let Some(last) = self.last_commit_txn {
            if txn == last {
                return Ok(()); // already committed — idempotent
            }
            if txn < last {
                return Err(StorageError::Internal(format!(
                    "non-monotonic commit: txn {txn} after txn {last}"
                )));
            }
        }
        self.append(TAG_COMMIT, &txn.to_le_bytes())?;
        self.last_commit_txn = Some(txn);
        Ok(())
    }

    /// Forces the log to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        static LAT: rcmo_obs::LazyHistogram =
            rcmo_obs::LazyHistogram::new("storage.wal.sync.us", rcmo_obs::bounds::LATENCY_US);
        failpoint::hit(failpoint::WAL_SYNC)?;
        let _t = LAT.start_timer();
        self.backend.sync()
    }

    /// Resets the log to just the magic (after a checkpoint has made all
    /// committed images durable in the data file).
    pub fn truncate(&mut self) -> Result<()> {
        failpoint::hit(failpoint::WAL_TRUNCATE)?;
        self.backend.set_len(MAGIC.len() as u64)?;
        self.last_commit_txn = None;
        self.backend.sync()
    }

    /// Byte length of the log (including the magic). Read-only: does not
    /// touch any write cursor.
    pub fn len(&self) -> Result<u64> {
        self.backend.len()
    }

    /// `true` if the log holds no records. Read-only.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? <= MAGIC.len() as u64)
    }

    /// Decodes all intact records, stopping silently at a torn tail. A
    /// duplicate or non-monotonic commit record also ends the valid prefix:
    /// a healthy log commits in strictly increasing transaction order, so
    /// anything else is damage and must not be replayed.
    pub fn records(&mut self) -> Result<Vec<WalRecord>> {
        let len = self.backend.len()?;
        let mut bytes = vec![0u8; len as usize];
        self.backend.read_at(0, &mut bytes)?;
        if bytes.len() < MAGIC.len() || &bytes[..4] != MAGIC {
            return Err(StorageError::BadHeader("WAL magic mismatch".to_string()));
        }
        let mut records = Vec::new();
        let mut last_commit: Option<u64> = None;
        let mut pos = MAGIC.len();
        while pos < bytes.len() {
            // tag + len + crc is the minimum frame.
            if pos + 9 > bytes.len() {
                break; // torn tail
            }
            let tag = bytes[pos];
            let len = u32::from_le_bytes([
                bytes[pos + 1],
                bytes[pos + 2],
                bytes[pos + 3],
                bytes[pos + 4],
            ]) as usize;
            let frame_end = pos + 5 + len;
            if frame_end + 4 > bytes.len() {
                break; // torn tail
            }
            let stored = u32::from_le_bytes([
                bytes[frame_end],
                bytes[frame_end + 1],
                bytes[frame_end + 2],
                bytes[frame_end + 3],
            ]);
            if crc32(&bytes[pos..frame_end]) != stored {
                break; // torn / corrupt tail — stop replay here
            }
            let payload = &bytes[pos + 5..frame_end];
            match tag {
                TAG_PAGE => {
                    if payload.len() != 16 + PAGE_SIZE {
                        break;
                    }
                    let mut a = [0u8; 8];
                    a.copy_from_slice(&payload[0..8]);
                    let txn = u64::from_le_bytes(a);
                    a.copy_from_slice(&payload[8..16]);
                    let page = PageId(u64::from_le_bytes(a));
                    records.push(WalRecord::PageImage {
                        txn,
                        page,
                        image: payload[16..].to_vec(),
                    });
                }
                TAG_COMMIT => {
                    if payload.len() != 8 {
                        break;
                    }
                    let mut a = [0u8; 8];
                    a.copy_from_slice(payload);
                    let txn = u64::from_le_bytes(a);
                    if last_commit.is_some_and(|last| txn <= last) {
                        // Duplicate or out-of-order commit record: salvage
                        // the prefix before it, never apply it.
                        WAL_BAD_COMMIT.inc();
                        break;
                    }
                    last_commit = Some(txn);
                    records.push(WalRecord::Commit { txn });
                }
                _ => break, // unknown tag — treat as torn tail
            }
            pos = frame_end + 4;
        }
        Ok(records)
    }

    /// Replay helper: returns the page images of *committed* transactions in
    /// log order, plus the set of committed transaction ids.
    #[allow(clippy::type_complexity)]
    pub fn committed_images(&mut self) -> Result<(Vec<(PageId, PageImage)>, HashSet<u64>)> {
        let records = self.records()?;
        let committed: HashSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        let images = records
            .into_iter()
            .filter_map(|r| match r {
                WalRecord::PageImage { txn, page, image } if committed.contains(&txn) => {
                    Some((page, image))
                }
                _ => None,
            })
            .collect();
        Ok((images, committed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(fill: u8) -> [u8; PAGE_SIZE] {
        [fill; PAGE_SIZE]
    }

    #[test]
    fn log_and_replay_committed_only() {
        let mut wal = Wal::in_memory();
        wal.log_page(1, PageId(3), &image(0xAA)).unwrap();
        wal.log_commit(1).unwrap();
        wal.log_page(2, PageId(4), &image(0xBB)).unwrap();
        // txn 2 never commits.
        let (images, committed) = wal.committed_images().unwrap();
        assert_eq!(committed.len(), 1);
        assert!(committed.contains(&1));
        assert_eq!(images.len(), 1);
        assert_eq!(images[0].0, PageId(3));
        assert!(images[0].1.iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn torn_tail_is_discarded() {
        let mut wal = Wal::in_memory();
        wal.log_page(1, PageId(1), &image(1)).unwrap();
        wal.log_commit(1).unwrap();
        wal.log_page(2, PageId(2), &image(2)).unwrap();
        wal.log_commit(2).unwrap();
        let n = wal.len().unwrap();
        wal.backend_mut().set_len(n - 3).unwrap(); // rip the last commit record
        let (images, committed) = wal.committed_images().unwrap();
        assert!(committed.contains(&1));
        assert!(!committed.contains(&2));
        assert_eq!(images.len(), 1);
    }

    #[test]
    fn corrupt_middle_stops_replay() {
        let mut wal = Wal::in_memory();
        wal.log_page(1, PageId(1), &image(1)).unwrap();
        wal.log_commit(1).unwrap();
        wal.log_page(2, PageId(2), &image(2)).unwrap();
        wal.log_commit(2).unwrap();
        // Corrupt the first record.
        let mut b = [0u8; 1];
        wal.backend_mut().read_at(10, &mut b).unwrap();
        b[0] ^= 0xFF;
        wal.backend_mut().write_at(10, &b).unwrap();
        let (images, committed) = wal.committed_images().unwrap();
        assert!(images.is_empty());
        assert!(committed.is_empty());
    }

    #[test]
    fn truncate_resets() {
        let mut wal = Wal::in_memory();
        wal.log_commit(1).unwrap();
        assert!(!wal.is_empty().unwrap());
        wal.truncate().unwrap();
        assert!(wal.is_empty().unwrap());
        assert!(wal.records().unwrap().is_empty());
    }

    #[test]
    fn len_and_is_empty_are_read_only() {
        // &self receivers: stats must be callable through a shared
        // reference, proving they cannot move any write cursor.
        let wal = Wal::in_memory();
        let stats = |w: &Wal| (w.len().unwrap(), w.is_empty().unwrap());
        assert_eq!(stats(&wal), (MAGIC.len() as u64, true));
    }

    #[test]
    fn append_after_len_query_lands_at_the_end() {
        let mut wal = Wal::in_memory();
        wal.log_commit(1).unwrap();
        let before = wal.len().unwrap();
        let _ = wal.is_empty().unwrap();
        wal.log_commit(2).unwrap();
        assert!(wal.len().unwrap() > before);
        assert_eq!(wal.records().unwrap().len(), 2);
    }

    #[test]
    fn file_backed_wal_reopens() {
        let dir = std::env::temp_dir().join(format!("rcmo-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.log_page(9, PageId(7), &image(7)).unwrap();
            wal.log_commit(9).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            let (images, committed) = wal.committed_images().unwrap();
            assert!(committed.contains(&9));
            assert_eq!(images.len(), 1);
            // Appending after reopen lands at the end.
            wal.log_commit(10).unwrap();
            let recs = wal.records().unwrap();
            assert_eq!(recs.len(), 3);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Builds a raw commit frame (tag 'C') for hand-crafted logs.
    fn raw_commit_frame(txn: u64) -> Vec<u8> {
        let payload = txn.to_le_bytes();
        let mut framed = Vec::with_capacity(payload.len() + 9);
        framed.push(TAG_COMMIT);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&payload);
        let sum = crc32(&framed);
        framed.extend_from_slice(&sum.to_le_bytes());
        framed
    }

    #[test]
    fn repeated_commit_is_idempotent() {
        let mut wal = Wal::in_memory();
        wal.log_page(7, PageId(1), &image(1)).unwrap();
        wal.log_commit(7).unwrap();
        let len = wal.len().unwrap();
        // The durability hook already logged txn 7; a second commit of the
        // same txn must not write a second record.
        wal.log_commit(7).unwrap();
        assert_eq!(wal.len().unwrap(), len);
        assert_eq!(wal.records().unwrap().len(), 2);
    }

    #[test]
    fn lower_commit_id_is_rejected() {
        let mut wal = Wal::in_memory();
        wal.log_commit(9).unwrap();
        assert!(matches!(wal.log_commit(4), Err(StorageError::Internal(_))));
        // The log is untouched by the rejected append.
        assert_eq!(wal.records().unwrap().len(), 1);
        // Truncation resets the watermark.
        wal.truncate().unwrap();
        wal.log_commit(4).unwrap();
    }

    #[test]
    fn reopened_wal_resumes_the_commit_watermark() {
        let store = crate::backend::MemBackend::new();
        let mut wal = Wal::from_backend(Box::new(store)).unwrap();
        wal.log_commit(11).unwrap();
        let mut bytes = vec![0u8; wal.len().unwrap() as usize];
        wal.backend_mut().read_at(0, &mut bytes).unwrap();
        let mut wal2 =
            Wal::from_backend(Box::new(crate::backend::MemBackend::from_bytes(bytes))).unwrap();
        assert!(matches!(wal2.log_commit(5), Err(StorageError::Internal(_))));
        wal2.log_commit(12).unwrap();
    }

    #[test]
    fn duplicate_commit_record_ends_replay_prefix() {
        let mut wal = Wal::in_memory();
        wal.log_page(1, PageId(1), &image(1)).unwrap();
        wal.log_commit(1).unwrap();
        // Damage: a byte-for-byte duplicate commit record for txn 1, then a
        // later legitimate-looking transaction.
        let end = wal.len().unwrap();
        let mut tail = raw_commit_frame(1);
        tail.extend_from_slice(&raw_commit_frame(2));
        wal.backend_mut().write_at(end, &tail).unwrap();
        let records = wal.records().unwrap();
        assert_eq!(records.len(), 2, "replay stops at the duplicate");
        let (_, committed) = wal.committed_images().unwrap();
        assert!(committed.contains(&1));
        assert!(!committed.contains(&2), "nothing after the damage applies");
    }

    #[test]
    fn non_monotonic_commit_record_ends_replay_prefix() {
        let mut wal = Wal::in_memory();
        wal.log_commit(5).unwrap();
        let end = wal.len().unwrap();
        wal.backend_mut()
            .write_at(end, &raw_commit_frame(3))
            .unwrap();
        assert_eq!(wal.records().unwrap().len(), 1);
    }

    #[test]
    fn corrupt_magic_is_quarantined_aside() {
        let dir = std::env::temp_dir().join(format!("rcmo-wal-q-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.wal");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, b"NOPE plus garbage").unwrap();
        assert!(Wal::open(&path).is_err(), "strict open refuses bad magic");
        let (mut wal, quarantined) = Wal::open_or_quarantine(&path).unwrap();
        let aside = quarantined.expect("bad log moved aside");
        assert!(aside.exists());
        assert_eq!(std::fs::read(&aside).unwrap(), b"NOPE plus garbage");
        assert!(wal.is_empty().unwrap());
        wal.log_commit(1).unwrap();
        assert_eq!(wal.records().unwrap().len(), 1);
        // A healthy log is not quarantined.
        drop(wal);
        let (wal2, q2) = Wal::open_or_quarantine(&path).unwrap();
        assert!(q2.is_none());
        assert!(!wal2.is_empty().unwrap());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&aside);
    }
}
