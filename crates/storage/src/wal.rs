//! Redo-only write-ahead log.
//!
//! The WAL carries *after-images* of every page a transaction dirtied,
//! followed by a commit record. Records are individually checksummed so a
//! torn tail (crash mid-append) is detected and discarded; everything before
//! the first bad record that belongs to a committed transaction is replayed.
//!
//! On-disk layout:
//!
//! ```text
//! magic "RCWL"
//! record := tag u8 | len u32 | payload | crc32(tag ‖ len ‖ payload) u32
//! tag 'P': payload = txn u64 | page u64 | PAGE_SIZE image bytes
//! tag 'C': payload = txn u64
//! ```

use crate::error::{Result, StorageError};
use crate::page::{crc32, PageId, PAGE_SIZE};
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"RCWL";

/// A raw page after-image carried by the log.
pub type PageImage = Vec<u8>;
const TAG_PAGE: u8 = b'P';
const TAG_COMMIT: u8 = b'C';

/// A decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// After-image of a page written by a transaction.
    PageImage {
        /// The writing transaction.
        txn: u64,
        /// The page the image belongs to.
        page: PageId,
        /// The sealed page image.
        image: Vec<u8>,
    },
    /// Transaction commit marker.
    Commit {
        /// The committing transaction.
        txn: u64,
    },
}

/// The write-ahead log: an append-only file (or in-memory buffer).
#[derive(Debug)]
pub enum Wal {
    /// File-backed log.
    File {
        /// The open log file.
        file: File,
    },
    /// In-memory log (ephemeral databases; replay still works in-process).
    Memory {
        /// The raw log bytes (starting with the magic).
        buf: Vec<u8>,
    },
}

impl Wal {
    /// Opens (or creates) a file-backed WAL at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            file.write_all(MAGIC)?;
            file.sync_data()?;
        } else {
            let mut magic = [0u8; 4];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut magic)?;
            if &magic != MAGIC {
                return Err(StorageError::BadHeader("WAL magic mismatch".to_string()));
            }
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Wal::File { file })
    }

    /// Creates an in-memory WAL.
    pub fn in_memory() -> Self {
        Wal::Memory {
            buf: MAGIC.to_vec(),
        }
    }

    fn append(&mut self, tag: u8, payload: &[u8]) -> Result<()> {
        let len = payload.len() as u32;
        let mut framed = Vec::with_capacity(payload.len() + 9);
        framed.push(tag);
        framed.extend_from_slice(&len.to_le_bytes());
        framed.extend_from_slice(payload);
        let sum = crc32(&framed);
        framed.extend_from_slice(&sum.to_le_bytes());
        match self {
            Wal::File { file } => {
                file.write_all(&framed)?;
            }
            Wal::Memory { buf } => buf.extend_from_slice(&framed),
        }
        Ok(())
    }

    /// Appends a page after-image for `txn`.
    pub fn log_page(&mut self, txn: u64, page: PageId, image: &[u8; PAGE_SIZE]) -> Result<()> {
        static LAT: rcmo_obs::LazyHistogram =
            rcmo_obs::LazyHistogram::new("storage.wal.append.us", rcmo_obs::bounds::LATENCY_US);
        let _t = LAT.start_timer();
        let mut payload = Vec::with_capacity(16 + PAGE_SIZE);
        payload.extend_from_slice(&txn.to_le_bytes());
        payload.extend_from_slice(&page.0.to_le_bytes());
        payload.extend_from_slice(image);
        self.append(TAG_PAGE, &payload)
    }

    /// Appends a commit marker for `txn`.
    pub fn log_commit(&mut self, txn: u64) -> Result<()> {
        self.append(TAG_COMMIT, &txn.to_le_bytes())
    }

    /// Forces the log to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        static LAT: rcmo_obs::LazyHistogram =
            rcmo_obs::LazyHistogram::new("storage.wal.sync.us", rcmo_obs::bounds::LATENCY_US);
        let _t = LAT.start_timer();
        if let Wal::File { file } = self {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Resets the log to just the magic (after a checkpoint has made all
    /// committed images durable in the data file).
    pub fn truncate(&mut self) -> Result<()> {
        match self {
            Wal::File { file } => {
                file.set_len(MAGIC.len() as u64)?;
                file.seek(SeekFrom::End(0))?;
                file.sync_data()?;
            }
            Wal::Memory { buf } => {
                buf.truncate(MAGIC.len());
            }
        }
        Ok(())
    }

    /// Byte length of the log (including the magic).
    pub fn len(&mut self) -> Result<u64> {
        Ok(match self {
            Wal::File { file } => file.metadata()?.len(),
            Wal::Memory { buf } => buf.len() as u64,
        })
    }

    /// `true` if the log holds no records.
    pub fn is_empty(&mut self) -> Result<bool> {
        Ok(self.len()? <= MAGIC.len() as u64)
    }

    /// Decodes all intact records, stopping silently at a torn tail.
    pub fn records(&mut self) -> Result<Vec<WalRecord>> {
        let bytes = match self {
            Wal::File { file } => {
                let mut buf = Vec::new();
                file.seek(SeekFrom::Start(0))?;
                file.read_to_end(&mut buf)?;
                file.seek(SeekFrom::End(0))?;
                buf
            }
            Wal::Memory { buf } => buf.clone(),
        };
        if bytes.len() < MAGIC.len() || &bytes[..4] != MAGIC {
            return Err(StorageError::BadHeader("WAL magic mismatch".to_string()));
        }
        let mut records = Vec::new();
        let mut pos = MAGIC.len();
        while pos < bytes.len() {
            // tag + len + crc is the minimum frame.
            if pos + 9 > bytes.len() {
                break; // torn tail
            }
            let tag = bytes[pos];
            let len = u32::from_le_bytes([
                bytes[pos + 1],
                bytes[pos + 2],
                bytes[pos + 3],
                bytes[pos + 4],
            ]) as usize;
            let frame_end = pos + 5 + len;
            if frame_end + 4 > bytes.len() {
                break; // torn tail
            }
            let stored = u32::from_le_bytes([
                bytes[frame_end],
                bytes[frame_end + 1],
                bytes[frame_end + 2],
                bytes[frame_end + 3],
            ]);
            if crc32(&bytes[pos..frame_end]) != stored {
                break; // torn / corrupt tail — stop replay here
            }
            let payload = &bytes[pos + 5..frame_end];
            match tag {
                TAG_PAGE => {
                    if payload.len() != 16 + PAGE_SIZE {
                        break;
                    }
                    let mut a = [0u8; 8];
                    a.copy_from_slice(&payload[0..8]);
                    let txn = u64::from_le_bytes(a);
                    a.copy_from_slice(&payload[8..16]);
                    let page = PageId(u64::from_le_bytes(a));
                    records.push(WalRecord::PageImage {
                        txn,
                        page,
                        image: payload[16..].to_vec(),
                    });
                }
                TAG_COMMIT => {
                    if payload.len() != 8 {
                        break;
                    }
                    let mut a = [0u8; 8];
                    a.copy_from_slice(payload);
                    records.push(WalRecord::Commit {
                        txn: u64::from_le_bytes(a),
                    });
                }
                _ => break, // unknown tag — treat as torn tail
            }
            pos = frame_end + 4;
        }
        Ok(records)
    }

    /// Replay helper: returns the page images of *committed* transactions in
    /// log order, plus the set of committed transaction ids.
    #[allow(clippy::type_complexity)]
    pub fn committed_images(&mut self) -> Result<(Vec<(PageId, PageImage)>, HashSet<u64>)> {
        let records = self.records()?;
        let committed: HashSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        let images = records
            .into_iter()
            .filter_map(|r| match r {
                WalRecord::PageImage { txn, page, image } if committed.contains(&txn) => {
                    Some((page, image))
                }
                _ => None,
            })
            .collect();
        Ok((images, committed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(fill: u8) -> [u8; PAGE_SIZE] {
        [fill; PAGE_SIZE]
    }

    #[test]
    fn log_and_replay_committed_only() {
        let mut wal = Wal::in_memory();
        wal.log_page(1, PageId(3), &image(0xAA)).unwrap();
        wal.log_commit(1).unwrap();
        wal.log_page(2, PageId(4), &image(0xBB)).unwrap();
        // txn 2 never commits.
        let (images, committed) = wal.committed_images().unwrap();
        assert_eq!(committed.len(), 1);
        assert!(committed.contains(&1));
        assert_eq!(images.len(), 1);
        assert_eq!(images[0].0, PageId(3));
        assert!(images[0].1.iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn torn_tail_is_discarded() {
        let mut wal = Wal::in_memory();
        wal.log_page(1, PageId(1), &image(1)).unwrap();
        wal.log_commit(1).unwrap();
        wal.log_page(2, PageId(2), &image(2)).unwrap();
        wal.log_commit(2).unwrap();
        if let Wal::Memory { buf } = &mut wal {
            let n = buf.len();
            buf.truncate(n - 3); // rip the last commit record
        }
        let (images, committed) = wal.committed_images().unwrap();
        assert!(committed.contains(&1));
        assert!(!committed.contains(&2));
        assert_eq!(images.len(), 1);
    }

    #[test]
    fn corrupt_middle_stops_replay() {
        let mut wal = Wal::in_memory();
        wal.log_page(1, PageId(1), &image(1)).unwrap();
        wal.log_commit(1).unwrap();
        wal.log_page(2, PageId(2), &image(2)).unwrap();
        wal.log_commit(2).unwrap();
        if let Wal::Memory { buf } = &mut wal {
            buf[10] ^= 0xFF; // corrupt the first record
        }
        let (images, committed) = wal.committed_images().unwrap();
        assert!(images.is_empty());
        assert!(committed.is_empty());
    }

    #[test]
    fn truncate_resets() {
        let mut wal = Wal::in_memory();
        wal.log_commit(1).unwrap();
        assert!(!wal.is_empty().unwrap());
        wal.truncate().unwrap();
        assert!(wal.is_empty().unwrap());
        assert!(wal.records().unwrap().is_empty());
    }

    #[test]
    fn file_backed_wal_reopens() {
        let dir = std::env::temp_dir().join(format!("rcmo-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.log_page(9, PageId(7), &image(7)).unwrap();
            wal.log_commit(9).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            let (images, committed) = wal.committed_images().unwrap();
            assert!(committed.contains(&9));
            assert_eq!(images.len(), 1);
            // Appending after reopen lands at the end.
            wal.log_commit(10).unwrap();
            let recs = wal.records().unwrap();
            assert_eq!(recs.len(), 3);
        }
        let _ = std::fs::remove_file(&path);
    }
}
