use super::*;
use crate::catalog::{Column, ColumnType};

fn media_schema() -> Schema {
    Schema::new(vec![
        Column::new("ID", ColumnType::U64),
        Column::new("FLD_NAME", ColumnType::Text),
        Column::new("FLD_MIME", ColumnType::Text),
        Column::new("FLD_DATA", ColumnType::Blob),
    ])
    .unwrap()
}

fn tmp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcmo-db-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{tag}.db"));
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(wal_path_for(&p));
    p
}

#[test]
fn create_insert_get() {
    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    tx.create_table("T", media_schema()).unwrap();
    let id = tx
        .insert(
            "T",
            vec![
                RowValue::Null,
                RowValue::Text("a".into()),
                RowValue::Text("image/ct".into()),
                RowValue::Null,
            ],
        )
        .unwrap();
    assert_eq!(id, 1);
    let row = tx.get("T", id).unwrap().unwrap();
    assert_eq!(row[1], RowValue::Text("a".into()));
    assert_eq!(tx.get("T", 99).unwrap(), None);
    tx.commit().unwrap();
}

#[test]
fn auto_ids_are_monotone_and_explicit_ids_respected() {
    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    tx.create_table("T", media_schema()).unwrap();
    let a = tx
        .insert(
            "T",
            vec![
                RowValue::Null,
                RowValue::Text("a".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
    let b = tx
        .insert(
            "T",
            vec![
                RowValue::U64(10),
                RowValue::Text("b".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
    let c = tx
        .insert(
            "T",
            vec![
                RowValue::Null,
                RowValue::Text("c".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
    assert_eq!((a, b), (1, 10));
    assert_eq!(c, 11, "auto id resumes after the explicit one");
    assert!(matches!(
        tx.insert(
            "T",
            vec![
                RowValue::U64(10),
                RowValue::Text("dup".into()),
                RowValue::Null,
                RowValue::Null
            ]
        ),
        Err(StorageError::DuplicateKey(10))
    ));
    // The failed insert must not leave a ghost row.
    assert_eq!(tx.count("T").unwrap(), 3);
    tx.commit().unwrap();
}

#[test]
fn update_and_delete() {
    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    tx.create_table("T", media_schema()).unwrap();
    let id = tx
        .insert(
            "T",
            vec![
                RowValue::Null,
                RowValue::Text("x".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
    tx.update(
        "T",
        id,
        vec![
            RowValue::Null,
            RowValue::Text("y".into()),
            RowValue::Text("m".into()),
            RowValue::Null,
        ],
    )
    .unwrap();
    assert_eq!(
        tx.get("T", id).unwrap().unwrap()[1],
        RowValue::Text("y".into())
    );
    let old = tx.delete("T", id).unwrap();
    assert_eq!(old[1], RowValue::Text("y".into()));
    assert_eq!(tx.get("T", id).unwrap(), None);
    assert!(tx.delete("T", id).is_err());
    tx.commit().unwrap();
}

#[test]
fn update_cannot_change_pk() {
    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    tx.create_table("T", media_schema()).unwrap();
    let id = tx
        .insert(
            "T",
            vec![
                RowValue::Null,
                RowValue::Text("x".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
    assert!(tx
        .update(
            "T",
            id,
            vec![
                RowValue::U64(id + 1),
                RowValue::Text("y".into()),
                RowValue::Null,
                RowValue::Null
            ]
        )
        .is_err());
    tx.commit().unwrap();
}

#[test]
fn scan_and_range_are_key_ordered() {
    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    tx.create_table("T", media_schema()).unwrap();
    for id in [5u64, 1, 9, 3, 7] {
        tx.insert(
            "T",
            vec![
                RowValue::U64(id),
                RowValue::Text(format!("n{id}")),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
    }
    let rows = tx.scan("T").unwrap();
    let ids: Vec<u64> = rows.iter().map(|r| r[0].as_u64().unwrap()).collect();
    assert_eq!(ids, vec![1, 3, 5, 7, 9]);
    let mid = tx.range("T", 3, 7).unwrap();
    assert_eq!(mid.len(), 3);
    tx.commit().unwrap();
}

#[test]
fn unknown_table_errors() {
    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    assert!(tx.get("NOPE", 1).is_err());
    assert!(tx.insert("NOPE", vec![RowValue::Null]).is_err());
    assert!(tx.drop_table("NOPE").is_err());
    tx.create_table("T", media_schema()).unwrap();
    assert!(matches!(
        tx.create_table("T", media_schema()),
        Err(StorageError::Catalog(_))
    ));
}

#[test]
fn blob_in_row_roundtrip() {
    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    tx.create_table("T", media_schema()).unwrap();
    let payload: Vec<u8> = (0..50_000).map(|i| (i % 251) as u8).collect();
    let blob = tx.put_blob(&payload).unwrap();
    let id = tx
        .insert(
            "T",
            vec![
                RowValue::Null,
                RowValue::Text("ct".into()),
                RowValue::Text("image".into()),
                RowValue::Blob(blob),
            ],
        )
        .unwrap();
    let row = tx.get("T", id).unwrap().unwrap();
    let got = tx.get_blob(row[3].as_blob().unwrap()).unwrap();
    assert_eq!(got, payload);
    assert_eq!(tx.blob_len(blob).unwrap(), 50_000);
    let prefix = tx.get_blob_prefix(blob, 100).unwrap();
    assert_eq!(prefix, &payload[..100]);
    tx.commit().unwrap();
}

#[test]
fn rollback_on_drop_discards_everything() {
    let db = Database::in_memory().unwrap();
    {
        let mut tx = db.begin().unwrap();
        tx.create_table("T", media_schema()).unwrap();
        tx.insert(
            "T",
            vec![
                RowValue::Null,
                RowValue::Text("x".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
        // dropped without commit
    }
    let mut tx = db.begin().unwrap();
    assert!(tx.get("T", 1).is_err(), "table creation rolled back");
    assert!(tx.table_names().is_empty());
}

#[test]
fn explicit_rollback() {
    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    tx.create_table("T", media_schema()).unwrap();
    tx.commit().unwrap();
    let mut tx = db.begin().unwrap();
    tx.insert(
        "T",
        vec![
            RowValue::Null,
            RowValue::Text("x".into()),
            RowValue::Null,
            RowValue::Null,
        ],
    )
    .unwrap();
    tx.rollback();
    let mut tx = db.begin().unwrap();
    assert_eq!(tx.count("T").unwrap(), 0);
}

#[test]
fn persistence_across_reopen() {
    let path = tmp_path("persist");
    {
        let db = Database::open(&path).unwrap();
        let mut tx = db.begin().unwrap();
        tx.create_table("T", media_schema()).unwrap();
        for i in 0..200u64 {
            tx.insert(
                "T",
                vec![
                    RowValue::Null,
                    RowValue::Text(format!("row{i}")),
                    RowValue::Null,
                    RowValue::Null,
                ],
            )
            .unwrap();
        }
        tx.commit().unwrap();
    }
    {
        let db = Database::open(&path).unwrap();
        let mut tx = db.begin().unwrap();
        assert_eq!(tx.count("T").unwrap(), 200);
        assert_eq!(
            tx.get("T", 150).unwrap().unwrap()[1],
            RowValue::Text("row149".into())
        );
        // Ids continue after reopen.
        let id = tx
            .insert(
                "T",
                vec![
                    RowValue::Null,
                    RowValue::Text("new".into()),
                    RowValue::Null,
                    RowValue::Null,
                ],
            )
            .unwrap();
        assert_eq!(id, 201);
        tx.commit().unwrap();
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_path_for(&path));
}

#[test]
fn recovery_replays_wal_after_crash() {
    let path = tmp_path("recovery");
    {
        let db = Database::open(&path).unwrap();
        let mut tx = db.begin().unwrap();
        tx.create_table("T", media_schema()).unwrap();
        tx.commit().unwrap();
        let mut tx = db.begin().unwrap();
        tx.insert(
            "T",
            vec![
                RowValue::Null,
                RowValue::Text("survivor".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
        // Crash right after the WAL sync: data file not updated.
        tx.simulate_crash_after_wal().unwrap();
        // Within the *same* process the data file is stale:
        let mut tx = db.begin().unwrap();
        assert_eq!(tx.count("T").unwrap(), 0, "data file is pre-commit");
    }
    {
        // Reopen: recovery must replay the committed transaction.
        let db = Database::open(&path).unwrap();
        let mut tx = db.begin().unwrap();
        assert_eq!(tx.count("T").unwrap(), 1);
        assert_eq!(
            tx.get("T", 1).unwrap().unwrap()[1],
            RowValue::Text("survivor".into())
        );
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_path_for(&path));
}

#[test]
fn torn_wal_tail_loses_only_uncommitted() {
    let path = tmp_path("torn");
    {
        let db = Database::open(&path).unwrap();
        let mut tx = db.begin().unwrap();
        tx.create_table("T", media_schema()).unwrap();
        tx.insert(
            "T",
            vec![
                RowValue::Null,
                RowValue::Text("committed".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
        tx.simulate_crash_after_wal().unwrap();
    }
    // Rip bytes off the WAL tail: the commit record is damaged, so the
    // whole transaction must vanish on recovery.
    let wal = wal_path_for(&path);
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();
    {
        let db = Database::open(&path).unwrap();
        let tx = db.begin().unwrap();
        assert!(tx.table_names().is_empty(), "uncommitted txn discarded");
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal);
}

#[test]
fn drop_table_frees_space_for_reuse() {
    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    tx.create_table("A", media_schema()).unwrap();
    for i in 0..500u64 {
        tx.insert(
            "A",
            vec![
                RowValue::Null,
                RowValue::Text(format!("{i}")),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
    }
    tx.drop_table("A").unwrap();
    assert!(tx.table_names().is_empty());
    tx.create_table("B", media_schema()).unwrap();
    let id = tx
        .insert(
            "B",
            vec![
                RowValue::Null,
                RowValue::Text("fresh".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
    assert_eq!(
        tx.get("B", id).unwrap().unwrap()[1],
        RowValue::Text("fresh".into())
    );
    tx.commit().unwrap();
}

#[test]
fn multiple_tables_are_independent() {
    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    tx.create_table("IMAGE_OBJECTS_TABLE", media_schema())
        .unwrap();
    tx.create_table("AUDIO_OBJECTS_TABLE", media_schema())
        .unwrap();
    tx.insert(
        "IMAGE_OBJECTS_TABLE",
        vec![
            RowValue::Null,
            RowValue::Text("img".into()),
            RowValue::Null,
            RowValue::Null,
        ],
    )
    .unwrap();
    assert_eq!(tx.count("IMAGE_OBJECTS_TABLE").unwrap(), 1);
    assert_eq!(tx.count("AUDIO_OBJECTS_TABLE").unwrap(), 0);
    assert_eq!(
        tx.table_names(),
        vec![
            "AUDIO_OBJECTS_TABLE".to_string(),
            "IMAGE_OBJECTS_TABLE".to_string()
        ]
    );
    tx.commit().unwrap();
}

#[test]
fn large_table_spans_many_pages() {
    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    tx.create_table("T", media_schema()).unwrap();
    let n = 3_000u64;
    for i in 0..n {
        tx.insert(
            "T",
            vec![
                RowValue::Null,
                RowValue::Text(format!("record-{i:05}")),
                RowValue::Text("media/type".into()),
                RowValue::Null,
            ],
        )
        .unwrap();
    }
    assert_eq!(tx.count("T").unwrap(), n as usize);
    for i in (1..=n).step_by(131) {
        assert_eq!(
            tx.get("T", i).unwrap().unwrap()[1],
            RowValue::Text(format!("record-{:05}", i - 1))
        );
    }
    tx.commit().unwrap();
}

#[test]
fn blob_survives_reopen() {
    let path = tmp_path("blob");
    let payload: Vec<u8> = (0..123_456).map(|i| (i * 7 % 256) as u8).collect();
    let blob_id;
    {
        let db = Database::open(&path).unwrap();
        let mut tx = db.begin().unwrap();
        blob_id = tx.put_blob(&payload).unwrap();
        tx.commit().unwrap();
    }
    {
        let db = Database::open(&path).unwrap();
        let mut tx = db.begin().unwrap();
        assert_eq!(tx.get_blob(blob_id).unwrap(), payload);
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_path_for(&path));
}

#[test]
fn schema_is_persisted() {
    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    tx.create_table("T", media_schema()).unwrap();
    let s = tx.schema("T").unwrap();
    assert_eq!(s.arity(), 4);
    assert_eq!(s.columns()[3].name, "FLD_DATA");
    assert_eq!(s.columns()[3].ty, ColumnType::Blob);
}

#[test]
fn pool_overflow_grows_and_commits() {
    // A transaction whose dirty set outgrows a tiny pool no longer aborts:
    // the write set grows past capacity (no-steal, no-force), the overflow
    // counter records the pressure, and the commit lands intact.
    let db = Database::in_memory_with_pool(8).unwrap();
    {
        let mut tx = db.begin().unwrap();
        tx.create_table("T", media_schema()).unwrap();
        tx.commit().unwrap();
    }
    {
        let mut tx = db.begin().unwrap();
        for i in 0..2_000u64 {
            tx.insert(
                "T",
                vec![
                    RowValue::Null,
                    RowValue::Text(format!("row {i} with some padding text")),
                    RowValue::Null,
                    RowValue::Null,
                ],
            )
            .unwrap();
        }
        tx.commit().unwrap();
    }
    assert!(
        db.pool_stats().overflows > 0,
        "an 8-frame pool must report overflow pressure"
    );
    let mut tx = db.begin().unwrap();
    assert_eq!(
        tx.count("T").unwrap(),
        2_000,
        "oversized txn fully committed"
    );
}

#[test]
fn commit_after_crash_hook_cannot_duplicate_txn() {
    // A commit following `simulate_crash_after_wal` must not replay the
    // staged transaction alongside its own: the forced pre-append fold
    // clears the staged WAL records before the new commit appends.
    let path = tmp_path("hook-then-commit");
    let db = Database::open(&path).unwrap();
    {
        let mut tx = db.begin().unwrap();
        tx.create_table("T", media_schema()).unwrap();
        tx.insert(
            "T",
            vec![
                RowValue::U64(1),
                RowValue::Text("a".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
        tx.commit().unwrap();
    }
    {
        // Staged-but-not-committed: WAL records exist, state is rolled back.
        let mut tx = db.begin().unwrap();
        tx.insert(
            "T",
            vec![
                RowValue::U64(2),
                RowValue::Text("b".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
        tx.simulate_crash_after_wal().unwrap();
    }
    {
        let mut tx = db.begin().unwrap();
        tx.insert(
            "T",
            vec![
                RowValue::U64(3),
                RowValue::Text("c".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
        tx.commit().unwrap();
    }
    fn expect_keys(tx: &mut Transaction<'_>) {
        let keys: Vec<u64> = tx
            .scan("T")
            .unwrap()
            .into_iter()
            .map(|row| match row[0] {
                RowValue::U64(k) => k,
                ref v => panic!("non-u64 key {v:?}"),
            })
            .collect();
        assert_eq!(keys, vec![1, 3], "staged txn 2 must not resurrect");
    }
    expect_keys(&mut db.begin().unwrap());
    drop(db);
    let db = Database::open(&path).unwrap();
    expect_keys(&mut db.begin().unwrap());
    let report = db.check_integrity();
    assert!(
        report.is_ok(),
        "integrity after hook+commit+reopen: {report:?}"
    );
}

#[test]
fn snapshot_reader_does_not_block_writer() {
    let db = Database::in_memory().unwrap();
    {
        let mut tx = db.begin().unwrap();
        tx.create_table("T", media_schema()).unwrap();
        tx.insert(
            "T",
            vec![
                RowValue::U64(1),
                RowValue::Text("old".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
        tx.commit().unwrap();
    }
    let reader = db.begin_read().unwrap();
    assert_eq!(reader.count("T").unwrap(), 1);
    // The writer proceeds while the snapshot is held — same thread, so any
    // blocking here would deadlock the test.
    {
        let mut tx = db.begin().unwrap();
        tx.insert(
            "T",
            vec![
                RowValue::U64(2),
                RowValue::Text("new".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
        tx.commit().unwrap();
    }
    assert_eq!(reader.count("T").unwrap(), 1, "snapshot is frozen");
    assert!(reader.get("T", 2).unwrap().is_none());
    let fresh = db.begin_read().unwrap();
    assert_eq!(fresh.count("T").unwrap(), 2, "new snapshot sees the commit");
    drop(reader);
    drop(fresh);
    db.checkpoint().unwrap();
}

#[test]
fn live_reader_defers_checkpoint_without_deadlock() {
    // With `checkpoint_commits: 1` every commit wants to checkpoint; a live
    // older snapshot must make the commit skip (not block on) the fold.
    let opts = DbOptions {
        checkpoint_commits: 1,
        ..DbOptions::default()
    };
    let db = Database::in_memory_with_options(opts).unwrap();
    {
        let mut tx = db.begin().unwrap();
        tx.create_table("T", media_schema()).unwrap();
        tx.commit().unwrap();
    }
    let reader = db.begin_read().unwrap();
    for i in 0..5u64 {
        let mut tx = db.begin().unwrap();
        tx.insert(
            "T",
            vec![
                RowValue::U64(i + 1),
                RowValue::Text("x".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
        tx.commit().unwrap();
    }
    assert_eq!(reader.count("T").unwrap(), 0, "snapshot predates all rows");
    drop(reader);
    // With the old snapshot gone the deferred fold can finally run.
    db.checkpoint().unwrap();
    let mut tx = db.begin().unwrap();
    assert_eq!(tx.count("T").unwrap(), 5);
}

#[test]
fn forced_fold_blocks_commit_until_old_readers_release() {
    // After the crash hook stages WAL records, the next commit must fold
    // them out before appending — never append behind the orphaned tail.
    // With a snapshot reader pinning a version older than the fold base,
    // the commit therefore blocks until the reader is released.
    let db = Database::in_memory().unwrap();
    {
        let mut tx = db.begin().unwrap();
        tx.create_table("T", media_schema()).unwrap();
        tx.commit().unwrap();
    }
    let reader = db.begin_read().unwrap();
    {
        // Bump the committed version past the reader's snapshot.
        let mut tx = db.begin().unwrap();
        tx.insert(
            "T",
            vec![
                RowValue::U64(1),
                RowValue::Text("committed".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
        tx.commit().unwrap();
    }
    {
        let mut tx = db.begin().unwrap();
        tx.insert(
            "T",
            vec![
                RowValue::U64(2),
                RowValue::Text("staged".into()),
                RowValue::Null,
                RowValue::Null,
            ],
        )
        .unwrap();
        tx.simulate_crash_after_wal().unwrap();
    }
    std::thread::scope(|s| {
        let t = s.spawn(|| {
            let mut tx = db.begin().unwrap();
            tx.insert(
                "T",
                vec![
                    RowValue::U64(3),
                    RowValue::Text("after".into()),
                    RowValue::Null,
                    RowValue::Null,
                ],
            )
            .unwrap();
            tx.commit().unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !t.is_finished(),
            "commit must wait for the forced fold, not append past it"
        );
        drop(reader);
        t.join().unwrap();
    });
    let mut tx = db.begin().unwrap();
    let keys: Vec<u64> = tx
        .scan("T")
        .unwrap()
        .into_iter()
        .map(|row| row[0].as_u64().unwrap())
        .collect();
    assert_eq!(keys, vec![1, 3], "staged txn folded away, commit landed");
    drop(tx);
    assert!(db.check_integrity().is_ok());
}

#[test]
fn post_publish_checkpoint_failure_reports_committed() {
    // A checkpoint failure after the transaction published must not read
    // as "not committed": the dedicated variant says the commit stands.
    let db = Database::in_memory_with_options(DbOptions::eager()).unwrap();
    {
        let mut tx = db.begin().unwrap();
        tx.create_table("T", media_schema()).unwrap();
        tx.commit().unwrap();
    }
    let mut tx = db.begin().unwrap();
    tx.insert(
        "T",
        vec![
            RowValue::U64(7),
            RowValue::Text("kept".into()),
            RowValue::Null,
            RowValue::Null,
        ],
    )
    .unwrap();
    crate::failpoint::arm(crate::failpoint::CHECKPOINT, 1);
    let err = tx.commit().unwrap_err();
    crate::failpoint::reset();
    assert!(
        matches!(err, StorageError::CheckpointAfterCommit(_)),
        "got {err:?}"
    );
    // The transaction is committed despite the error...
    let rd = db.begin_read().unwrap();
    assert_eq!(
        rd.get("T", 7).unwrap().unwrap()[1],
        RowValue::Text("kept".into())
    );
    drop(rd);
    // ...and the engine recovers: the deferred fold reruns, later commits
    // succeed, and nothing is duplicated.
    let mut tx = db.begin().unwrap();
    tx.insert(
        "T",
        vec![
            RowValue::U64(8),
            RowValue::Text("next".into()),
            RowValue::Null,
            RowValue::Null,
        ],
    )
    .unwrap();
    tx.commit().unwrap();
    let mut tx = db.begin().unwrap();
    assert_eq!(tx.count("T").unwrap(), 2);
    drop(tx);
    assert!(db.check_integrity().is_ok());
}

#[test]
fn try_begin_is_non_blocking() {
    let db = Database::in_memory().unwrap();
    let tx = db.try_begin().expect("no other transaction");
    assert!(db.try_begin().is_none(), "second concurrent txn refused");
    drop(tx);
    assert!(db.try_begin().is_some());
}
