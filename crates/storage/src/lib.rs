//! # rcmo-storage — an embedded page-based storage engine
//!
//! The paper stores multimedia objects in an Oracle object-relational
//! database as BLOBs behind a narrow fetch/store API. This crate is the
//! substitute substrate: a small but real storage engine with
//!
//! * fixed-size [pages](page) with checksums,
//! * a [paging layer](pager): a sharded, lock-striped read cache shared by
//!   all readers plus a private write-set buffer for the single writer
//!   (no-steal policy),
//! * a redo-only [write-ahead log](wal) with group commit and crash
//!   recovery,
//! * [slotted-page heap files](heap) for records,
//! * a [B+tree](btree) index for `u64 → u64` mappings (primary keys),
//! * a [chunked BLOB store](blob) for multimedia payloads of up to 4 GiB
//!   (the paper's Oracle BLOB limit), and
//! * a [catalog] + [database facade](db) with typed tables, single-writer
//!   transactions and snapshot-isolated readers.
//!
//! The `rcmo-mediadb` crate builds the paper's Figure-7 schema on top.
//!
//! ## Durability contract
//!
//! Writes are single-writer (enforced by the borrow checker: a
//! [`db::Transaction`] holds the writer lock). Commit appends after-images
//! of all dirty pages plus a commit record to the WAL, *publishes* the new
//! committed version for readers — releasing the writer lock — and then
//! joins the shared group-commit fsync: one WAL sync covers every commit
//! appended before it started, so concurrent committers amortize the sync
//! ([`db::DbOptions::group_commit_window`] stretches the batch). A commit
//! only returns `Ok` once its records are durable. Checkpoints fold
//! committed pages into the data file and truncate the WAL when it grows
//! past a size/commit-count threshold — or on every commit with
//! [`db::DbOptions::eager_checkpoint`]. Recovery on open replays committed
//! WAL transactions in order; torn, uncommitted, duplicate or
//! non-monotonic tails are discarded by record checksums and the commit
//! watermark.
//!
//! Readers ([`Database::begin_read`](db::Database::begin_read)) observe an
//! immutable committed snapshot and never take the writer lock: a long
//! scan cannot stall a commit, and a commit cannot tear a scan.
//!
//! ## Crash testing
//!
//! The stack is built for deterministic crash injection: all byte-level
//! I/O flows through the [backend] abstraction (including a seeded
//! fault-simulating [`FaultyBackend`](backend::FaultyBackend)), every
//! durability site passes a named [failpoint], recovery tolerates torn
//! trailing pages and quarantines corrupt WALs instead of refusing to
//! open, and [`Database::check_integrity`] verifies the full on-disk
//! invariant set after a reopen. See `tests/crash_torture.rs` at the
//! workspace root for the harness that sweeps the crash-schedule space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod blob;
pub mod btree;
pub mod catalog;
pub mod db;
pub mod disk;
pub mod error;
pub mod failpoint;
pub mod heap;
pub mod integrity;
pub mod page;
pub mod pager;
pub(crate) mod snapshot;
pub mod wal;

pub use backend::{
    Backend, CrashSpec, FaultInjector, FaultyBackend, MemBackend, SimStore, SlowSyncBackend,
};
pub use blob::BlobId;
pub use catalog::{Column, ColumnType, Schema};
pub use db::{Database, DbOptions, ReadTransaction, RowValue, Transaction};
pub use error::StorageError;
pub use heap::RecordId;
pub use integrity::IntegrityReport;
pub use page::{PageId, PAGE_SIZE};
pub use pager::PageRead;
