//! Pluggable byte-level storage backends for the data file and the WAL.
//!
//! [`DiskManager`](crate::disk::DiskManager) and [`Wal`](crate::wal::Wal)
//! speak to stable storage exclusively through the [`Backend`] trait:
//!
//! * [`FileBackend`] — a real file (production),
//! * [`MemBackend`] — a plain byte vector (ephemeral databases, tests),
//! * [`FaultyBackend`] — a deterministic fault simulator for crash-torture
//!   harnesses.
//!
//! A [`FaultyBackend`] records every write, truncate and sync into a
//! [`SimStore`] and consults a shared [`FaultInjector`] before applying
//! each one. Driven by a seeded [`CrashSpec`], the injector can
//!
//! * **crash at operation N** — the N-th durability operation across *all*
//!   attached backends fails, and every later operation fails too (the
//!   process is "down"),
//! * **tear the in-flight write** — a random prefix of the crashing write
//!   reaches the medium (modelling torn pages / torn WAL records),
//! * **drop unsynced writes** — writes since the last successful `sync`
//!   are lost at the crash (modelling volatile OS caches), and
//! * **inject transient I/O errors** — each write/sync fails with a fixed
//!   per-operation probability without crashing the store.
//!
//! After a simulated crash, [`SimStore::surviving_bytes`] yields exactly
//! the image a real machine would find on disk after power loss; the
//! harness reopens the database from those bytes and checks recovery.

use crate::error::{Result, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Byte-level storage: the narrow interface the engine needs from a file.
///
/// Reads are infallible with respect to fault injection (a crashed
/// [`FaultyBackend`] fails them, but transient errors target the write
/// path only) so recovery after a simulated crash is deterministic.
#[allow(clippy::len_without_is_empty)] // `len` is fallible; emptiness is `len()? == 0`
pub trait Backend: std::fmt::Debug + Send {
    /// Current length in bytes.
    fn len(&self) -> Result<u64>;

    /// Fills `buf` from `off`; errors if the range runs past the end.
    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes `data` at `off`, zero-extending any gap past the end.
    fn write_at(&mut self, off: u64, data: &[u8]) -> Result<()>;

    /// Truncates (or zero-extends) to exactly `len` bytes.
    fn set_len(&mut self, len: u64) -> Result<()>;

    /// Forces all previous writes to stable storage.
    fn sync(&mut self) -> Result<()>;
}

// ---------------------------------------------------------------------
// File backend.

/// A [`Backend`] over a real file.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
}

impl FileBackend {
    /// Opens (or creates) the file at `path` for read/write.
    pub fn open(path: &Path) -> Result<FileBackend> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileBackend { file })
    }
}

impl Backend for FileBackend {
    fn len(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> Result<()> {
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_at(&mut self, off: u64, data: &[u8]) -> Result<()> {
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(data)?;
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Memory backend.

/// A [`Backend`] over a plain in-memory byte vector.
#[derive(Debug, Default)]
pub struct MemBackend {
    buf: Vec<u8>,
}

impl MemBackend {
    /// An empty store.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    /// A store initialised with `bytes` (e.g. a crash survivor image).
    pub fn from_bytes(bytes: Vec<u8>) -> MemBackend {
        MemBackend { buf: bytes }
    }
}

fn apply_write(buf: &mut Vec<u8>, off: u64, data: &[u8]) {
    let off = off as usize;
    let end = off + data.len();
    if buf.len() < end {
        buf.resize(end, 0);
    }
    buf[off..end].copy_from_slice(data);
}

fn short_read(off: u64, want: usize, have: usize) -> StorageError {
    StorageError::Io(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        format!("read of {want} bytes at {off} past end ({have} bytes)"),
    ))
}

impl Backend for MemBackend {
    fn len(&self) -> Result<u64> {
        Ok(self.buf.len() as u64)
    }

    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> Result<()> {
        let end = off as usize + buf.len();
        if end > self.buf.len() {
            return Err(short_read(off, buf.len(), self.buf.len()));
        }
        buf.copy_from_slice(&self.buf[off as usize..end]);
        Ok(())
    }

    fn write_at(&mut self, off: u64, data: &[u8]) -> Result<()> {
        apply_write(&mut self.buf, off, data);
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> Result<()> {
        self.buf.resize(len as usize, 0);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Slow-sync backend.

/// A [`Backend`] decorator modelling a device with expensive fsyncs: every
/// [`sync`](Backend::sync) sleeps for a fixed latency before delegating.
///
/// Makes the WAL fsync the commit bottleneck so experiments (E20) can
/// measure how group commit amortizes syncs across concurrent committers.
#[derive(Debug)]
pub struct SlowSyncBackend<B> {
    inner: B,
    latency: std::time::Duration,
    syncs: Arc<std::sync::atomic::AtomicU64>,
}

impl<B: Backend> SlowSyncBackend<B> {
    /// Wraps `inner`, charging `latency` of wall-clock time per sync.
    pub fn new(inner: B, latency: std::time::Duration) -> SlowSyncBackend<B> {
        SlowSyncBackend {
            inner,
            latency,
            syncs: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Shared counter of syncs issued through this backend.
    pub fn sync_counter(&self) -> Arc<std::sync::atomic::AtomicU64> {
        Arc::clone(&self.syncs)
    }
}

impl<B: Backend> Backend for SlowSyncBackend<B> {
    fn len(&self) -> Result<u64> {
        self.inner.len()
    }

    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_at(off, buf)
    }

    fn write_at(&mut self, off: u64, data: &[u8]) -> Result<()> {
        self.inner.write_at(off, data)
    }

    fn set_len(&mut self, len: u64) -> Result<()> {
        self.inner.set_len(len)
    }

    fn sync(&mut self) -> Result<()> {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        self.syncs
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.sync()
    }
}

// ---------------------------------------------------------------------
// Fault simulation.

/// What a [`FaultInjector`] simulates, from a deterministic seed.
#[derive(Debug, Clone, Copy)]
pub struct CrashSpec {
    /// RNG seed: identical specs replay identical fault schedules.
    pub seed: u64,
    /// Crash on the N-th (1-based) write/truncate/sync across all attached
    /// backends; `None` never crashes.
    pub crash_at_op: Option<u64>,
    /// At the crash, a random *prefix* of the in-flight write survives
    /// (torn page / torn WAL record). When `false` the crashing write is
    /// lost entirely.
    pub torn_writes: bool,
    /// At the crash, writes since the last successful `sync` are lost
    /// (volatile-cache model). A crash during `sync` itself keeps a random
    /// prefix of the pending writes. When `false` every applied write
    /// survives the crash.
    pub drop_unsynced: bool,
    /// Per-operation probability of a transient I/O error on writes and
    /// syncs (the operation fails, nothing is applied, the store lives on).
    pub io_error_prob: f64,
}

impl CrashSpec {
    /// A spec that only crashes at operation `n` (no torn writes, no
    /// unsynced loss, no transient errors).
    pub fn crash_at(seed: u64, n: u64) -> CrashSpec {
        CrashSpec {
            seed,
            crash_at_op: Some(n),
            torn_writes: false,
            drop_unsynced: false,
            io_error_prob: 0.0,
        }
    }

    /// A spec that never injects anything (operation counting runs).
    pub fn count_only(seed: u64) -> CrashSpec {
        CrashSpec {
            seed,
            crash_at_op: None,
            torn_writes: false,
            drop_unsynced: false,
            io_error_prob: 0.0,
        }
    }
}

/// SplitMix64: a tiny deterministic RNG so the backend does not pull in an
/// RNG dependency. Streams only need to be stable across runs, not
/// compatible with anything.
#[derive(Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)` (`bound` > 0).
    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A durability operation as recorded by a [`FaultyBackend`] between syncs.
#[derive(Debug, Clone)]
enum PendingOp {
    Write(u64, Vec<u8>),
    SetLen(u64),
}

fn apply_op(buf: &mut Vec<u8>, op: &PendingOp) {
    match op {
        PendingOp::Write(off, data) => apply_write(buf, *off, data),
        PendingOp::SetLen(len) => buf.resize(*len as usize, 0),
    }
}

/// One simulated file: the durable image (as of the last sync), the applied
/// image (what reads observe), the writes pending since the last sync, and
/// — after a crash — the frozen survivor image.
#[derive(Debug, Default)]
struct SimFile {
    durable: Vec<u8>,
    applied: Vec<u8>,
    pending: Vec<PendingOp>,
    crash_image: Option<Vec<u8>>,
}

/// A cloneable handle on a simulated file. The harness keeps one while the
/// database owns [`FaultyBackend`]s over the same file, then extracts the
/// post-crash image with [`surviving_bytes`](Self::surviving_bytes).
#[derive(Debug, Clone, Default)]
pub struct SimStore {
    file: Arc<Mutex<SimFile>>,
}

impl SimStore {
    /// An empty simulated file.
    pub fn new() -> SimStore {
        SimStore::default()
    }

    /// A simulated file pre-loaded with `bytes`.
    pub fn from_bytes(bytes: Vec<u8>) -> SimStore {
        SimStore {
            file: Arc::new(Mutex::new(SimFile {
                durable: bytes.clone(),
                applied: bytes,
                pending: Vec::new(),
                crash_image: None,
            })),
        }
    }

    /// The current applied contents (all writes, synced or not).
    pub fn bytes(&self) -> Vec<u8> {
        self.file
            .lock()
            .expect("sim store poisoned")
            .applied
            .clone()
    }

    /// What a machine would find on disk: the frozen crash image if the
    /// injector crashed, otherwise the current applied contents.
    pub fn surviving_bytes(&self) -> Vec<u8> {
        let f = self.file.lock().expect("sim store poisoned");
        f.crash_image.clone().unwrap_or_else(|| f.applied.clone())
    }

    /// A [`FaultyBackend`] over this file, attached to `injector` (which
    /// resolves crash images for every attached store at the crash point).
    pub fn backend(&self, injector: &Arc<FaultInjector>) -> FaultyBackend {
        injector.attach(self.file.clone());
        FaultyBackend {
            file: self.file.clone(),
            injector: injector.clone(),
        }
    }
}

#[derive(Debug)]
struct InjectorState {
    spec: CrashSpec,
    rng: SplitMix64,
    ops: u64,
    crashed: bool,
    transients: u64,
    stores: Vec<Arc<Mutex<SimFile>>>,
}

/// Shared fault oracle for a set of [`FaultyBackend`]s. One injector spans
/// the data file *and* the WAL so `crash_at_op` enumerates one global
/// schedule of durability operations.
#[derive(Debug)]
pub struct FaultInjector {
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// A fresh injector for `spec`.
    pub fn new(spec: CrashSpec) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            state: Mutex::new(InjectorState {
                rng: SplitMix64(spec.seed ^ 0xC3A5_C85C_97CB_3127),
                spec,
                ops: 0,
                crashed: false,
                transients: 0,
                stores: Vec::new(),
            }),
        })
    }

    /// Durability operations observed so far (writes, truncates, syncs).
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("injector poisoned").ops
    }

    /// `true` once the simulated crash fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("injector poisoned").crashed
    }

    /// Transient errors injected so far.
    pub fn transients(&self) -> u64 {
        self.state.lock().expect("injector poisoned").transients
    }

    fn attach(&self, store: Arc<Mutex<SimFile>>) {
        self.state
            .lock()
            .expect("injector poisoned")
            .stores
            .push(store);
    }

    /// Decides the fate of one operation on `target` (`op` is `None` for a
    /// sync) and, on a crash, freezes the survivor image of every attached
    /// store.
    fn on_op(&self, target: &Arc<Mutex<SimFile>>, op: Option<&PendingOp>) -> Result<()> {
        static CRASHES: rcmo_obs::LazyCounter =
            rcmo_obs::LazyCounter::new("storage.fault.crash.count");
        static TRANSIENTS: rcmo_obs::LazyCounter =
            rcmo_obs::LazyCounter::new("storage.fault.transient.count");
        let mut st = self.state.lock().expect("injector poisoned");
        if st.crashed {
            return Err(StorageError::FaultInjected(
                "simulated crash: backend is down".to_string(),
            ));
        }
        st.ops += 1;
        if Some(st.ops) == st.spec.crash_at_op {
            st.crashed = true;
            CRASHES.inc();
            let (torn, drop_unsynced) = (st.spec.torn_writes, st.spec.drop_unsynced);
            // Freeze every attached store at its survivor image.
            for store in st.stores.clone() {
                let is_target = Arc::ptr_eq(&store, target);
                let mut f = store.lock().expect("sim store poisoned");
                let mut image = f.durable.clone();
                if !drop_unsynced {
                    // All applied writes physically reached the medium.
                    image = f.applied.clone();
                } else if is_target && op.is_none() {
                    // Crash *during this store's sync*: a random prefix of
                    // its pending writes made it out.
                    let keep = st.rng.below(f.pending.len() as u64 + 1) as usize;
                    for p in f.pending.iter().take(keep) {
                        apply_op(&mut image, p);
                    }
                }
                if is_target {
                    if let Some(PendingOp::Write(off, data)) = op {
                        if torn && !data.is_empty() {
                            // A strict prefix of the in-flight write hit
                            // the medium: the canonical torn page/record.
                            let keep = st.rng.below(data.len() as u64) as usize;
                            apply_write(&mut image, *off, &data[..keep]);
                        }
                    }
                }
                f.crash_image = Some(image);
            }
            return Err(StorageError::FaultInjected(format!(
                "simulated crash at operation {}",
                st.ops
            )));
        }
        if st.spec.io_error_prob > 0.0 && st.rng.unit_f64() < st.spec.io_error_prob {
            st.transients += 1;
            TRANSIENTS.inc();
            let op_no = st.ops;
            return Err(StorageError::FaultInjected(format!(
                "transient i/o error at operation {op_no}"
            )));
        }
        Ok(())
    }
}

/// A [`Backend`] that applies every operation to a [`SimStore`] under the
/// verdict of a shared [`FaultInjector`].
#[derive(Debug)]
pub struct FaultyBackend {
    file: Arc<Mutex<SimFile>>,
    injector: Arc<FaultInjector>,
}

impl Backend for FaultyBackend {
    fn len(&self) -> Result<u64> {
        if self.injector.crashed() {
            return Err(StorageError::FaultInjected(
                "simulated crash: backend is down".to_string(),
            ));
        }
        Ok(self.file.lock().expect("sim store poisoned").applied.len() as u64)
    }

    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> Result<()> {
        if self.injector.crashed() {
            return Err(StorageError::FaultInjected(
                "simulated crash: backend is down".to_string(),
            ));
        }
        let f = self.file.lock().expect("sim store poisoned");
        let end = off as usize + buf.len();
        if end > f.applied.len() {
            return Err(short_read(off, buf.len(), f.applied.len()));
        }
        buf.copy_from_slice(&f.applied[off as usize..end]);
        Ok(())
    }

    fn write_at(&mut self, off: u64, data: &[u8]) -> Result<()> {
        let op = PendingOp::Write(off, data.to_vec());
        self.injector.on_op(&self.file, Some(&op))?;
        let mut f = self.file.lock().expect("sim store poisoned");
        apply_op(&mut f.applied, &op);
        f.pending.push(op);
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> Result<()> {
        let op = PendingOp::SetLen(len);
        self.injector.on_op(&self.file, Some(&op))?;
        let mut f = self.file.lock().expect("sim store poisoned");
        apply_op(&mut f.applied, &op);
        f.pending.push(op);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.injector.on_op(&self.file, None)?;
        let mut f = self.file.lock().expect("sim store poisoned");
        f.durable = f.applied.clone();
        f.pending.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_roundtrip_and_extension() {
        let mut b = MemBackend::new();
        assert_eq!(b.len().unwrap(), 0);
        b.write_at(4, &[1, 2, 3]).unwrap();
        assert_eq!(b.len().unwrap(), 7);
        let mut out = [0u8; 7];
        b.read_at(0, &mut out).unwrap();
        assert_eq!(out, [0, 0, 0, 0, 1, 2, 3]);
        assert!(b.read_at(5, &mut [0u8; 3]).is_err());
        b.set_len(5).unwrap();
        assert_eq!(b.len().unwrap(), 5);
    }

    #[test]
    fn faulty_backend_crashes_at_op_and_stays_down() {
        let inj = FaultInjector::new(CrashSpec::crash_at(1, 3));
        let store = SimStore::new();
        let mut b = store.backend(&inj);
        b.write_at(0, &[1]).unwrap(); // op 1
        b.write_at(1, &[2]).unwrap(); // op 2
        assert!(matches!(
            b.write_at(2, &[3]),
            Err(StorageError::FaultInjected(_))
        )); // op 3 crashes
        assert!(inj.crashed());
        assert!(b.write_at(3, &[4]).is_err());
        assert!(b.sync().is_err());
        // No unsynced-drop configured: applied writes survive, the crashing
        // (untorn) write does not.
        assert_eq!(store.surviving_bytes(), vec![1, 2]);
    }

    #[test]
    fn drop_unsynced_loses_everything_after_last_sync() {
        let spec = CrashSpec {
            seed: 9,
            crash_at_op: Some(5),
            torn_writes: false,
            drop_unsynced: true,
            io_error_prob: 0.0,
        };
        let inj = FaultInjector::new(spec);
        let store = SimStore::new();
        let mut b = store.backend(&inj);
        b.write_at(0, &[1, 1]).unwrap(); // op 1
        b.sync().unwrap(); // op 2: [1,1] durable
        b.write_at(2, &[2, 2]).unwrap(); // op 3 (unsynced)
        b.write_at(4, &[3, 3]).unwrap(); // op 4 (unsynced)
        assert!(b.write_at(6, &[4, 4]).is_err()); // op 5 crashes
        assert_eq!(store.surviving_bytes(), vec![1, 1]);
    }

    #[test]
    fn torn_write_keeps_a_strict_prefix() {
        for seed in 0..32u64 {
            let spec = CrashSpec {
                seed,
                crash_at_op: Some(1),
                torn_writes: true,
                drop_unsynced: false,
                io_error_prob: 0.0,
            };
            let inj = FaultInjector::new(spec);
            let store = SimStore::new();
            let mut b = store.backend(&inj);
            assert!(b.write_at(0, &[7u8; 100]).is_err());
            let surv = store.surviving_bytes();
            assert!(surv.len() < 100, "seed {seed}: torn prefix must be strict");
            assert!(surv.iter().all(|&x| x == 7));
        }
    }

    #[test]
    fn transient_errors_do_not_apply_or_crash() {
        let spec = CrashSpec {
            seed: 4,
            crash_at_op: None,
            torn_writes: false,
            drop_unsynced: false,
            io_error_prob: 0.5,
        };
        let inj = FaultInjector::new(spec);
        let store = SimStore::new();
        let mut b = store.backend(&inj);
        let mut ok = 0u32;
        for i in 0..64u64 {
            if b.write_at(i, &[i as u8]).is_ok() {
                ok += 1;
            }
        }
        assert!(inj.transients() > 0, "some errors injected");
        assert!(ok > 0, "some writes got through");
        assert!(!inj.crashed());
        // Every surviving byte is exactly the one written at its offset.
        let bytes = store.bytes();
        for (i, &v) in bytes.iter().enumerate() {
            assert!(v == i as u8 || v == 0);
        }
    }

    #[test]
    fn identical_specs_replay_identical_schedules() {
        let run = |seed: u64| {
            let spec = CrashSpec {
                seed,
                crash_at_op: Some(7),
                torn_writes: true,
                drop_unsynced: true,
                io_error_prob: 0.2,
            };
            let inj = FaultInjector::new(spec);
            let store = SimStore::new();
            let mut b = store.backend(&inj);
            for i in 0..20u64 {
                let _ = b.write_at(i * 3, &[i as u8; 3]);
                if i % 4 == 3 {
                    let _ = b.sync();
                }
            }
            store.surviving_bytes()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }
}
