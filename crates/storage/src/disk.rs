//! The disk manager: raw page I/O over a pluggable byte-level
//! [`Backend`] (a real file, an in-memory vector, or a fault-injecting
//! simulator — see [`crate::backend`]).

use crate::backend::{Backend, FileBackend, MemBackend};
use crate::error::{Result, StorageError};
use crate::failpoint;
use crate::page::{Page, PageId, PAGE_SIZE};
use rcmo_obs::LazyCounter;
use std::path::Path;

static TORN_PAGE_TRUNCATED: LazyCounter =
    LazyCounter::new("storage.salvage.torn_page_truncated.count");

/// Page-granular storage over a byte-level [`Backend`].
#[derive(Debug)]
pub struct DiskManager {
    backend: Box<dyn Backend>,
    pages: u64,
}

impl DiskManager {
    /// Opens (or creates) a file-backed disk manager.
    ///
    /// A data file whose length is not a multiple of the page size has a
    /// torn trailing page from a crash during a page-extending write; the
    /// partial page is never referenced by any committed record (the commit
    /// that would have referenced it never checkpointed), so it is salvaged
    /// by truncation rather than refusing to open.
    pub fn open(path: &Path) -> Result<Self> {
        Self::from_backend(Box::new(FileBackend::open(path)?))
    }

    /// Creates an in-memory disk manager.
    pub fn in_memory() -> Self {
        DiskManager {
            backend: Box::new(MemBackend::new()),
            pages: 0,
        }
    }

    /// Opens a disk manager over an arbitrary backend, applying the same
    /// torn-trailing-page salvage as [`open`](Self::open).
    pub fn from_backend(mut backend: Box<dyn Backend>) -> Result<Self> {
        let len = backend.len()?;
        let torn = len % PAGE_SIZE as u64;
        if torn != 0 {
            backend.set_len(len - torn)?;
            backend.sync()?;
            TORN_PAGE_TRUNCATED.inc();
        }
        Ok(DiskManager {
            pages: (len - torn) / PAGE_SIZE as u64,
            backend,
        })
    }

    /// Number of pages in the store.
    pub fn num_pages(&self) -> u64 {
        self.pages
    }

    /// Reads and checksum-verifies a page.
    pub fn read_page(&mut self, id: PageId) -> Result<Page> {
        if id.0 >= self.pages {
            return Err(StorageError::PageOutOfBounds(id.0));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.backend.read_at(id.0 * PAGE_SIZE as u64, &mut buf)?;
        Page::from_bytes(id, &buf)
    }

    /// Seals (checksums) and writes a page. Extends the store if `id` is
    /// exactly one past the end; anything further is an error.
    pub fn write_page(&mut self, id: PageId, page: &mut Page) -> Result<()> {
        if id.0 > self.pages {
            return Err(StorageError::PageOutOfBounds(id.0));
        }
        let bytes = page.sealed_bytes();
        self.backend.write_at(id.0 * PAGE_SIZE as u64, bytes)?;
        if id.0 == self.pages {
            self.pages += 1;
        }
        Ok(())
    }

    /// Writes an already-sealed page image verbatim (WAL replay). The image
    /// must be exactly one page; the store is extended as needed, zero-
    /// filling any gap (replay may reference pages past the current end).
    pub fn write_raw(&mut self, id: PageId, image: &[u8]) -> Result<()> {
        if image.len() != PAGE_SIZE {
            return Err(StorageError::Internal(format!(
                "raw image of {} bytes",
                image.len()
            )));
        }
        while self.pages < id.0 {
            let gap = PageId(self.pages);
            let mut filler = Page::new(crate::page::PageKind::Free);
            self.write_page(gap, &mut filler)?;
        }
        self.backend.write_at(id.0 * PAGE_SIZE as u64, image)?;
        if id.0 == self.pages {
            self.pages += 1;
        }
        Ok(())
    }

    /// Flushes OS buffers to stable storage. Passes through the
    /// [`failpoint::DISK_SYNC`] failpoint.
    pub fn sync(&mut self) -> Result<()> {
        failpoint::hit(failpoint::DISK_SYNC)?;
        self.backend.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    #[test]
    fn memory_read_write() {
        let mut dm = DiskManager::in_memory();
        assert_eq!(dm.num_pages(), 0);
        let mut p = Page::new(PageKind::Heap);
        p.put_u64(0, 77);
        dm.write_page(PageId(0), &mut p).unwrap();
        assert_eq!(dm.num_pages(), 1);
        let q = dm.read_page(PageId(0)).unwrap();
        assert_eq!(q.get_u64(0), 77);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut dm = DiskManager::in_memory();
        assert!(dm.read_page(PageId(0)).is_err());
        let mut p = Page::new(PageKind::Heap);
        assert!(dm.write_page(PageId(5), &mut p).is_err());
    }

    #[test]
    fn file_backed_roundtrip() {
        let dir = std::env::temp_dir().join(format!("rcmo-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.db");
        let _ = std::fs::remove_file(&path);
        {
            let mut dm = DiskManager::open(&path).unwrap();
            let mut p = Page::new(PageKind::Blob);
            p.put_u32(0, 123);
            dm.write_page(PageId(0), &mut p).unwrap();
            let mut p2 = Page::new(PageKind::Heap);
            p2.put_u32(4, 456);
            dm.write_page(PageId(1), &mut p2).unwrap();
            dm.sync().unwrap();
        }
        {
            let mut dm = DiskManager::open(&path).unwrap();
            assert_eq!(dm.num_pages(), 2);
            assert_eq!(dm.read_page(PageId(0)).unwrap().get_u32(0), 123);
            assert_eq!(dm.read_page(PageId(1)).unwrap().get_u32(4), 456);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_page_is_truncated_on_open() {
        let dir = std::env::temp_dir().join(format!("rcmo-disk-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.db");
        let _ = std::fs::remove_file(&path);
        {
            let mut dm = DiskManager::open(&path).unwrap();
            let mut p = Page::new(PageKind::Heap);
            p.put_u64(0, 42);
            dm.write_page(PageId(0), &mut p).unwrap();
            dm.sync().unwrap();
        }
        // Simulate a crash mid-way through a page-extending write: append
        // part of a second page.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&vec![0xAB; PAGE_SIZE / 3]).unwrap();
        }
        {
            let mut dm = DiskManager::open(&path).unwrap();
            assert_eq!(dm.num_pages(), 1, "partial page salvaged away");
            assert_eq!(dm.read_page(PageId(0)).unwrap().get_u64(0), 42);
        }
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            PAGE_SIZE as u64,
            "file truncated back to a whole page"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mem_backend_roundtrip_via_from_backend() {
        let mut dm = DiskManager::from_backend(Box::new(MemBackend::new())).unwrap();
        let mut p = Page::new(PageKind::Heap);
        p.put_u64(0, 9);
        dm.write_page(PageId(0), &mut p).unwrap();
        assert_eq!(dm.read_page(PageId(0)).unwrap().get_u64(0), 9);
    }
}
