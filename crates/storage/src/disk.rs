//! The disk manager: raw page I/O against the data file (or an in-memory
//! image for tests and ephemeral databases).

use crate::error::{Result, StorageError};
use crate::page::{Page, PageId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Backing storage for pages: a real file or an in-memory vector.
#[derive(Debug)]
pub enum DiskManager {
    /// File-backed storage.
    File {
        /// The open data file.
        file: File,
        /// Number of pages currently in the file.
        pages: u64,
    },
    /// In-memory storage (no durability; used for ephemeral databases).
    Memory {
        /// Raw page images.
        images: Vec<Vec<u8>>,
    },
}

impl DiskManager {
    /// Opens (or creates) a file-backed disk manager.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::BadHeader(format!(
                "data file length {len} is not a multiple of the page size"
            )));
        }
        Ok(DiskManager::File {
            file,
            pages: len / PAGE_SIZE as u64,
        })
    }

    /// Creates an in-memory disk manager.
    pub fn in_memory() -> Self {
        DiskManager::Memory { images: Vec::new() }
    }

    /// Number of pages in the store.
    pub fn num_pages(&self) -> u64 {
        match self {
            DiskManager::File { pages, .. } => *pages,
            DiskManager::Memory { images } => images.len() as u64,
        }
    }

    /// Reads and checksum-verifies a page.
    pub fn read_page(&mut self, id: PageId) -> Result<Page> {
        if id.0 >= self.num_pages() {
            return Err(StorageError::PageOutOfBounds(id.0));
        }
        match self {
            DiskManager::File { file, .. } => {
                let mut buf = vec![0u8; PAGE_SIZE];
                file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
                file.read_exact(&mut buf)?;
                Page::from_bytes(id, &buf)
            }
            DiskManager::Memory { images } => Page::from_bytes(id, &images[id.0 as usize]),
        }
    }

    /// Seals (checksums) and writes a page. Extends the store if `id` is
    /// exactly one past the end; anything further is an error.
    pub fn write_page(&mut self, id: PageId, page: &mut Page) -> Result<()> {
        let n = self.num_pages();
        if id.0 > n {
            return Err(StorageError::PageOutOfBounds(id.0));
        }
        let bytes = page.sealed_bytes();
        match self {
            DiskManager::File { file, pages } => {
                file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
                file.write_all(bytes)?;
                if id.0 == *pages {
                    *pages += 1;
                }
            }
            DiskManager::Memory { images } => {
                if id.0 == n {
                    images.push(bytes.to_vec());
                } else {
                    images[id.0 as usize].copy_from_slice(bytes);
                }
            }
        }
        Ok(())
    }

    /// Writes an already-sealed page image verbatim (WAL replay). The image
    /// must be exactly one page; the store is extended as needed, zero-
    /// filling any gap (replay may reference pages past the current end).
    pub fn write_raw(&mut self, id: PageId, image: &[u8]) -> Result<()> {
        if image.len() != PAGE_SIZE {
            return Err(StorageError::Internal(format!(
                "raw image of {} bytes",
                image.len()
            )));
        }
        while self.num_pages() < id.0 {
            let gap = PageId(self.num_pages());
            let mut filler = Page::new(crate::page::PageKind::Free);
            self.write_page(gap, &mut filler)?;
        }
        match self {
            DiskManager::File { file, pages } => {
                file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
                file.write_all(image)?;
                if id.0 == *pages {
                    *pages += 1;
                }
            }
            DiskManager::Memory { images } => {
                if id.0 == images.len() as u64 {
                    images.push(image.to_vec());
                } else {
                    images[id.0 as usize].copy_from_slice(image);
                }
            }
        }
        Ok(())
    }

    /// Flushes OS buffers to stable storage (no-op in memory).
    pub fn sync(&mut self) -> Result<()> {
        if let DiskManager::File { file, .. } = self {
            file.sync_data()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    #[test]
    fn memory_read_write() {
        let mut dm = DiskManager::in_memory();
        assert_eq!(dm.num_pages(), 0);
        let mut p = Page::new(PageKind::Heap);
        p.put_u64(0, 77);
        dm.write_page(PageId(0), &mut p).unwrap();
        assert_eq!(dm.num_pages(), 1);
        let q = dm.read_page(PageId(0)).unwrap();
        assert_eq!(q.get_u64(0), 77);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut dm = DiskManager::in_memory();
        assert!(dm.read_page(PageId(0)).is_err());
        let mut p = Page::new(PageKind::Heap);
        assert!(dm.write_page(PageId(5), &mut p).is_err());
    }

    #[test]
    fn file_backed_roundtrip() {
        let dir = std::env::temp_dir().join(format!("rcmo-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.db");
        let _ = std::fs::remove_file(&path);
        {
            let mut dm = DiskManager::open(&path).unwrap();
            let mut p = Page::new(PageKind::Blob);
            p.put_u32(0, 123);
            dm.write_page(PageId(0), &mut p).unwrap();
            let mut p2 = Page::new(PageKind::Heap);
            p2.put_u32(4, 456);
            dm.write_page(PageId(1), &mut p2).unwrap();
            dm.sync().unwrap();
        }
        {
            let mut dm = DiskManager::open(&path).unwrap();
            assert_eq!(dm.num_pages(), 2);
            assert_eq!(dm.read_page(PageId(0)).unwrap().get_u32(0), 123);
            assert_eq!(dm.read_page(PageId(1)).unwrap().get_u32(4), 456);
        }
        let _ = std::fs::remove_file(&path);
    }
}
