//! The buffer pool: cached page frames over the disk manager.
//!
//! Access is closure-scoped ([`BufferPool::with_page`] /
//! [`BufferPool::with_page_mut`]) so a page reference can never outlive one
//! call; that makes pin counts unnecessary — eviction only ever considers
//! frames that are not in use by construction. Eviction is LRU over *clean*
//! frames only: dirty pages belong to the in-flight transaction and are
//! never stolen to the data file before commit (the WAL is redo-only).
//!
//! Newly allocated pages live purely in the pool (`virtual_end` past the
//! file end) until the owning transaction commits, so an abort simply drops
//! the dirty frames and the file is untouched.

use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::failpoint;
use crate::page::{Page, PageId, PageKind, PAGE_SIZE};
use rcmo_obs::{Counter, Metrics, Registry};
use std::collections::HashMap;

/// Body offset (within the meta page) of the free-list head pointer.
pub const META_FREE_HEAD: usize = 8;
/// Body offset (within a free page) of the next-free pointer.
const FREE_NEXT: usize = 0;

/// Cache statistics: a typed view over the pool's metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that had to read the disk.
    pub misses: u64,
    /// Clean frames evicted to make room.
    pub evictions: u64,
    /// Pages allocated over the pool's lifetime.
    pub allocations: u64,
}

impl PoolStats {
    /// Reads the pool counters out of a metrics registry.
    pub fn from_registry(obs: &Registry) -> Self {
        PoolStats {
            hits: obs.read_counter("storage.pool.hit.count"),
            misses: obs.read_counter("storage.pool.miss.count"),
            evictions: obs.read_counter("storage.pool.eviction.count"),
            allocations: obs.read_counter("storage.pool.alloc.count"),
        }
    }
}

#[derive(Debug)]
struct Frame {
    page: Page,
    dirty: bool,
    last_used: u64,
}

/// The buffer pool. All mutation happens through `&mut self`, matching the
/// engine's single-writer design.
#[derive(Debug)]
pub struct BufferPool {
    disk: DiskManager,
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    tick: u64,
    /// One past the highest allocated page id (≥ disk pages).
    virtual_end: u64,
    obs: Registry,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    allocations: Counter,
}

impl BufferPool {
    /// Wraps `disk` with a pool of `capacity` frames (minimum 8).
    pub fn new(disk: DiskManager, capacity: usize) -> Self {
        let virtual_end = disk.num_pages();
        let obs = Registry::new();
        let hits = obs.counter("storage.pool.hit.count");
        let misses = obs.counter("storage.pool.miss.count");
        let evictions = obs.counter("storage.pool.eviction.count");
        let allocations = obs.counter("storage.pool.alloc.count");
        BufferPool {
            disk,
            capacity: capacity.max(8),
            frames: HashMap::new(),
            tick: 0,
            virtual_end,
            obs,
            hits,
            misses,
            evictions,
            allocations,
        }
    }

    /// Pool statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.metrics()
    }

    /// One past the highest allocated page id.
    pub fn num_pages(&self) -> u64 {
        self.virtual_end
    }

    /// Ids of all dirty frames, sorted.
    pub fn dirty_ids(&self) -> Vec<PageId> {
        let mut ids: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, _)| id)
            .collect();
        ids.sort();
        ids
    }

    fn evict_if_needed(&mut self) -> Result<()> {
        if self.frames.len() < self.capacity {
            return Ok(());
        }
        let victim = self
            .frames
            .iter()
            .filter(|(_, f)| !f.dirty)
            .min_by_key(|(_, f)| f.last_used)
            .map(|(&id, _)| id);
        match victim {
            Some(id) => {
                self.frames.remove(&id);
                self.evictions.inc();
                Ok(())
            }
            None => Err(StorageError::PoolExhausted),
        }
    }

    fn load(&mut self, id: PageId) -> Result<()> {
        if self.frames.contains_key(&id) {
            self.hits.inc();
            return Ok(());
        }
        if id.0 >= self.virtual_end {
            return Err(StorageError::PageOutOfBounds(id.0));
        }
        if id.0 >= self.disk.num_pages() {
            // Allocated this transaction but missing from the pool: dirty
            // frames are never evicted, so this indicates an engine bug.
            return Err(StorageError::Internal(format!(
                "allocated page {id} lost from the pool"
            )));
        }
        self.evict_if_needed()?;
        let page = self.disk.read_page(id)?;
        self.misses.inc();
        self.frames.insert(
            id,
            Frame {
                page,
                dirty: false,
                last_used: self.tick,
            },
        );
        Ok(())
    }

    /// Runs `f` with read access to page `id`.
    pub fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        self.load(id)?;
        self.tick += 1;
        let tick = self.tick;
        let frame = self.frames.get_mut(&id).expect("just loaded");
        frame.last_used = tick;
        Ok(f(&frame.page))
    }

    /// Runs `f` with write access to page `id`, marking it dirty.
    pub fn with_page_mut<R>(&mut self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        self.load(id)?;
        self.tick += 1;
        let tick = self.tick;
        let frame = self.frames.get_mut(&id).expect("just loaded");
        frame.last_used = tick;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// The sealed image of a (resident) page, for WAL logging.
    pub fn sealed_image(&mut self, id: PageId) -> Result<[u8; PAGE_SIZE]> {
        self.load(id)?;
        let frame = self.frames.get_mut(&id).expect("just loaded");
        Ok(*frame.page.sealed_bytes())
    }

    /// Allocates a page: pops the free list if possible, otherwise extends
    /// the virtual end. The new page exists only in the pool until commit.
    pub fn allocate(&mut self, kind: PageKind) -> Result<PageId> {
        self.allocations.inc();
        let free_head =
            self.with_page(PageId::META, |meta| PageId(meta.get_u64(META_FREE_HEAD)))?;
        if free_head.is_some() {
            let next = self.with_page(free_head, |p| PageId(p.get_u64(FREE_NEXT)))?;
            self.with_page_mut(PageId::META, |meta| meta.put_u64(META_FREE_HEAD, next.0))?;
            self.with_page_mut(free_head, |p| {
                *p = Page::new(kind);
            })?;
            return Ok(free_head);
        }
        let id = PageId(self.virtual_end);
        self.evict_if_needed()?;
        self.virtual_end += 1;
        self.tick += 1;
        self.frames.insert(
            id,
            Frame {
                page: Page::new(kind),
                dirty: true,
                last_used: self.tick,
            },
        );
        Ok(id)
    }

    /// Returns a page to the free list.
    pub fn free_page(&mut self, id: PageId) -> Result<()> {
        if id == PageId::META {
            return Err(StorageError::Internal("cannot free the meta page".into()));
        }
        let old_head = self.with_page(PageId::META, |meta| meta.get_u64(META_FREE_HEAD))?;
        self.with_page_mut(id, |p| {
            *p = Page::new(PageKind::Free);
            p.put_u64(FREE_NEXT, old_head);
        })?;
        self.with_page_mut(PageId::META, |meta| meta.put_u64(META_FREE_HEAD, id.0))?;
        Ok(())
    }

    /// Writes every dirty frame to the data file (in id order, so file
    /// extension is contiguous), syncs, and marks the frames clean. Called
    /// by commit *after* the WAL was synced. Each page write passes through
    /// the [`failpoint::FLUSH_PAGE`] (or, for the meta page,
    /// [`failpoint::FLUSH_META`]) failpoint.
    pub fn flush_dirty(&mut self) -> Result<()> {
        for id in self.dirty_ids() {
            if id == PageId::META {
                failpoint::hit(failpoint::FLUSH_META)?;
            } else {
                failpoint::hit(failpoint::FLUSH_PAGE)?;
            }
            let frame = self.frames.get_mut(&id).expect("dirty frame resident");
            self.disk.write_page(id, &mut frame.page)?;
            frame.dirty = false;
        }
        self.disk.sync()?;
        Ok(())
    }

    /// Drops all dirty frames and rolls the virtual end back to the file
    /// end. Called by abort.
    pub fn discard_dirty(&mut self) {
        self.frames.retain(|_, f| !f.dirty);
        self.virtual_end = self.disk.num_pages();
    }

    /// `true` if the pool holds uncommitted changes.
    pub fn has_dirty(&self) -> bool {
        self.frames.values().any(|f| f.dirty)
    }

    /// Direct access to the disk manager (recovery).
    pub fn disk_mut(&mut self) -> &mut DiskManager {
        &mut self.disk
    }

    /// Drops every cached frame (used after recovery rewrites the file
    /// underneath the pool).
    pub fn clear_cache(&mut self) {
        self.frames.clear();
        self.virtual_end = self.disk.num_pages();
    }
}

impl Metrics for BufferPool {
    type View = PoolStats;

    fn obs(&self) -> &Registry {
        &self.obs
    }

    fn metrics(&self) -> PoolStats {
        PoolStats::from_registry(&self.obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_pool(capacity: usize) -> BufferPool {
        let mut disk = DiskManager::in_memory();
        let mut meta = Page::new(PageKind::Meta);
        meta.put_u64(META_FREE_HEAD, PageId::NONE.0);
        disk.write_page(PageId::META, &mut meta).unwrap();
        BufferPool::new(disk, capacity)
    }

    #[test]
    fn allocate_and_access() {
        let mut pool = fresh_pool(16);
        let a = pool.allocate(PageKind::Heap).unwrap();
        let b = pool.allocate(PageKind::Blob).unwrap();
        assert_ne!(a, b);
        pool.with_page_mut(a, |p| p.put_u64(0, 11)).unwrap();
        pool.with_page_mut(b, |p| p.put_u64(0, 22)).unwrap();
        assert_eq!(pool.with_page(a, |p| p.get_u64(0)).unwrap(), 11);
        assert_eq!(pool.with_page(b, |p| p.get_u64(0)).unwrap(), 22);
        assert_eq!(pool.with_page(a, |p| p.kind()).unwrap(), PageKind::Heap);
    }

    #[test]
    fn free_list_reuses_pages() {
        let mut pool = fresh_pool(16);
        let a = pool.allocate(PageKind::Heap).unwrap();
        let _b = pool.allocate(PageKind::Heap).unwrap();
        pool.free_page(a).unwrap();
        let c = pool.allocate(PageKind::Blob).unwrap();
        assert_eq!(c, a, "freed page is reused first");
        assert_eq!(pool.with_page(c, |p| p.kind()).unwrap(), PageKind::Blob);
    }

    #[test]
    fn eviction_prefers_clean_lru() {
        let mut pool = fresh_pool(8);
        // Create 10 committed (clean) pages, flushing as we go so dirty
        // frames never exceed the capacity.
        let mut ids: Vec<PageId> = Vec::new();
        for i in 0..10u64 {
            let id = pool.allocate(PageKind::Heap).unwrap();
            pool.with_page_mut(id, |p| p.put_u64(0, i)).unwrap();
            pool.flush_dirty().unwrap();
            ids.push(id);
        }
        // Touch them again; the pool (cap 8) must evict to serve them all.
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(pool.with_page(id, |p| p.get_u64(0)).unwrap(), i as u64);
        }
        assert!(pool.stats().evictions > 0);
    }

    #[test]
    fn dirty_pages_never_stolen() {
        let mut pool = fresh_pool(8);
        let ids: Vec<PageId> = (0..8)
            .map(|_| pool.allocate(PageKind::Heap).unwrap())
            .collect();
        for &id in &ids {
            pool.with_page_mut(id, |p| p.put_u64(0, 9)).unwrap();
        }
        // Pool is full of dirty pages (+meta clean); allocating one more must
        // still work once — evicting the clean meta frame — then exhaust.
        let extra = pool.allocate(PageKind::Heap);
        match extra {
            Ok(_) => {
                assert!(matches!(
                    pool.allocate(PageKind::Heap),
                    Err(StorageError::PoolExhausted)
                ));
            }
            Err(StorageError::PoolExhausted) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn discard_dirty_rolls_back() {
        let mut pool = fresh_pool(16);
        let a = pool.allocate(PageKind::Heap).unwrap();
        pool.with_page_mut(a, |p| p.put_u64(0, 5)).unwrap();
        pool.flush_dirty().unwrap();
        // New txn: modify a and allocate b, then abort.
        pool.with_page_mut(a, |p| p.put_u64(0, 6)).unwrap();
        let b = pool.allocate(PageKind::Heap).unwrap();
        pool.discard_dirty();
        assert_eq!(pool.with_page(a, |p| p.get_u64(0)).unwrap(), 5);
        assert!(pool.with_page(b, |p| p.get_u64(0)).is_err());
        assert!(!pool.has_dirty());
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut pool = fresh_pool(16);
        let a = pool.allocate(PageKind::Heap).unwrap();
        pool.flush_dirty().unwrap();
        pool.clear_cache();
        pool.with_page(a, |_| ()).unwrap(); // miss
        pool.with_page(a, |_| ()).unwrap(); // hit
        let s = pool.stats();
        assert!(s.misses >= 1);
        assert!(s.hits >= 1);
    }
}
