//! The paging layer: a sharded, lock-striped read cache shared by every
//! reader, plus a private write-set buffer for the single writer.
//!
//! Reads are layered. The writer's [`BufferPool`] resolves a page as:
//!
//! 1. its own **write set** (pages dirtied by the in-flight transaction),
//! 2. the committed **overlay** of its base snapshot (pages committed since
//!    the last checkpoint, shared `Arc<Page>` images),
//! 3. the shared [`ReadLayer`]: a [`PageCache`] split into K lock-striped
//!    shards keyed by `PageId`, falling back to the data file.
//!
//! Concurrent snapshot readers use the same layers 2–3 through
//! [`SnapshotReader`](crate::snapshot::SnapshotReader), so no read ever
//! needs the writer lock, and no shard lock is ever held across disk I/O
//! for another shard.
//!
//! Access is closure-scoped ([`PageRead::with_page`] /
//! [`BufferPool::with_page_mut`]) so a page reference can never outlive one
//! call; that makes pin counts unnecessary. The write set is not evictable
//! (the WAL is redo-only, so uncommitted pages must never reach the data
//! file); a transaction that dirties more pages than the configured
//! capacity grows the set past it and counts the overshoot on
//! `storage.pool.overflow.count` instead of failing mid-transaction.
//!
//! Newly allocated pages live purely in the write set (`virtual_end` past
//! the committed end) until the owning transaction commits, so an abort
//! simply drops the write set and published state is untouched.

use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::page::{Page, PageId, PageKind, PAGE_SIZE};
use crate::snapshot::CommittedState;
use parking_lot::Mutex;
use rcmo_obs::{Counter, Metrics, Registry};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Body offset (within the meta page) of the free-list head pointer.
pub const META_FREE_HEAD: usize = 8;
/// Body offset (within a free page) of the next-free pointer.
const FREE_NEXT: usize = 0;

/// Closure-scoped read access to fixed-size pages.
///
/// Implemented by the writer's [`BufferPool`] and by snapshot readers, so
/// read-only structure walks (heap scans, B+tree lookups, BLOB reads) are
/// generic over where the bytes come from.
pub trait PageRead {
    /// Runs `f` with read access to page `id`.
    fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R>;
}

/// Cache statistics: a typed view over a paging metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Page requests served from memory (write set, overlay, or cache).
    pub hits: u64,
    /// Page requests that had to read the disk.
    pub misses: u64,
    /// Cached frames evicted to make room.
    pub evictions: u64,
    /// Pages allocated over the pool's lifetime.
    pub allocations: u64,
    /// Times a transaction's write set grew past the configured capacity.
    pub overflows: u64,
}

impl PoolStats {
    /// Reads the paging counters out of a metrics registry.
    pub fn from_registry(obs: &Registry) -> Self {
        PoolStats {
            hits: obs.read_counter("storage.pool.hit.count"),
            misses: obs.read_counter("storage.pool.miss.count"),
            evictions: obs.read_counter("storage.pool.eviction.count"),
            allocations: obs.read_counter("storage.pool.alloc.count"),
            overflows: obs.read_counter("storage.pool.overflow.count"),
        }
    }

    /// Field-wise sum. The write pool and the shared read layer keep
    /// separate registries; a database-wide view merges them.
    pub fn merged(self, other: PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            allocations: self.allocations + other.allocations,
            overflows: self.overflows + other.overflows,
        }
    }
}

#[derive(Debug)]
struct CacheEntry {
    page: Arc<Page>,
    /// Second-chance bit: set on every hit, cleared when the clock hand
    /// sweeps past the entry.
    referenced: bool,
}

#[derive(Debug, Default)]
struct CacheShard {
    map: HashMap<PageId, CacheEntry>,
    /// Clock ring over the resident ids: eviction pops the front, granting
    /// referenced entries one more lap at the back, so picking a victim is
    /// amortized O(1) instead of a scan over the whole stripe.
    ring: VecDeque<PageId>,
}

/// A cache of committed page images, split into lock-striped shards keyed
/// by a multiplicative hash of the page id. Each shard runs its own
/// clock/second-chance eviction, so concurrent readers only contend when
/// they touch the same stripe.
#[derive(Debug)]
pub(crate) struct PageCache {
    shards: Vec<Mutex<CacheShard>>,
    shard_capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl PageCache {
    pub(crate) fn new(shards: usize, total_frames: usize, obs: &Registry) -> PageCache {
        let shards = shards.max(1);
        PageCache {
            shard_capacity: (total_frames / shards).max(1),
            shards: (0..shards)
                .map(|_| Mutex::new(CacheShard::default()))
                .collect(),
            hits: obs.counter("storage.pool.hit.count"),
            misses: obs.counter("storage.pool.miss.count"),
            evictions: obs.counter("storage.pool.eviction.count"),
        }
    }

    fn shard(&self, id: PageId) -> &Mutex<CacheShard> {
        // Fibonacci hashing spreads sequential page ids across stripes.
        let h = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize;
        &self.shards[h % self.shards.len()]
    }

    pub(crate) fn get(&self, id: PageId) -> Option<Arc<Page>> {
        let mut shard = self.shard(id).lock();
        match shard.map.get_mut(&id) {
            Some(entry) => {
                entry.referenced = true;
                self.hits.inc();
                Some(Arc::clone(&entry.page))
            }
            None => None,
        }
    }

    /// Inserts (or refreshes) a committed image. A full stripe evicts via
    /// the clock ring: the hand clears referenced bits until it lands on an
    /// entry nobody touched since its last lap.
    pub(crate) fn insert(&self, id: PageId, page: Arc<Page>) {
        let mut guard = self.shard(id).lock();
        let shard = &mut *guard;
        if let Some(entry) = shard.map.get_mut(&id) {
            entry.page = page;
            entry.referenced = true;
            return;
        }
        while shard.map.len() >= self.shard_capacity {
            let Some(victim) = shard.ring.pop_front() else {
                break;
            };
            match shard.map.get_mut(&victim) {
                Some(e) if e.referenced => {
                    e.referenced = false;
                    shard.ring.push_back(victim);
                }
                Some(_) => {
                    shard.map.remove(&victim);
                    self.evictions.inc();
                }
                None => {}
            }
        }
        shard.map.insert(
            id,
            CacheEntry {
                page,
                referenced: true,
            },
        );
        shard.ring.push_back(id);
    }

    fn note_miss(&self) {
        self.misses.inc();
    }

    #[cfg(test)]
    pub(crate) fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

/// The shared read path below the committed overlay: the sharded
/// [`PageCache`] over the data file. One instance per database, shared by
/// the writer's pool and every snapshot reader via `Arc`.
#[derive(Debug)]
pub(crate) struct ReadLayer {
    pub(crate) disk: Mutex<DiskManager>,
    pub(crate) cache: PageCache,
    obs: Registry,
}

impl ReadLayer {
    pub(crate) fn new(disk: DiskManager, cache_shards: usize, cache_frames: usize) -> ReadLayer {
        let obs = Registry::new();
        let cache = PageCache::new(cache_shards, cache_frames, &obs);
        ReadLayer {
            disk: Mutex::new(disk),
            cache,
            obs,
        }
    }

    /// Reads a committed page image: cache first, then the data file. The
    /// disk lock is never held while touching a cache shard.
    pub(crate) fn read(&self, id: PageId) -> Result<Arc<Page>> {
        if let Some(page) = self.cache.get(id) {
            return Ok(page);
        }
        self.cache.note_miss();
        let page = self.disk.lock().read_page(id)?;
        let page = Arc::new(page);
        self.cache.insert(id, Arc::clone(&page));
        Ok(page)
    }

    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats::from_registry(&self.obs)
    }
}

/// The single writer's page buffer: exactly the write set of the in-flight
/// transaction, layered over a base committed snapshot and the shared
/// [`ReadLayer`].
#[derive(Debug)]
pub struct BufferPool {
    layer: Arc<ReadLayer>,
    base: Arc<CommittedState>,
    capacity: usize,
    /// The write set: every frame here belongs to the in-flight transaction.
    frames: HashMap<PageId, Page>,
    /// One past the highest allocated page id (≥ the committed end).
    virtual_end: u64,
    obs: Registry,
    hits: Counter,
    allocations: Counter,
    overflows: Counter,
}

impl BufferPool {
    /// A pool over the shared read layer, based on `base`, with a soft
    /// write-set capacity of `capacity` frames (minimum 1).
    pub(crate) fn new(
        layer: Arc<ReadLayer>,
        base: Arc<CommittedState>,
        capacity: usize,
    ) -> BufferPool {
        let obs = Registry::new();
        let hits = obs.counter("storage.pool.hit.count");
        let allocations = obs.counter("storage.pool.alloc.count");
        let overflows = obs.counter("storage.pool.overflow.count");
        BufferPool {
            virtual_end: base.num_pages,
            layer,
            base,
            capacity: capacity.max(1),
            frames: HashMap::new(),
            obs,
            hits,
            allocations,
            overflows,
        }
    }

    /// Test-only: a standalone pool over `disk` with a default read layer
    /// and an empty base snapshot.
    #[cfg(test)]
    pub(crate) fn for_tests(disk: DiskManager, capacity: usize) -> BufferPool {
        let num_pages = disk.num_pages();
        let layer = Arc::new(ReadLayer::new(disk, 4, 1024));
        BufferPool::new(
            layer,
            Arc::new(CommittedState::bootstrap(num_pages)),
            capacity,
        )
    }

    /// This pool's statistics (write-set side only; see
    /// [`PoolStats::merged`]).
    pub fn stats(&self) -> PoolStats {
        self.metrics()
    }

    /// One past the highest allocated page id.
    pub fn num_pages(&self) -> u64 {
        self.virtual_end
    }

    /// Ids of all write-set frames, sorted.
    pub fn dirty_ids(&self) -> Vec<PageId> {
        let mut ids: Vec<PageId> = self.frames.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Resolves a committed (non-write-set) page image.
    fn committed_page(&self, id: PageId) -> Result<Arc<Page>> {
        if let Some(page) = self.base.pages.get(&id) {
            self.hits.inc();
            return Ok(Arc::clone(page));
        }
        if id.0 >= self.base.num_pages {
            // Allocated by the in-flight transaction but missing from the
            // write set: the write set is never evicted, so this indicates
            // an engine bug.
            return Err(StorageError::Internal(format!(
                "allocated page {id} lost from the pool"
            )));
        }
        self.layer.read(id)
    }

    /// Admits a frame into the write set. The capacity is a soft cap: a
    /// transaction larger than the pool grows past it (counted on
    /// `storage.pool.overflow.count`) rather than failing mid-flight,
    /// because uncommitted pages can never be stolen to the data file under
    /// a redo-only WAL.
    fn admit(&mut self, id: PageId, page: Page) {
        if self.frames.len() >= self.capacity {
            self.overflows.inc();
        }
        self.frames.insert(id, page);
    }

    /// Runs `f` with read access to page `id`.
    pub fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        if id.0 >= self.virtual_end {
            return Err(StorageError::PageOutOfBounds(id.0));
        }
        if let Some(page) = self.frames.get(&id) {
            self.hits.inc();
            return Ok(f(page));
        }
        let page = self.committed_page(id)?;
        Ok(f(&page))
    }

    /// Runs `f` with write access to page `id`, copying it into the write
    /// set first if needed (copy-on-write from the committed image).
    pub fn with_page_mut<R>(&mut self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        if id.0 >= self.virtual_end {
            return Err(StorageError::PageOutOfBounds(id.0));
        }
        if !self.frames.contains_key(&id) {
            let page = (*self.committed_page(id)?).clone();
            self.admit(id, page);
        } else {
            self.hits.inc();
        }
        Ok(f(self.frames.get_mut(&id).expect("just admitted")))
    }

    /// The sealed image of a write-set page, for WAL logging.
    pub fn sealed_image(&mut self, id: PageId) -> Result<[u8; PAGE_SIZE]> {
        match self.frames.get_mut(&id) {
            Some(page) => Ok(*page.sealed_bytes()),
            None => Err(StorageError::Internal(format!(
                "sealed_image of non-dirty page {id}"
            ))),
        }
    }

    /// Allocates a page: pops the free list if possible, otherwise extends
    /// the virtual end. The new page exists only in the write set until
    /// commit.
    pub fn allocate(&mut self, kind: PageKind) -> Result<PageId> {
        self.allocations.inc();
        let free_head =
            self.with_page(PageId::META, |meta| PageId(meta.get_u64(META_FREE_HEAD)))?;
        if free_head.is_some() {
            let next = self.with_page(free_head, |p| PageId(p.get_u64(FREE_NEXT)))?;
            self.with_page_mut(PageId::META, |meta| meta.put_u64(META_FREE_HEAD, next.0))?;
            self.with_page_mut(free_head, |p| {
                *p = Page::new(kind);
            })?;
            return Ok(free_head);
        }
        let id = PageId(self.virtual_end);
        self.virtual_end += 1;
        self.admit(id, Page::new(kind));
        Ok(id)
    }

    /// Returns a page to the free list.
    pub fn free_page(&mut self, id: PageId) -> Result<()> {
        if id == PageId::META {
            return Err(StorageError::Internal("cannot free the meta page".into()));
        }
        let old_head = self.with_page(PageId::META, |meta| meta.get_u64(META_FREE_HEAD))?;
        self.with_page_mut(id, |p| {
            *p = Page::new(PageKind::Free);
            p.put_u64(FREE_NEXT, old_head);
        })?;
        self.with_page_mut(PageId::META, |meta| meta.put_u64(META_FREE_HEAD, id.0))?;
        Ok(())
    }

    /// Drains the write set (sorted by page id, images shared) for publish.
    pub(crate) fn take_write_set(&mut self) -> Vec<(PageId, Arc<Page>)> {
        let mut out: Vec<(PageId, Arc<Page>)> = self
            .frames
            .drain()
            .map(|(id, page)| (id, Arc::new(page)))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Drops the write set and rolls the virtual end back to the committed
    /// end. Called by abort.
    pub fn discard_dirty(&mut self) {
        self.frames.clear();
        self.virtual_end = self.base.num_pages;
    }

    /// `true` if the write set holds uncommitted changes.
    pub fn has_dirty(&self) -> bool {
        !self.frames.is_empty()
    }

    /// Rebases the (empty) pool onto a newly published committed state.
    pub(crate) fn set_base(&mut self, base: Arc<CommittedState>) {
        debug_assert!(self.frames.is_empty(), "rebase with a live write set");
        self.virtual_end = base.num_pages;
        self.base = base;
    }

    /// The base committed snapshot this pool reads through.
    pub(crate) fn base(&self) -> &Arc<CommittedState> {
        &self.base
    }
}

impl PageRead for BufferPool {
    fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        BufferPool::with_page(self, id, f)
    }
}

impl Metrics for BufferPool {
    type View = PoolStats;

    fn obs(&self) -> &Registry {
        &self.obs
    }

    fn metrics(&self) -> PoolStats {
        PoolStats::from_registry(&self.obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_pool(capacity: usize) -> BufferPool {
        let mut disk = DiskManager::in_memory();
        let mut meta = Page::new(PageKind::Meta);
        meta.put_u64(META_FREE_HEAD, PageId::NONE.0);
        disk.write_page(PageId::META, &mut meta).unwrap();
        BufferPool::for_tests(disk, capacity)
    }

    /// Publishes the pool's write set as a new committed version, as the
    /// database's commit path does.
    fn publish(pool: &mut BufferPool) {
        let old = Arc::clone(pool.base());
        let num_pages = pool.num_pages();
        let mut pages = old.pages.clone();
        for (id, page) in pool.take_write_set() {
            pages.insert(id, page);
        }
        pool.set_base(Arc::new(CommittedState {
            csn: old.csn + 1,
            pages,
            catalog: Arc::clone(&old.catalog),
            num_pages,
        }));
    }

    #[test]
    fn allocate_and_access() {
        let mut pool = fresh_pool(16);
        let a = pool.allocate(PageKind::Heap).unwrap();
        let b = pool.allocate(PageKind::Blob).unwrap();
        assert_ne!(a, b);
        pool.with_page_mut(a, |p| p.put_u64(0, 11)).unwrap();
        pool.with_page_mut(b, |p| p.put_u64(0, 22)).unwrap();
        assert_eq!(pool.with_page(a, |p| p.get_u64(0)).unwrap(), 11);
        assert_eq!(pool.with_page(b, |p| p.get_u64(0)).unwrap(), 22);
        assert_eq!(pool.with_page(a, |p| p.kind()).unwrap(), PageKind::Heap);
    }

    #[test]
    fn free_list_reuses_pages() {
        let mut pool = fresh_pool(16);
        let a = pool.allocate(PageKind::Heap).unwrap();
        let _b = pool.allocate(PageKind::Heap).unwrap();
        pool.free_page(a).unwrap();
        let c = pool.allocate(PageKind::Blob).unwrap();
        assert_eq!(c, a, "freed page is reused first");
        assert_eq!(pool.with_page(c, |p| p.kind()).unwrap(), PageKind::Blob);
    }

    #[test]
    fn write_set_survives_publish_via_overlay() {
        let mut pool = fresh_pool(16);
        let a = pool.allocate(PageKind::Heap).unwrap();
        pool.with_page_mut(a, |p| p.put_u64(0, 77)).unwrap();
        publish(&mut pool);
        assert!(!pool.has_dirty());
        // The committed image now comes from the base overlay, not disk.
        assert_eq!(pool.with_page(a, |p| p.get_u64(0)).unwrap(), 77);
        // Mutating it again copies on write; the overlay keeps the old image.
        pool.with_page_mut(a, |p| p.put_u64(0, 78)).unwrap();
        assert_eq!(pool.base().pages[&a].get_u64(0), 77);
        pool.discard_dirty();
        assert_eq!(pool.with_page(a, |p| p.get_u64(0)).unwrap(), 77);
    }

    #[test]
    fn overflowing_transaction_grows_with_warning() {
        let mut pool = fresh_pool(4);
        // One transaction dirties 64 pages in a pool of 4: every page must
        // stay addressable (no eviction, no error), with the overshoot
        // counted.
        let ids: Vec<PageId> = (0..64)
            .map(|_| pool.allocate(PageKind::Heap).unwrap())
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |p| p.put_u64(0, i as u64)).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(pool.with_page(id, |p| p.get_u64(0)).unwrap(), i as u64);
        }
        let stats = pool.stats();
        assert!(
            stats.overflows > 0,
            "overshoot must be observable: {stats:?}"
        );
        assert_eq!(pool.dirty_ids().len(), 64);
    }

    #[test]
    fn discard_dirty_rolls_back() {
        let mut pool = fresh_pool(16);
        let a = pool.allocate(PageKind::Heap).unwrap();
        pool.with_page_mut(a, |p| p.put_u64(0, 5)).unwrap();
        publish(&mut pool);
        // New txn: modify a and allocate b, then abort.
        pool.with_page_mut(a, |p| p.put_u64(0, 6)).unwrap();
        let b = pool.allocate(PageKind::Heap).unwrap();
        pool.discard_dirty();
        assert_eq!(pool.with_page(a, |p| p.get_u64(0)).unwrap(), 5);
        assert!(pool.with_page(b, |p| p.get_u64(0)).is_err());
        assert!(!pool.has_dirty());
    }

    #[test]
    fn cache_shards_hit_miss_and_evict() {
        // A tiny 2-shard × 2-frame cache over a 20-page disk.
        let mut disk = DiskManager::in_memory();
        for i in 0..20u64 {
            let mut p = Page::new(if i == 0 {
                PageKind::Meta
            } else {
                PageKind::Heap
            });
            p.put_u64(0, i);
            disk.write_page(PageId(i), &mut p).unwrap();
        }
        let layer = ReadLayer::new(disk, 2, 4);
        assert_eq!(layer.cache.num_shards(), 2);
        assert_eq!(layer.read(PageId(3)).unwrap().get_u64(0), 3); // miss
        assert_eq!(layer.read(PageId(3)).unwrap().get_u64(0), 3); // hit
        let s = layer.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        // Stream every page through: the 4-frame cache must evict.
        for i in 0..20u64 {
            assert_eq!(layer.read(PageId(i)).unwrap().get_u64(0), i);
        }
        assert!(layer.stats().evictions > 0);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut pool = fresh_pool(16);
        let a = pool.allocate(PageKind::Heap).unwrap();
        publish(&mut pool);
        pool.with_page(a, |_| ()).unwrap(); // overlay hit
        pool.with_page(a, |_| ()).unwrap();
        let s = pool.stats().merged(pool.layer.stats());
        assert!(s.hits >= 2);
        assert!(s.allocations >= 1);
    }
}
