//! The workspace-level error type: every subsystem error converts into
//! [`Error`] via `From`, so application code (examples, experiments,
//! integration tests) can use one `Result` and `?` across layer boundaries
//! instead of `map_err` chains.

use std::fmt;

/// Any error the conferencing stack can raise, tagged by subsystem.
///
/// All subsystem enums are `#[non_exhaustive]`, and so is this one: new
/// variants may appear without a major version bump.
///
/// ```
/// fn roundtrip() -> rcmo::Result<()> {
///     use rcmo::imaging::GrayImage;
///     // ImagingError, CodecError, and CoreError all convert via `?`.
///     let img = GrayImage::from_fn(32, 32, |x, y| ((x / 8 + y / 8) % 2 * 255) as u8)?;
///     let stream = rcmo::codec::encode(&img, &rcmo::codec::EncoderConfig::default())?;
///     let decoded = rcmo::codec::decode(&stream)?; // CodecError -> rcmo::Error
///     assert_eq!(decoded.width(), 32);
///     let doc = rcmo::core::MultimediaDocument::new("demo");
///     doc.validate()?; // CoreError -> rcmo::Error
///     Ok(())
/// }
/// roundtrip().unwrap();
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// CP-network, document, or presentation failure.
    Core(rcmo_core::CoreError),
    /// Storage-engine failure.
    Storage(rcmo_storage::StorageError),
    /// Multimedia-database failure.
    Media(rcmo_mediadb::MediaError),
    /// Imaging failure.
    Imaging(rcmo_imaging::ImagingError),
    /// Layered-codec failure.
    Codec(rcmo_codec::CodecError),
    /// Interaction-server failure.
    Server(rcmo_server::ServerError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "core: {e}"),
            Error::Storage(e) => write!(f, "storage: {e}"),
            Error::Media(e) => write!(f, "mediadb: {e}"),
            Error::Imaging(e) => write!(f, "imaging: {e}"),
            Error::Codec(e) => write!(f, "codec: {e}"),
            Error::Server(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Storage(e) => Some(e),
            Error::Media(e) => Some(e),
            Error::Imaging(e) => Some(e),
            Error::Codec(e) => Some(e),
            Error::Server(e) => Some(e),
        }
    }
}

impl From<rcmo_core::CoreError> for Error {
    fn from(e: rcmo_core::CoreError) -> Error {
        Error::Core(e)
    }
}

impl From<rcmo_storage::StorageError> for Error {
    fn from(e: rcmo_storage::StorageError) -> Error {
        Error::Storage(e)
    }
}

impl From<rcmo_mediadb::MediaError> for Error {
    fn from(e: rcmo_mediadb::MediaError) -> Error {
        Error::Media(e)
    }
}

impl From<rcmo_imaging::ImagingError> for Error {
    fn from(e: rcmo_imaging::ImagingError) -> Error {
        Error::Imaging(e)
    }
}

impl From<rcmo_codec::CodecError> for Error {
    fn from(e: rcmo_codec::CodecError) -> Error {
        Error::Codec(e)
    }
}

impl From<rcmo_server::ServerError> for Error {
    fn from(e: rcmo_server::ServerError) -> Error {
        Error::Server(e)
    }
}

/// Workspace-level result alias.
pub type Result<T> = std::result::Result<T, Error>;
