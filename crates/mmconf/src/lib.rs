//! # rcmo — remote conferencing with multimedia objects
//!
//! The umbrella crate of this workspace: a faithful, fully tested Rust
//! reproduction of *Remote Conferencing with Multimedia Objects* (Gudes,
//! Domshlak & Orlov, EDBT 2002 Workshops) — a client/server system for
//! cooperative browsing of multimedia documents whose presentation is
//! driven by CP-network preferences.
//!
//! ```
//! use rcmo::core::{MultimediaDocument, PresentationEngine, MediaRef, PresentationForm, FormKind};
//!
//! // Author a tiny medical record with a preference network.
//! let mut doc = MultimediaDocument::new("Patient 001");
//! let ct = doc
//!     .add_primitive(
//!         doc.root(),
//!         "CT image",
//!         MediaRef::None,
//!         vec![
//!             PresentationForm::new("flat", FormKind::Flat, 500_000),
//!             PresentationForm::hidden(),
//!         ],
//!     )
//!     .unwrap();
//! doc.validate().unwrap();
//!
//! let engine = PresentationEngine::new();
//! let p = engine.default_presentation(&doc);
//! assert!(p.is_visible(ct));
//! ```
//!
//! The subsystem crates are re-exported under short names:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`core`] | `rcmo-core` | CP-nets, documents, presentation, prefetch |
//! | [`storage`] | `rcmo-storage` | page/WAL/B+tree/BLOB storage engine |
//! | [`mediadb`] | `rcmo-mediadb` | the Figure-7 object-relational schema |
//! | [`imaging`] | `rcmo-imaging` | images, phantoms, annotations, segmentation |
//! | [`codec`] | `rcmo-codec` | multi-layered progressive image codec |
//! | [`audio`] | `rcmo-audio` | CD-HMM voice processing |
//! | [`server`] | `rcmo-server` | rooms, deltas, the interaction server |
//! | [`netsim`] | `rcmo-netsim` | bandwidth/buffer simulation, prefetching |
//! | [`obs`] | `rcmo-obs` | unified metrics: registries, counters, histograms |
//!
//! Cross-layer fallibility is unified too: every subsystem error converts
//! into [`Error`] with `?` (see [`Result`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rcmo_audio as audio;
pub use rcmo_codec as codec;
pub use rcmo_core as core;
pub use rcmo_imaging as imaging;
pub use rcmo_mediadb as mediadb;
pub use rcmo_netsim as netsim;
pub use rcmo_obs as obs;
pub use rcmo_server as server;
pub use rcmo_storage as storage;

mod error;

pub use error::{Error, Result};
