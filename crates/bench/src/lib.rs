//! Shared workload builders for the Criterion benches and the
//! figure-regeneration `experiments` binary.

#![forbid(unsafe_code)]

use rcmo_core::{ComponentId, FormKind, MediaRef, MultimediaDocument, PresentationForm};
use rcmo_mediadb::{AccessLevel, DocumentObject, ImageObject, MediaDb};
use rcmo_server::{ClusterConfig, ClusterFrontend, InteractionServer};

/// Builds a synthetic medical record: `folders` composites under the root,
/// each holding `leaves` primitives with flat/icon/hidden forms, plus the
/// paper's CT↔X-ray conditional preference inside the first folder.
pub fn medical_document(folders: usize, leaves: usize) -> MultimediaDocument {
    let mut doc = MultimediaDocument::new("Patient record");
    let mut first_two: Vec<ComponentId> = Vec::new();
    for f in 0..folders {
        let folder = doc
            .add_composite(doc.root(), &format!("folder-{f}"))
            .expect("root is composite");
        for l in 0..leaves {
            let cost = 40_000 + 20_000 * ((f * leaves + l) as u64 % 5);
            let c = doc
                .add_primitive(
                    folder,
                    &format!("item-{f}-{l}"),
                    MediaRef::None,
                    vec![
                        PresentationForm::new("flat", FormKind::Flat, cost),
                        PresentationForm::new("icon", FormKind::Icon, 3_000),
                        PresentationForm::hidden(),
                    ],
                )
                .expect("valid primitive");
            if first_two.len() < 2 {
                first_two.push(c);
            }
        }
    }
    if let [ct, xray] = first_two[..] {
        doc.author_parents(xray, &[ct]).expect("valid parents");
        doc.author_preference(xray, &[(ct, 0)], &[1, 0, 2]).unwrap();
        doc.author_preference(xray, &[(ct, 1)], &[1, 0, 2]).unwrap();
        doc.author_preference(xray, &[(ct, 2)], &[0, 1, 2]).unwrap();
    }
    doc.validate().expect("valid document");
    doc
}

/// Sets up a media database with `users` write-enabled users named
/// `user-0..`, one stored CT image, and one stored document; returns
/// `(db, document id, image id)`.
pub fn consultation_db(users: usize) -> (MediaDb, u64, u64) {
    let db = MediaDb::in_memory().expect("in-memory db");
    for u in 0..users {
        db.put_user("admin", &format!("user-{u}"), AccessLevel::Write)
            .expect("admin can add users");
    }
    let ct = rcmo_imaging::ct_phantom(64, 2, 1).expect("phantom");
    let image_id = db
        .insert_image(
            "admin",
            &ImageObject {
                name: "ct".into(),
                quality: 0,
                texts: String::new(),
                cm: Vec::new(),
                data: ct.to_bytes(),
            },
        )
        .expect("image stored");
    let doc = medical_document(2, 3);
    let doc_id = db
        .insert_document(
            "admin",
            &DocumentObject {
                title: doc.title().into(),
                data: doc.to_bytes(),
            },
        )
        .expect("document stored");
    (db, doc_id, image_id)
}

/// [`consultation_db`] wrapped in a single interaction server; returns
/// `(server, document id, image id)`.
pub fn consultation_fixture(users: usize) -> (InteractionServer, u64, u64) {
    let (db, doc_id, image_id) = consultation_db(users);
    (InteractionServer::new(db), doc_id, image_id)
}

/// [`consultation_db`] behind a sharded cluster frontend; returns
/// `(cluster, document id, image id)`.
pub fn cluster_fixture(users: usize, config: ClusterConfig) -> (ClusterFrontend, u64, u64) {
    let (db, doc_id, image_id) = consultation_db(users);
    (ClusterFrontend::new(db, config), doc_id, image_id)
}
