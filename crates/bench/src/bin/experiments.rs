//! Regenerates the substance of every figure in the paper (the paper has no
//! quantitative tables; see DESIGN.md §4 for the figure → experiment map).
//!
//! Run with `cargo run -p rcmo-bench --bin experiments --release`.
//! Section ids as arguments select a subset (`experiments e13 e14`); no
//! arguments runs everything. Each section prints a self-contained report;
//! EXPERIMENTS.md records the outputs and compares them with what the paper
//! shows qualitatively.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcmo::obs::{MetricsSnapshot, Registry};
use rcmo_audio::features::FeatureConfig;
use rcmo_audio::segment::{segment_audio, SegmenterModel};
use rcmo_audio::speaker::{SpeakerModel, SpeakerSpotter};
use rcmo_audio::synth::{self, SynthConfig, VoiceProfile};
use rcmo_audio::wordspot::{roc, WordSpotter, WordSpotterConfig};
use rcmo_bench::{consultation_fixture, medical_document};
use rcmo_codec::{decode_prefix, decode_resolution, encode, EncoderConfig};
use rcmo_core::cpnet::samples::{chain_net, figure2_net, tree_net};
use rcmo_core::cpnet::{improving_flips, outcome_rank_vector};
use rcmo_core::{
    ComponentId, PartialAssignment, PresentationEngine, ReconfigEngine, Value, VarId, ViewerChoice,
    ViewerSession,
};
use rcmo_imaging::{ct_phantom, psnr, segment_image, LineElement, TextElement};
use rcmo_netsim::{simulate_session, FaultSpec, Link, PolicyKind, SessionConfig};
use rcmo_server::{Action, ClientConnection, JoinRequest, Resync, RoomConfig, RoomEvent};
use std::time::Instant;

fn section(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id} — {title}");
    println!("================================================================");
}

fn main() {
    let t0 = Instant::now();
    let selected: Vec<String> = std::env::args()
        .skip(1)
        .map(|a| a.to_ascii_lowercase())
        .collect();
    let all: [(&str, fn()); 22] = [
        ("e1", e1_architecture),
        ("e2", e2_cpnet_example),
        ("e3", e3_usecases),
        ("e4", e4_client_view),
        ("e5", e5_ood),
        ("e6", e6_schema),
        ("e7", e7_room),
        ("e8", e8_multires),
        ("e9", e9_speaker),
        ("e10", e10_prefetch),
        ("e11", e11_updates),
        ("e12", e12_ablations),
        ("e13", e13_fault_tolerance),
        ("e14", e14_observability),
        ("e15", e15_reconfig),
        ("e16", e16_crash),
        ("e17", e17_concurrency),
        ("e18", e18_cluster),
        ("e19", e19_fanout),
        ("e20", e20_storage_scale),
        ("e21", e21_sim),
        ("e22", e22_delivery),
    ];
    if let Some(bad) = selected.iter().find(|s| !all.iter().any(|(id, _)| id == s)) {
        eprintln!(
            "unknown section '{bad}'; valid: {}",
            all.map(|(id, _)| id).join(" ")
        );
        std::process::exit(2);
    }
    for (id, run) in all {
        if selected.is_empty() || selected.iter().any(|s| s == id) {
            run();
        }
    }
    println!(
        "\nall experiments completed in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}

/// E1 (Fig 1): end-to-end architecture — clients → interaction server →
/// database; propagation cost vs. number of partners.
fn e1_architecture() {
    section(
        "E1",
        "Fig 1: architecture flow and propagation vs. partners",
    );
    println!(
        "{:>9} {:>12} {:>14} {:>16}",
        "partners", "events", "bytes", "bytes/partner"
    );
    for partners in [2usize, 4, 8, 16, 32] {
        let (srv, doc_id, image_id) = consultation_fixture(partners);
        let room = srv.create_room("user-0", "e1", doc_id).unwrap();
        let conns: Vec<_> = (0..partners)
            .map(|u| srv.join_default(room, &format!("user-{u}")).unwrap())
            .collect();
        srv.open_image(room, "user-0", image_id).unwrap();
        // 50 annotations from one partner, everyone receives deltas.
        for i in 0..50i64 {
            srv.act(
                room,
                "user-0",
                Action::AddLine {
                    object: image_id,
                    element: LineElement {
                        x0: i % 64,
                        y0: 0,
                        x1: 63,
                        y1: i % 64,
                        intensity: 200,
                    },
                },
            )
            .unwrap();
        }
        let stats = srv.room_stats(room).unwrap();
        println!(
            "{:>9} {:>12} {:>14} {:>16.1}",
            partners,
            stats.events_delivered,
            stats.bytes_delivered,
            stats.bytes_delivered as f64 / partners as f64
        );
        drop(conns);
    }
    println!("(delta size is constant, so total bytes grow linearly with partners —");
    println!(" the hierarchical-delta design the paper claims in §5.3)");
}

/// E2 (Fig 2): the example CP-network, its CPT semantics, optimal outcome,
/// and optimal completions under every singleton of evidence.
fn e2_cpnet_example() {
    section("E2", "Fig 2: the example CP-network c1..c5");
    let (net, vars) = figure2_net();
    let best = net.optimal_outcome();
    println!("optimal outcome: {}", net.describe_outcome(&best));
    println!(
        "rank vector    : {:?} (all zeros = every CPT row satisfied)",
        outcome_rank_vector(&net, &best)
    );
    assert!(improving_flips(&net, &best).is_empty());
    println!("\noptimal completions of singleton evidence:");
    for (i, &v) in vars.iter().enumerate() {
        for val in 0..2u16 {
            let mut ev = PartialAssignment::empty(net.len());
            ev.set(v, Value(val));
            let o = net.optimal_completion(&ev);
            println!("  c{}={}  ->  {}", i + 1, val + 1, net.describe_outcome(&o));
        }
    }
    let ordered: Vec<_> = net
        .outcomes_by_preference(&PartialAssignment::empty(net.len()))
        .take(5)
        .collect();
    println!("\ntop-5 outcomes by preference:");
    for (rank, o) in ordered.iter().enumerate() {
        println!("  #{rank}: {}", net.describe_outcome(o));
    }
}

/// E3 (Figs 3+4): retrieve-document and update-presentation use cases, with
/// reconfiguration latency vs. document size.
fn e3_usecases() {
    section("E3", "Figs 3/4: use cases + reconfiguration latency");
    println!("use case (a) retrieve document:");
    println!("  client -> server: request document");
    println!("  server -> db    : fetch BLOB, deserialize structure + CP-net");
    println!("  server          : defaultPresentation() = optimal outcome");
    println!("  server -> client: presentation specification");
    println!("use case (b) update presentation:");
    println!("  client -> server: viewer choice (component, form)");
    println!("  server          : reconfigPresentation(eventList) = optimal completion");
    println!("  server -> client: updated presentation\n");
    println!(
        "{:>12} {:>14} {:>16}",
        "components", "default (µs)", "reconfig (µs)"
    );
    let engine = PresentationEngine::new();
    for (folders, leaves) in [(2usize, 4usize), (4, 8), (8, 16), (16, 32), (32, 32)] {
        let doc = medical_document(folders, leaves);
        let mut session = ViewerSession::new("e3");
        session
            .choose(
                &doc,
                ViewerChoice {
                    component: ComponentId(2),
                    form: 1,
                },
            )
            .unwrap();
        let reps = 200;
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(engine.default_presentation(&doc));
        }
        let default_us = t.elapsed().as_micros() as f64 / reps as f64;
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(engine.presentation_for(&doc, &session).unwrap());
        }
        let reconfig_us = t.elapsed().as_micros() as f64 / reps as f64;
        println!(
            "{:>12} {:>14.1} {:>16.1}",
            doc.num_components(),
            default_us,
            reconfig_us
        );
    }
    println!("(linear in document size: one topological sweep per query)");
}

/// E4 (Fig 5): the client GUI panes — hierarchy outline plus per-viewer
/// content after a scripted interaction.
fn e4_client_view() {
    section("E4", "Fig 5: client view (hierarchy pane + content pane)");
    let doc = medical_document(2, 2);
    println!("hierarchy pane:\n{}", doc.outline());
    let engine = PresentationEngine::new();
    let mut session = ViewerSession::new("viewer-1");
    println!("content pane (default):");
    print!("{}", engine.default_presentation(&doc).render(&doc));
    session
        .choose(
            &doc,
            ViewerChoice {
                component: ComponentId(2),
                form: 2,
            },
        )
        .unwrap();
    println!("\ncontent pane (after the viewer hides item-0-0):");
    print!(
        "{}",
        engine
            .presentation_for(&doc, &session)
            .unwrap()
            .render(&doc)
    );
}

/// E5 (Fig 6): the multimedia-component class structure and its invariants.
fn e5_ood() {
    section("E5", "Fig 6: MultimediaComponent OOD invariants");
    let doc = medical_document(3, 3);
    let mut composites = 0;
    let mut primitives = 0;
    for c in doc.iter_depth_first() {
        match doc.kind(c).unwrap() {
            rcmo_core::ComponentKind::Composite => {
                composites += 1;
                assert_eq!(
                    doc.forms(c).unwrap().len(),
                    2,
                    "composite domains are binary"
                );
            }
            rcmo_core::ComponentKind::Primitive => {
                primitives += 1;
                assert!(!doc.forms(c).unwrap().is_empty());
            }
        }
    }
    println!("components: {composites} composite (binary domains), {primitives} primitive");
    println!("document validates: {:?}", doc.validate().is_ok());
    println!("getContent/defaultPresentation/reconfigPresentation exercised in E3/E4");
}

/// E6 (Fig 7): the database schema, object storage, and engine throughput.
fn e6_schema() {
    section("E6", "Fig 7: multimedia object schema + storage engine");
    let db = rcmo_mediadb::MediaDb::in_memory().unwrap();
    println!("master table MULTIMEDIA_OBJECTS_TABLE:");
    println!(
        "{:>4} {:<10} {:<28} {:<12} OBJECTTABLES",
        "ID", "FLD_NAME", "FLD_MIME", "ACCESSTYPE"
    );
    for (i, t) in db.media_types().unwrap().iter().enumerate() {
        println!(
            "{:>4} {:<10} {:<28} {:<12} {}",
            i + 1,
            t.name,
            t.mime,
            t.access_type,
            t.object_table
        );
    }
    // Store one object per type and report sizes.
    let img = ct_phantom(128, 2, 6).unwrap();
    let stream = encode(&img, &EncoderConfig::default()).unwrap();
    let image_id = db
        .insert_image(
            "admin",
            &rcmo_mediadb::ImageObject {
                name: "ct".into(),
                quality: 1,
                texts: String::new(),
                cm: Vec::new(),
                data: stream.clone(),
            },
        )
        .unwrap();
    let audio_samples = synth::babble(&VoiceProfile::male("m"), 1.0, &SynthConfig::default());
    let audio_bytes: Vec<u8> = audio_samples
        .iter()
        .flat_map(|s| ((s * 32767.0) as i16).to_le_bytes())
        .collect();
    let audio_id = db
        .insert_audio(
            "admin",
            &rcmo_mediadb::AudioObject {
                filename: "consult.pcm".into(),
                sectors: vec![],
                data: audio_bytes.clone(),
            },
        )
        .unwrap();
    println!("\nstored objects:");
    println!(
        "  Image  id {image_id}: {} bytes (layered stream)",
        stream.len()
    );
    println!(
        "  Audio  id {audio_id}: {} bytes (1s PCM)",
        audio_bytes.len()
    );
    // Throughput micro-measurements.
    let raw = db.database();
    let t = Instant::now();
    let n = 2_000u64;
    {
        let mut tx = raw.begin().unwrap();
        tx.create_table(
            "E6_BENCH",
            rcmo_storage::Schema::new(vec![
                rcmo_storage::Column::new("ID", rcmo_storage::ColumnType::U64),
                rcmo_storage::Column::new("NAME", rcmo_storage::ColumnType::Text),
            ])
            .unwrap(),
        )
        .unwrap();
        for i in 0..n {
            tx.insert(
                "E6_BENCH",
                vec![
                    rcmo_storage::RowValue::Null,
                    rcmo_storage::RowValue::Text(format!("row{i}")),
                ],
            )
            .unwrap();
        }
        tx.commit().unwrap();
    }
    let insert_us = t.elapsed().as_micros() as f64 / n as f64;
    let t = Instant::now();
    {
        let mut tx = raw.begin().unwrap();
        for i in 1..=n {
            std::hint::black_box(tx.get("E6_BENCH", i).unwrap());
        }
    }
    let get_us = t.elapsed().as_micros() as f64 / n as f64;
    println!("\nengine: insert {insert_us:.1} µs/row, indexed get {get_us:.1} µs/row (in-memory)");
    let stats = raw.pool_stats();
    println!(
        "buffer pool: {} hits / {} misses / {} evictions",
        stats.hits, stats.misses, stats.evictions
    );
}

/// E7 (Fig 8): a shared room session — annotations, freeze conflicts, and
/// convergence of all partners on one change log.
fn e7_room() {
    section("E7", "Fig 8: shared room session");
    let (srv, doc_id, image_id) = consultation_fixture(3);
    let room = srv.create_room("user-0", "tumor board", doc_id).unwrap();
    let conns: Vec<_> = (0..3)
        .map(|u| srv.join_default(room, &format!("user-{u}")).unwrap())
        .collect();
    srv.open_image(room, "user-0", image_id).unwrap();
    srv.act(room, "user-0", Action::Freeze { object: image_id })
        .unwrap();
    let blocked = srv.act(
        room,
        "user-1",
        Action::AddText {
            object: image_id,
            element: TextElement {
                x: 5,
                y: 5,
                text: "NO".into(),
                intensity: 255,
                scale: 1,
            },
        },
    );
    println!(
        "user-1 annotating a frozen object -> {:?}",
        blocked.err().map(|e| e.to_string())
    );
    srv.act(
        room,
        "user-0",
        Action::AddText {
            object: image_id,
            element: TextElement {
                x: 30,
                y: 30,
                text: "LESION".into(),
                intensity: 255,
                scale: 1,
            },
        },
    )
    .unwrap();
    srv.act(room, "user-0", Action::Release { object: image_id })
        .unwrap();
    srv.act(
        room,
        "user-1",
        Action::AddLine {
            object: image_id,
            element: LineElement {
                x0: 0,
                y0: 0,
                x1: 63,
                y1: 63,
                intensity: 240,
            },
        },
    )
    .unwrap();
    srv.act(
        room,
        "user-2",
        Action::Chat {
            text: "seen, agreed".into(),
        },
    )
    .unwrap();
    let rendered = srv.render_object(room, image_id).unwrap();
    println!(
        "rendered shared image: {}x{}, {} annotation elements",
        rendered.width(),
        rendered.height(),
        srv.object_elements(room, image_id).unwrap()
    );
    // Convergence: the common tail of every client's stream is identical.
    let logs: Vec<Vec<_>> = conns
        .iter()
        .map(|c| c.events.try_iter().collect())
        .collect();
    let n = logs.iter().map(|l| l.len()).min().unwrap();
    let converged = logs
        .windows(2)
        .all(|w| w[0][w[0].len() - n..] == w[1][w[1].len() - n..]);
    println!(
        "all {} partners converged on one event order: {converged}",
        logs.len()
    );
    println!(
        "change buffer length: {}",
        srv.change_log_len(room).unwrap()
    );
}

/// E8 (Fig 9): multi-resolution views of the same encoded CT image, and the
/// rate/quality ladder of the layered codec.
fn e8_multires() {
    section(
        "E8",
        "Fig 9: multi-resolution views from one layered stream",
    );
    let ct = ct_phantom(256, 3, 5).unwrap();
    let cfg = EncoderConfig::default();
    let stream = encode(&ct, &cfg).unwrap();
    let info = rcmo_codec::layered::info(&stream).unwrap();
    let raw = (ct.width() * ct.height()) as f64;
    println!(
        "source {}x{} | stream {} bytes | {:.3} bpp",
        ct.width(),
        ct.height(),
        stream.len(),
        8.0 * stream.len() as f64 / raw
    );
    println!("\nlayer ladder (progressive prefixes):");
    println!(
        "{:>7} {:>10} {:>8} {:>10}",
        "layers", "bytes", "bpp", "PSNR dB"
    );
    for k in 0..info.layer_bytes.len() {
        let cut = info.prefix_for_layers(k);
        let (img, used) = decode_prefix(&stream[..cut]).unwrap();
        println!(
            "{:>7} {:>10} {:>8.3} {:>10.2}",
            used,
            cut,
            8.0 * cut as f64 / raw,
            psnr(&ct, &img)
        );
    }
    println!("\nresolution ladder (same stream, different partners):");
    println!("{:>6} {:>12}", "drop", "view");
    for drop in 0..=3usize {
        let img = decode_resolution(&stream, drop).unwrap();
        println!("{:>6} {:>9}x{}", drop, img.width(), img.height());
    }
    // Segmentation interacts with the codec: segmenting a decoded base
    // layer still finds the lesions.
    let (base, _) = decode_prefix(&stream[..info.prefix_for_layers(0)]).unwrap();
    let seg_full = segment_image(&ct, 8).num_segments();
    let seg_base = segment_image(&base, 8).num_segments();
    println!("\nsegments on original: {seg_full}, on base layer: {seg_base}");
}

/// E9 (Fig 10): speaker identification on a two-speaker conversation, plus
/// the word-spotting detection curve.
fn e9_speaker() {
    section("E9", "Fig 10: speaker identification + word spotting");
    let features = FeatureConfig::default();
    let alice = VoiceProfile::female("alice");
    let bob = VoiceProfile::male("bob");
    let track = synth::conversation(
        &[alice.clone(), bob.clone()],
        &[(0, 1.5), (1, 1.2), (0, 0.9), (1, 1.4)],
        &SynthConfig {
            seed: 424_242,
            ..SynthConfig::default()
        },
    );
    let spotter = SpeakerSpotter::new(
        vec![
            SpeakerModel::enroll_synthetic(&alice, 2.0, &features, 21),
            SpeakerModel::enroll_synthetic(&bob, 2.0, &features, 22),
        ],
        features,
    );
    println!("speaker turns (ground truth: alice, bob, alice, bob):");
    for t in spotter.turns(&track.samples) {
        let name = t.speaker.map(|i| spotter.speaker_names()[i]).unwrap_or("?");
        println!(
            "  frames {:>4}..{:<4} {:8} margin {:+.1}",
            t.frames.start, t.frames.end, name, t.confidence
        );
    }
    let acc = spotter.window_accuracy(&track.samples, |sample| {
        match track.label_at(sample.min(track.len() - 1)) {
            Some("alice") => Some(0),
            Some("bob") => Some(1),
            _ => None,
        }
    });
    println!("window accuracy vs ground truth: {:.1}%", acc * 100.0);

    // Segmentation sanity on the same track.
    let seg_model = SegmenterModel::train_default(5);
    let speech_frames: usize = segment_audio(&seg_model, &track.samples)
        .iter()
        .filter(|s| s.class == rcmo_audio::AudioClass::Speech)
        .map(|s| s.frames.len())
        .sum();
    println!("segmenter: {speech_frames} frames classified speech (track is all speech)");

    // Speech-type segmentation (male/female/child, paper §3).
    let mut montage = synth::babble(
        &VoiceProfile::male("m"),
        1.0,
        &SynthConfig {
            seed: 71,
            ..SynthConfig::default()
        },
    );
    montage.extend(synth::babble(
        &VoiceProfile::female("f"),
        1.0,
        &SynthConfig {
            seed: 72,
            ..SynthConfig::default()
        },
    ));
    montage.extend(synth::babble(
        &VoiceProfile::child("c"),
        1.0,
        &SynthConfig {
            seed: 73,
            ..SynthConfig::default()
        },
    ));
    let track_f0 = rcmo_audio::pitch_track(&montage, &features);
    let parts = rcmo_audio::speechkind::split_by_kind(&track_f0, 0..track_f0.len(), 8);
    println!("\nspeech-type segmentation (truth: male, female, child):");
    for p in &parts {
        println!(
            "  frames {:>3}..{:<3} {:8} (median f0 {:.0} Hz)",
            p.frames.start,
            p.frames.end,
            p.kind.map(|k| k.name()).unwrap_or("?"),
            p.median_f0.unwrap_or(0.0)
        );
    }

    // Word spotting ROC on held-out utterances.
    println!("\nword spotting (keyword 'lesion' = phonemes 0-1-4):");
    let ws = WordSpotter::train(
        &[("lesion", vec![0, 1, 4])],
        WordSpotterConfig::default(),
        77,
    );
    let test_voice = VoiceProfile {
        name: "held-out".into(),
        pitch_hz: 135.0,
        formant_scale: 1.05,
    };
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for seed in 0..12u64 {
        let sc = SynthConfig {
            seed: 5_000 + seed,
            ..SynthConfig::default()
        };
        let utt = synth::speech(&test_voice, &[0, 1, 4], &sc);
        let frames = rcmo_audio::extract_features(&utt, &features);
        pos.push(ws.keyword_score(0, &frames) - ws.garbage_score(&frames));
        let other = synth::speech(&test_voice, &[seed as usize % 3 + 5, 6, 7], &sc);
        let frames = rcmo_audio::extract_features(&other, &features);
        neg.push(ws.keyword_score(0, &frames) - ws.garbage_score(&frames));
    }
    println!("{:>12} {:>8} {:>14}", "threshold", "TPR", "false alarms");
    for p in roc(&pos, &neg, 6) {
        println!(
            "{:>12.1} {:>7.0}% {:>14}",
            p.threshold,
            p.tpr * 100.0,
            p.false_alarms
        );
    }
}

/// E10 (§4.4): the prefetch study — hit rate and response time vs. buffer
/// size and bandwidth for each policy.
fn e10_prefetch() {
    section("E10", "§4.4: preference-based prefetching study");
    let doc = medical_document(4, 4);
    println!("-- policy sweep at DSL (1 Mbit/s), 300 KiB buffer, 30 clicks --");
    println!(
        "{:<16} {:>9} {:>11} {:>11} {:>11}",
        "policy", "hit-rate", "mean-resp", "demand-KB", "wasted-KB"
    );
    for policy in PolicyKind::ALL {
        let s = simulate_session(
            &doc,
            &SessionConfig {
                steps: 30,
                buffer_bytes: 300 * 1024,
                link: Link::new(1_000_000.0, 0.04),
                policy,
                ..SessionConfig::default()
            },
        );
        println!(
            "{:<16} {:>8.0}% {:>10.2}s {:>11} {:>11}",
            policy.name(),
            s.hit_rate() * 100.0,
            s.mean_response_secs,
            s.demand_bytes / 1024,
            s.wasted_prefetch_bytes / 1024
        );
    }
    println!("\n-- buffer sweep, preference policy vs none (DSL) --");
    println!("{:>12} {:>12} {:>12}", "buffer KiB", "pref hit", "none hit");
    for kib in [64u64, 128, 256, 512, 1024] {
        let run = |policy| {
            simulate_session(
                &doc,
                &SessionConfig {
                    steps: 30,
                    buffer_bytes: kib * 1024,
                    link: Link::new(1_000_000.0, 0.04),
                    policy,
                    ..SessionConfig::default()
                },
            )
            .hit_rate()
        };
        println!(
            "{:>12} {:>11.0}% {:>11.0}%",
            kib,
            run(PolicyKind::PreferenceBased) * 100.0,
            run(PolicyKind::None) * 100.0
        );
    }
    println!("\n-- bandwidth sweep, preference policy, 300 KiB buffer --");
    println!("{:>12} {:>12} {:>12}", "link", "hit-rate", "mean-resp");
    for (name, link) in Link::profiles() {
        let s = simulate_session(
            &doc,
            &SessionConfig {
                steps: 30,
                buffer_bytes: 300 * 1024,
                link,
                policy: PolicyKind::PreferenceBased,
                ..SessionConfig::default()
            },
        );
        println!(
            "{:>12} {:>11.0}% {:>11.2}s",
            name,
            s.hit_rate() * 100.0,
            s.mean_response_secs
        );
    }
}

/// E11 (§4.2): online updates — the derived operation variable, global vs.
/// viewer-local, and the cost of the update itself.
fn e11_updates() {
    section("E11", "§4.2: online document updates (derived variables)");
    let engine = PresentationEngine::new();
    let mut doc = medical_document(2, 3);
    let target = ComponentId(2);
    let mut alice = ViewerSession::new("alice");
    let mut bob = ViewerSession::new("bob");

    // Viewer-local first.
    alice
        .apply_local_operation(&doc, target, 0, "segmentation")
        .unwrap();
    let pa = engine.presentation_for(&doc, &alice).unwrap();
    let pb = engine.presentation_for(&doc, &bob).unwrap();
    println!(
        "local op: alice sees {} derived var(s), bob sees {}",
        pa.derived_states().len(),
        pb.derived_states().len()
    );

    // Then globally (alice's extension is re-derived per policy).
    doc.add_global_operation(target, 0, "zoom").unwrap();
    let identity: Vec<Option<ComponentId>> = (0..doc.num_components() as u32)
        .map(|i| Some(ComponentId(i)))
        .collect();
    alice.rebase(&identity);
    bob.rebase(&identity);
    let pa = engine.presentation_for(&doc, &alice).unwrap();
    let pb = engine.presentation_for(&doc, &bob).unwrap();
    println!(
        "global op: alice sees {} derived var(s), bob sees {}",
        pa.derived_states().len(),
        pb.derived_states().len()
    );

    // Update cost vs. document size: the CP-net grows by one variable, the
    // old tables are untouched ("we should not revisit the CP-tables").
    println!("\n{:>12} {:>16}", "components", "global op (µs)");
    for (folders, leaves) in [(2usize, 4usize), (8, 8), (16, 16)] {
        let base = medical_document(folders, leaves);
        let reps = 200;
        let t = Instant::now();
        for _ in 0..reps {
            let mut d = base.clone();
            d.add_global_operation(ComponentId(2), 0, "op").unwrap();
            std::hint::black_box(d);
        }
        println!(
            "{:>12} {:>16.1}",
            base.num_components(),
            t.elapsed().as_micros() as f64 / reps as f64
        );
    }
    println!("(cost is dominated by the document clone; the net update is O(domain))");
}

/// E12 (extensions): ablations of the design choices DESIGN.md calls out —
/// residual-layer bases in the codec, the prefetch planner's outcome
/// horizon, and the buffer-pool size of the storage engine.
fn e12_ablations() {
    use rcmo_codec::{Basis, LayerSpec};
    section(
        "E12",
        "ablations: codec bases, prefetch horizon, buffer pool",
    );

    // -- Codec: which residual basis earns its bytes? --
    let ct = ct_phantom(256, 3, 5).unwrap();
    println!("codec residual-basis ablation (main step 24, residual step 6):");
    println!("{:>22} {:>10} {:>10}", "config", "bytes", "PSNR dB");
    let configs: [(&str, Vec<LayerSpec>); 4] = [
        ("main only", vec![]),
        (
            "+ wavelet packet",
            vec![LayerSpec {
                basis: Basis::WaveletPacket,
                step: 6.0,
            }],
        ),
        (
            "+ local cosine",
            vec![LayerSpec {
                basis: Basis::LocalCosine,
                step: 6.0,
            }],
        ),
        (
            "+ packet + cosine",
            vec![
                LayerSpec {
                    basis: Basis::WaveletPacket,
                    step: 6.0,
                },
                LayerSpec {
                    basis: Basis::LocalCosine,
                    step: 6.0,
                },
            ],
        ),
    ];
    for (name, layers) in configs {
        let cfg = EncoderConfig {
            residual_layers: layers,
            ..EncoderConfig::default()
        };
        let bytes = encode(&ct, &cfg).unwrap();
        let out = rcmo_codec::decode(&bytes).unwrap();
        println!("{:>22} {:>10} {:>10.2}", name, bytes.len(), psnr(&ct, &out));
    }

    // -- Prefetch: how many preference-ordered outcomes to aggregate? --
    println!("\nprefetch horizon ablation (buffer-plan coverage, 300 KiB):");
    println!("{:>8} {:>14}", "top_k", "plan coverage");
    let doc = medical_document(4, 4);
    for top_k in [4usize, 16, 64, 256] {
        let planner =
            rcmo_core::PrefetchPlanner::new(rcmo_core::PrefetchConfig { top_k, decay: 0.95 });
        // Re-run the planner on an empty-evidence plan and measure how much
        // of the optimal-session working set it covers.
        let ev = PartialAssignment::empty(doc.net().len());
        let plan = planner.plan(&doc, &ev, 300 * 1024).unwrap();
        // Coverage proxy: planned bytes vs buffer (a deeper horizon fills
        // the buffer with more diverse renditions).
        println!(
            "{:>8} {:>13.0}%",
            top_k,
            100.0 * plan.items.len() as f64 / 32.0
        );
    }

    // -- Storage: buffer-pool pressure. --
    println!("\nbuffer-pool ablation: hit ratio over 3 scans of 2000 rows:");
    println!("{:>14} {:>12}", "pool frames", "hit ratio");
    let rows = 2_000u64;
    for frames in [16usize, 64, 256, 2048] {
        let raw = rcmo_storage::Database::in_memory_with_pool(frames).unwrap();
        let raw = &raw;
        {
            let mut tx = raw.begin().unwrap();
            tx.create_table(
                "S",
                rcmo_storage::Schema::new(vec![
                    rcmo_storage::Column::new("ID", rcmo_storage::ColumnType::U64),
                    rcmo_storage::Column::new("B", rcmo_storage::ColumnType::Bytes),
                ])
                .unwrap(),
            )
            .unwrap();
            tx.commit().unwrap();
            // Small pools enforce the no-steal rule: a transaction's dirty
            // set must fit, so load in batches.
            for batch in 0..(rows / 50) {
                let mut tx = raw.begin().unwrap();
                for _ in 0..50 {
                    let _ = batch;
                    tx.insert(
                        "S",
                        vec![
                            rcmo_storage::RowValue::Null,
                            rcmo_storage::RowValue::Bytes(vec![7u8; 512]),
                        ],
                    )
                    .unwrap();
                }
                tx.commit().unwrap();
            }
        }
        {
            let mut tx = raw.begin().unwrap();
            for _ in 0..3 {
                std::hint::black_box(tx.scan("S").unwrap());
            }
        }
        let stats = raw.pool_stats();
        let ratio = stats.hits as f64 / (stats.hits + stats.misses) as f64;
        println!("{:>14} {:>11.1}%", frames, ratio * 100.0);
    }
}

/// E13 (robustness): fault-tolerant sessions — lossy links with bounded
/// retry/backoff and LIC1 degradation, and client resync after an outage
/// with zero event loss.
fn e13_fault_tolerance() {
    section(
        "E13",
        "robustness: lossy links, retry/backoff, client resync",
    );

    // -- Part 1: viewing sessions over a faulty modem link. --
    //
    // Per-scenario fault counts come from snapshot-and-diff over the global
    // metrics registry: sessions accumulate into it across the whole binary
    // (including E10's sessions), so diffing around each run is the only way
    // to isolate one scenario — reading the raw registry would carry the
    // previous scenarios' retransmit/timeout counts into the next row.
    let global = Registry::global();
    let doc = medical_document(4, 4);
    println!("modem-56k sessions, 40 clicks, preference prefetch:");
    println!(
        "{:<22} {:>9} {:>11} {:>8} {:>9} {:>9}",
        "fault model", "hit-rate", "mean-resp", "rexmit", "timeouts", "degraded"
    );
    let scenarios: [(&str, FaultSpec); 4] = [
        ("clean", FaultSpec::none()),
        ("5% loss", FaultSpec::lossy(0.05, 0xE13)),
        (
            "5% loss + jitter 30%",
            FaultSpec::lossy(0.05, 0xE13).with_jitter(0.3),
        ),
        (
            "loss + 120s outage",
            FaultSpec::lossy(0.05, 0xE13).with_outage(30.0, 150.0),
        ),
    ];
    for (name, fault) in scenarios {
        let before = global.snapshot();
        let s = simulate_session(
            &doc,
            &SessionConfig {
                steps: 40,
                buffer_bytes: 300 * 1024,
                link: Link::new(56_000.0, 0.15),
                policy: PolicyKind::PreferenceBased,
                fault,
                ..SessionConfig::default()
            },
        );
        let delta = global.snapshot().diff(&before);
        let global_count = |key: &str| delta.counters.get(key).copied().unwrap_or(0);
        assert_eq!(s.requests, 40, "every click is answered despite faults");
        // The per-session view and the diffed global aggregate must agree —
        // each scenario's counts are its own, not a running total.
        assert_eq!(global_count("netsim.link.retransmit.count"), s.retransmits);
        assert_eq!(global_count("netsim.link.timeout.count"), s.timeouts);
        assert_eq!(
            global_count("netsim.session.degraded.count"),
            s.degraded_requests
        );
        println!(
            "{:<22} {:>8.0}% {:>10.2}s {:>8} {:>9} {:>9}",
            name,
            s.hit_rate() * 100.0,
            s.mean_response_secs,
            s.retransmits,
            s.timeouts,
            s.degraded_requests
        );
    }
    println!("(retries are bounded by the policy; persistent timeouts fall back to");
    println!(" the coarse LIC1 base layer instead of failing the request;");
    println!(" per-scenario counts verified against a global snapshot diff)");

    // -- Part 2: a client rides out an outage and resyncs. --
    println!("\noutage + resync in a shared room:");
    let (srv, doc_id, image_id) = consultation_fixture(3);
    let room = srv.create_room("user-0", "e13", doc_id).unwrap();
    let c0 = srv.join_default(room, "user-0").unwrap();
    let c1 = srv.join_default(room, "user-1").unwrap();
    let c2 = srv.join_default(room, "user-2").unwrap();
    srv.open_image(room, "user-0", image_id).unwrap();
    srv.act(room, "user-2", Action::Freeze { object: image_id })
        .unwrap();

    // user-2 observes the stream, then its connection dies mid-session.
    let mut seen2: Vec<_> = c2.events.try_iter().collect();
    let last_seen = seen2.last().map(|e| e.seq).unwrap_or(0);
    drop(c2);
    println!("  user-2 disconnected after seq {last_seen} (holding a freeze)");

    // The survivors keep working. The first broadcast after the disconnect
    // detects the dead channel, reaps user-2 and releases its freeze, so the
    // annotations that follow are no longer blocked.
    srv.act(
        room,
        "user-1",
        Action::Chat {
            text: "still there?".into(),
        },
    )
    .unwrap();
    for i in 0..10i64 {
        srv.act(
            room,
            "user-0",
            Action::AddLine {
                object: image_id,
                element: LineElement {
                    x0: i,
                    y0: 0,
                    x1: 63,
                    y1: 63 - i,
                    intensity: 210,
                },
            },
        )
        .unwrap();
    }
    srv.act(
        room,
        "user-1",
        Action::Chat {
            text: "carry on".into(),
        },
    )
    .unwrap();
    let stats = srv.room_stats(room).unwrap();
    println!(
        "  while away: members now {:?}, {} delivery failure(s), {} member(s) reaped",
        srv.members(room).unwrap(),
        stats.delivery_failures,
        stats.members_reaped
    );

    // Resync: user-2 replays the missed tail and converges.
    let (c2b, catch_up) = srv.resync(room, "user-2", last_seen).unwrap();
    match &catch_up {
        Resync::Events(tail) => {
            println!(
                "  resync replayed {} events (seq {}..={})",
                tail.len(),
                tail.first().map(|e| e.seq).unwrap_or(0),
                tail.last().map(|e| e.seq).unwrap_or(0)
            );
            seen2.extend(tail.iter().cloned());
        }
        Resync::Snapshot(s) => println!("  resync fell back to a snapshot at seq {}", s.seq),
    }
    srv.act(
        room,
        "user-0",
        Action::Chat {
            text: "welcome back".into(),
        },
    )
    .unwrap();
    seen2.extend(c2b.events.try_iter());

    // Zero event loss: user-2's reconstructed stream equals user-0's
    // uninterrupted one over the common seq range.
    let seen0: Vec<_> = c0.events.try_iter().collect();
    let first = seen2.first().map(|e| e.seq).unwrap_or(0);
    let tail0: Vec<_> = seen0.iter().filter(|e| e.seq >= first).collect();
    let identical = tail0.len() == seen2.len() && tail0.iter().zip(&seen2).all(|(a, b)| **a == *b);
    let dense = seen2.windows(2).all(|w| w[1].seq == w[0].seq + 1);
    println!("  identical total order after resync: {identical}; dense seqs: {dense}");
    assert!(identical && dense);
    drop(c1);

    // -- Part 3: the change log stays bounded. --
    srv.configure_room(
        room,
        "user-0",
        RoomConfig::new().with_change_log_capacity(512),
    )
    .unwrap();
    for i in 0..10_000 {
        srv.act(
            room,
            "user-0",
            Action::Chat {
                text: format!("stress {i}"),
            },
        )
        .unwrap();
    }
    println!(
        "\n  after 10k more events: change log holds {} entries (cap 512), last seq {}",
        srv.change_log_len(room).unwrap(),
        srv.last_seq(room).unwrap()
    );
    assert_eq!(srv.change_log_len(room).unwrap(), 512);
}

/// A compact workload that touches every instrumented subsystem. Returns the
/// workspace-level [`rcmo::Result`], so errors from six different crates all
/// propagate with `?` — no per-layer `map_err`.
fn e14_workload() -> rcmo::Result<()> {
    // core: author-optimal and evidence-conditioned presentations.
    let doc = medical_document(2, 4);
    let engine = PresentationEngine::new();
    std::hint::black_box(engine.default_presentation(&doc));
    let mut session = ViewerSession::new("e14");
    session.choose(
        &doc,
        ViewerChoice {
            component: ComponentId(2),
            form: 1,
        },
    )?;
    std::hint::black_box(engine.presentation_for(&doc, &session)?);
    let mut ev = PartialAssignment::empty(doc.net().len());
    ev.set(ComponentId(2).var(), Value(1));
    std::hint::black_box(doc.net().optimal_completion(&ev));

    // codec + imaging: encode, progressive decode, reduced resolution,
    // segmentation.
    let ct = ct_phantom(128, 2, 5)?;
    let stream = encode(&ct, &EncoderConfig::default())?;
    let (decoded, _layers) = decode_prefix(&stream)?;
    std::hint::black_box(decode_resolution(&stream, 1)?);
    std::hint::black_box(segment_image(&decoded, 8));

    // audio: feature extraction + segmentation on a short synthetic clip.
    let clip = synth::babble(&VoiceProfile::male("m"), 0.5, &SynthConfig::default());
    std::hint::black_box(rcmo_audio::extract_features(
        &clip,
        &FeatureConfig::default(),
    ));
    let seg_model = SegmenterModel::train_default(0xE14);
    std::hint::black_box(segment_audio(&seg_model, &clip));

    // server + mediadb + storage: a two-partner room with annotation
    // broadcast, object render, and a resync (ServerError/MediaError and,
    // underneath, StorageError all flow through the same `?`).
    let (srv, doc_id, image_id) = consultation_fixture(2);
    let room = srv.create_room("user-0", "e14", doc_id)?;
    let _c0 = srv.join_default(room, "user-0")?;
    let c1 = srv.join_default(room, "user-1")?;
    srv.open_image(room, "user-0", image_id)?;
    // Adaptive delivery: a layered image served through the room object
    // cache at a bandwidth-chosen depth. `open_image` registers the
    // delivery-depth histogram, so the workload must also record into it —
    // and only a layered (`LIC1`) payload does; the fixture image is raw.
    let lic_id = srv.database().insert_image(
        "admin",
        &rcmo_mediadb::ImageObject {
            name: "ct-layered".into(),
            quality: 0,
            texts: String::new(),
            cm: Vec::new(),
            data: stream.clone(),
        },
    )?;
    let first = srv.deliver_image(room, "user-1", lic_id)?;
    srv.report_transfer(room, "user-1", first.payload.len() as u64, 0.5)?;
    std::hint::black_box(srv.deliver_image(room, "user-1", lic_id)?);
    srv.act(
        room,
        "user-0",
        Action::AddLine {
            object: image_id,
            element: LineElement {
                x0: 0,
                y0: 0,
                x1: 63,
                y1: 63,
                intensity: 220,
            },
        },
    )?;
    std::hint::black_box(srv.render_object(room, image_id)?);
    let last_seen = c1.events.try_iter().last().map(|e| e.seq).unwrap_or(0);
    drop(c1);
    srv.act(
        room,
        "user-0",
        Action::Chat {
            text: "anyone?".into(),
        },
    )?;
    let (_c1b, _catch_up) = srv.resync(room, "user-1", last_seen)?;
    std::hint::black_box(srv.metrics());

    // netsim: one short prefetching session over a lossy modem link.
    std::hint::black_box(simulate_session(
        &doc,
        &SessionConfig {
            steps: 15,
            link: Link::new(56_000.0, 0.15),
            fault: FaultSpec::lossy(0.05, 0xE14),
            ..SessionConfig::default()
        },
    ));
    Ok(())
}

/// E14 (observability): the unified metrics layer — one registry spanning
/// every subsystem, snapshot-and-diff isolation, quantile tables, a
/// dead-instrumentation guard, and the `BENCH_obs.json` export.
fn e14_observability() {
    section(
        "E14",
        "observability: unified metrics across all subsystems",
    );
    let global = Registry::global();

    // Snapshot-and-diff: what does one self-contained workload add on top
    // of whatever already accumulated (nothing when run standalone, all of
    // E1–E13 in a full run)?
    let before = global.snapshot();
    let t = Instant::now();
    e14_workload().expect("e14 workload");
    let workload_ms = t.elapsed().as_secs_f64() * 1e3;
    let delta = global.snapshot().diff(&before);
    println!(
        "workload ({workload_ms:.0} ms) touched {} counters, {} gauges, {} histograms:",
        delta.counters.len(),
        delta.gauges.len(),
        delta.histograms.len()
    );

    // The cumulative picture: per-operation latency quantiles.
    let snap = global.snapshot();
    println!(
        "\n{:<32} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "histogram", "samples", "p50", "p95", "p99", "max"
    );
    for (name, h) in &snap.histograms {
        println!(
            "{:<32} {:>8} {:>9} {:>9} {:>9} {:>9}",
            name,
            h.count,
            h.p50(),
            h.p95(),
            h.p99(),
            h.max
        );
    }
    println!("(units: .us wall-clock µs, .vus virtual µs, .layers a count)");

    // Dead-instrumentation guard: every histogram that registered itself
    // must have samples — an instrumented code path that never records is a
    // refactoring regression.
    let dead: Vec<&str> = snap
        .histograms
        .iter()
        .filter(|(_, h)| h.count == 0)
        .map(|(n, _)| n.as_str())
        .collect();
    assert!(
        dead.is_empty(),
        "registered histograms with zero samples: {dead:?}"
    );
    let subsystems: std::collections::BTreeSet<&str> = snap
        .histograms
        .keys()
        .filter_map(|k| k.split('.').next())
        .collect();
    assert!(
        snap.histograms.len() >= 6 && subsystems.len() >= 4,
        "expected >= 6 instrumented operations over >= 4 subsystems, got {} over {:?}",
        snap.histograms.len(),
        subsystems
    );
    println!(
        "\nguard: {} histograms across {:?}, none dead",
        snap.histograms.len(),
        subsystems
    );

    // Export: JSON round-trips exactly, then lands next to the other
    // BENCH_* artifacts.
    let json = snap.to_json();
    assert_eq!(MetricsSnapshot::from_json(&json).expect("parse"), snap);
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!(
        "wrote BENCH_obs.json ({} bytes, JSON round-trip verified)",
        json.len()
    );
}

/// E15 (incremental reconfiguration): the [`ReconfigEngine`] against the
/// full topological sweep on 30-variable chain and tree nets, under two
/// workloads:
///
/// * **solo** — one viewer, one evidence change per reconfiguration; only
///   the dirty-cone path can help.
/// * **room** — four viewers tracking the same evidence stream, all
///   reconfigured after every change (exactly what
///   `Room::push_presentation_update` does per event); the first viewer
///   computes the cone, the rest hit the evidence memo.
///
/// Every engine result is checked against the sweep. Writes
/// `BENCH_reconfig.json`; the run aborts if either workload's median
/// regresses past the full-sweep median, which is the CI gate.
fn e15_reconfig() {
    section(
        "E15",
        "incremental reconfiguration vs full sweep (30-variable nets)",
    );
    const STEPS: usize = 4_000;
    const WARMUP: usize = 500;
    const ROOM: usize = 4;

    fn quantile(sorted: &[u64], q: f64) -> u64 {
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    }

    let nets = [
        ("chain30", chain_net(30, 2, 0xE15)),
        ("tree30", tree_net(30, 2, 0xE15)),
    ];
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>9}",
        "workload", "full p50", "p95", "p99", "eng p50", "p95", "p99", "speedup", "hit-rate"
    );
    println!("(per-reconfiguration latencies in ns, {STEPS} steps after {WARMUP} warmup)");
    let mut entries = Vec::new();
    for (name, net) in &nets {
        let mut rng = StdRng::seed_from_u64(0x2002_0515);
        // One choice changes per step, occasionally withdrawn — the
        // per-click workload `reconfigPresentation` faces.
        let mut ev = PartialAssignment::empty(net.len());
        let walk: Vec<PartialAssignment> = (0..STEPS + WARMUP)
            .map(|_| {
                let v = VarId(rng.gen_range(0..net.len() as u32));
                if rng.gen_range(0..4) == 0 {
                    ev.clear(v);
                } else {
                    let dom = net.variable(v).unwrap().domain().len() as u16;
                    ev.set(v, Value(rng.gen_range(0..dom)));
                }
                ev.clone()
            })
            .collect();

        // Baseline: recompute the optimal completion from scratch each step
        // (per-call cost is viewer-independent, so this is also the room
        // baseline); keep the outcomes to check the engine step by step.
        let mut full_ns = Vec::with_capacity(STEPS);
        let mut full_outcomes = Vec::with_capacity(walk.len());
        for (i, e) in walk.iter().enumerate() {
            let t = Instant::now();
            let out = net.optimal_completion(e);
            if i >= WARMUP {
                full_ns.push(t.elapsed().as_nanos() as u64);
            }
            full_outcomes.push(out);
        }
        full_ns.sort_unstable();
        let (f50, f95, f99) = (
            quantile(&full_ns, 0.50),
            quantile(&full_ns, 0.95),
            quantile(&full_ns, 0.99),
        );

        // Solo: the same evidence sequence through one engine, one viewer.
        let mut solo = ReconfigEngine::new();
        let mut solo_ns = Vec::with_capacity(STEPS);
        for (i, e) in walk.iter().enumerate() {
            let t = Instant::now();
            let out = solo.completion(net, "solo", e);
            if i >= WARMUP {
                solo_ns.push(t.elapsed().as_nanos() as u64);
            }
            assert_eq!(out, full_outcomes[i], "{name} solo: diverged at step {i}");
        }

        // Room: every member's presentation is reconfigured after every
        // change, as `Room::push_presentation_update` does per event.
        let members: Vec<String> = (0..ROOM).map(|m| format!("member-{m}")).collect();
        let mut room = ReconfigEngine::new();
        let mut room_ns = Vec::with_capacity(STEPS * ROOM);
        for (i, e) in walk.iter().enumerate() {
            for member in &members {
                let t = Instant::now();
                let out = room.completion(net, member, e);
                if i >= WARMUP {
                    room_ns.push(t.elapsed().as_nanos() as u64);
                }
                assert_eq!(out, full_outcomes[i], "{name} room: diverged at step {i}");
            }
        }

        for (kind, ns, stats) in [
            ("solo", solo_ns, solo.stats()),
            ("room-of-4", room_ns, room.stats()),
        ] {
            let mut ns = ns;
            ns.sort_unstable();
            let (e50, e95, e99) = (
                quantile(&ns, 0.50),
                quantile(&ns, 0.95),
                quantile(&ns, 0.99),
            );
            let speedup = f50 as f64 / e50.max(1) as f64;
            println!(
                "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7.1}x {:>8.1}%",
                format!("{name}/{kind}"),
                f50,
                f95,
                f99,
                e50,
                e95,
                e99,
                speedup,
                stats.hit_rate() * 100.0
            );
            assert!(
                speedup >= 1.0,
                "{name} {kind}: engine p50 {e50}ns slower than full sweep p50 {f50}ns"
            );
            entries.push(format!(
                concat!(
                    "    {{\"net\": \"{}\", \"workload\": \"{}\", \"steps\": {}, ",
                    "\"full_ns\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}, ",
                    "\"engine_ns\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}, ",
                    "\"speedup_p50\": {:.2}, \"memo_hit_rate\": {:.4}, ",
                    "\"incremental_recomputes\": {}, \"full_sweeps\": {}}}"
                ),
                name,
                kind,
                STEPS,
                f50,
                f95,
                f99,
                e50,
                e95,
                e99,
                speedup,
                stats.hit_rate(),
                stats.incremental,
                stats.full_sweeps
            ));
        }
    }
    println!("(room-of-4 is the deployment shape: one cone recompute per event,");
    println!(" the other members served from the evidence memo)");
    let json = format!("{{\n  \"runs\": [\n{}\n  ]\n}}\n", entries.join(",\n"));
    std::fs::write("BENCH_reconfig.json", &json).expect("write BENCH_reconfig.json");
    println!("wrote BENCH_reconfig.json ({} bytes)", json.len());
}

/// E16 (crash torture): the storage stack's crash-survival matrix. Every
/// named durability failpoint is armed at every occurrence across a seeded
/// insert workload; after each induced crash the database is reopened and
/// classified — the in-flight transaction is either *lost* (crash before the
/// WAL commit record, only legal at `storage.wal.append`) or *durable*
/// (recovered by WAL replay), and [`Database::check_integrity`] must pass.
/// Recovery (reopen) latency is reported overall and bucketed by WAL length
/// at the crash. Writes `BENCH_crash.json`; the run aborts on any integrity
/// failure or atomicity violation, which is the CI gate.
fn e16_crash() {
    section(
        "E16",
        "crash injection: survival matrix and recovery latency",
    );
    use rcmo::storage::db::wal_path_for;
    use rcmo::storage::{failpoint, Column, ColumnType, Database, RowValue, Schema, StorageError};

    const TXNS: usize = 6;
    const ROWS_PER_TXN: u64 = 3;
    const SEEDS: [u64; 3] = [0x16A, 0x16B, 0x16C];

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rcmo-e16-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{tag}.db"));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(wal_path_for(&p));
        p
    }

    fn blob_for(id: u64, seed: u64) -> Vec<u8> {
        let len = 600 + ((id.wrapping_mul(2654435761) ^ seed) % 2600) as usize;
        (0..len)
            .map(|i| (id as u8) ^ (i as u8).wrapping_mul(13))
            .collect()
    }

    /// Transaction 0 creates the table; transaction `t` ≥ 1 inserts rows
    /// `(t-1)*ROWS_PER_TXN + 1 ..= t*ROWS_PER_TXN`, each with a BLOB.
    fn run_txn(db: &Database, t: usize, seed: u64) -> Result<(), StorageError> {
        let mut tx = db.begin()?;
        if t == 0 {
            tx.create_table(
                "e16",
                Schema::new(vec![
                    Column::new("ID", ColumnType::U64),
                    Column::new("V", ColumnType::I64),
                    Column::new("B", ColumnType::Blob),
                ])
                .unwrap(),
            )?;
        } else {
            for r in 0..ROWS_PER_TXN {
                let id = (t as u64 - 1) * ROWS_PER_TXN + r + 1;
                let b = tx.put_blob(&blob_for(id, seed))?;
                tx.insert(
                    "e16",
                    vec![
                        RowValue::U64(id),
                        RowValue::I64(-(id as i64)),
                        RowValue::Blob(b),
                    ],
                )?;
            }
        }
        tx.commit()
    }

    fn quantile(sorted: &[u64], q: f64) -> u64 {
        if sorted.is_empty() {
            0
        } else {
            sorted[((sorted.len() - 1) as f64 * q).round() as usize]
        }
    }

    #[derive(Default)]
    struct SiteStat {
        schedules: u64,
        lost: u64,
        durable: u64,
        integrity_failures: u64,
    }
    let mut stats: Vec<(&'static str, SiteStat)> = failpoint::ALL
        .iter()
        .map(|s| (*s, SiteStat::default()))
        .collect();
    // (WAL bytes at crash, reopen latency µs) per schedule.
    let mut recovery: Vec<(u64, u64)> = Vec::new();

    for &seed in &SEEDS {
        // Counting run: occurrences of each site across the workload
        // (failpoints reset after open so bootstrap commits don't count).
        let path = tmp(&format!("count-{seed:x}"));
        let db = Database::open(&path).unwrap();
        failpoint::reset();
        for t in 0..=TXNS {
            run_txn(&db, t, seed).unwrap();
        }
        let counts: Vec<(&'static str, u64)> = failpoint::ALL
            .iter()
            .map(|s| (*s, failpoint::hits(s)))
            .collect();
        failpoint::reset();
        drop(db);

        for (site, hits) in counts {
            assert!(hits > 0, "E16: site {site} never exercised");
            for n in 1..=hits {
                let path = tmp(&format!("run-{seed:x}-{}-{n}", site.replace('.', "_")));
                let db = Database::open(&path).unwrap();
                failpoint::reset();
                failpoint::arm(site, n);
                let mut committed = 0usize;
                let mut crashed = false;
                for t in 0..=TXNS {
                    match run_txn(&db, t, seed) {
                        Ok(()) => committed += 1,
                        Err(_) => {
                            crashed = true;
                            break;
                        }
                    }
                }
                assert!(crashed, "E16: armed {site}@{n} did not fire");
                failpoint::reset();
                drop(db);

                let wal_bytes = std::fs::metadata(wal_path_for(&path))
                    .map(|m| m.len())
                    .unwrap_or(0);
                let t0 = Instant::now();
                let db = Database::open(&path).expect("E16: reopen after crash failed");
                recovery.push((wal_bytes, t0.elapsed().as_micros() as u64));

                let stat = &mut stats.iter_mut().find(|(s, _)| *s == site).unwrap().1;
                stat.schedules += 1;
                let report = db.check_integrity();
                if !report.is_ok() {
                    stat.integrity_failures += 1;
                    eprintln!(
                        "E16: integrity failure after {site}@{n} (seed {seed:#x}):\n{report}"
                    );
                    continue;
                }
                // Classify: which prefix of the workload survived?
                let mut tx = db.begin().unwrap();
                let recovered = if tx.table_names().iter().any(|t| t == "e16") {
                    let rows = tx.scan("e16").unwrap();
                    let mut ok = (rows.len() as u64).is_multiple_of(ROWS_PER_TXN);
                    for (i, row) in rows.iter().enumerate() {
                        let (RowValue::U64(id), RowValue::Blob(b)) = (&row[0], &row[2]) else {
                            ok = false;
                            break;
                        };
                        ok &= *id == i as u64 + 1
                            && tx
                                .get_blob(*b)
                                .map(|d| d == blob_for(*id, seed))
                                .unwrap_or(false);
                    }
                    assert!(
                        ok,
                        "E16: {site}@{n} (seed {seed:#x}): partial transaction visible"
                    );
                    1 + rows.len() / ROWS_PER_TXN as usize
                } else {
                    0
                };
                drop(tx);
                assert!(
                    recovered == committed || recovered == committed + 1,
                    "E16: {site}@{n} (seed {seed:#x}): {recovered} txns recovered, \
                     {committed} committed before the crash"
                );
                if recovered == committed {
                    stat.lost += 1;
                    assert!(
                        site == failpoint::WAL_APPEND,
                        "E16: {site}@{n} (seed {seed:#x}): committed-transaction loss at a \
                         post-WAL-sync site"
                    );
                } else {
                    stat.durable += 1;
                }
            }
        }
    }

    println!(
        "{:<28} {:>10} {:>6} {:>8} {:>10}",
        "failpoint", "schedules", "lost", "durable", "integrity"
    );
    let mut site_entries = Vec::new();
    let mut total_failures = 0u64;
    for (site, s) in &stats {
        println!(
            "{:<28} {:>10} {:>6} {:>8} {:>10}",
            site, s.schedules, s.lost, s.durable, s.integrity_failures
        );
        total_failures += s.integrity_failures;
        site_entries.push(format!(
            concat!(
                "    {{\"site\": \"{}\", \"schedules\": {}, \"lost\": {}, ",
                "\"durable\": {}, \"integrity_failures\": {}}}"
            ),
            site, s.schedules, s.lost, s.durable, s.integrity_failures
        ));
    }

    let mut all_us: Vec<u64> = recovery.iter().map(|&(_, us)| us).collect();
    all_us.sort_unstable();
    println!(
        "recovery latency over {} reopens: p50 {}µs  p95 {}µs  p99 {}µs",
        all_us.len(),
        quantile(&all_us, 0.50),
        quantile(&all_us, 0.95),
        quantile(&all_us, 0.99)
    );
    const BUCKETS: [(&str, u64, u64); 3] = [
        ("<16KiB", 0, 16 << 10),
        ("16-48KiB", 16 << 10, 48 << 10),
        (">=48KiB", 48 << 10, u64::MAX),
    ];
    let mut bucket_entries = Vec::new();
    for (label, lo, hi) in BUCKETS {
        let mut us: Vec<u64> = recovery
            .iter()
            .filter(|&&(b, _)| b >= lo && b < hi)
            .map(|&(_, us)| us)
            .collect();
        us.sort_unstable();
        println!(
            "  wal {label:<9} {:>5} samples: p50 {}µs  p95 {}µs  p99 {}µs",
            us.len(),
            quantile(&us, 0.50),
            quantile(&us, 0.95),
            quantile(&us, 0.99)
        );
        bucket_entries.push(format!(
            concat!(
                "    {{\"wal_bytes\": \"{}\", \"samples\": {}, \"p50_us\": {}, ",
                "\"p95_us\": {}, \"p99_us\": {}}}"
            ),
            label,
            us.len(),
            quantile(&us, 0.50),
            quantile(&us, 0.95),
            quantile(&us, 0.99)
        ));
    }

    let json = format!(
        concat!(
            "{{\n  \"seeds\": {:?},\n  \"txns_per_seed\": {},\n  \"sites\": [\n{}\n  ],\n",
            "  \"recovery_us\": {{\"samples\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}},\n",
            "  \"recovery_by_wal_bytes\": [\n{}\n  ]\n}}\n"
        ),
        SEEDS,
        TXNS + 1,
        site_entries.join(",\n"),
        all_us.len(),
        quantile(&all_us, 0.50),
        quantile(&all_us, 0.95),
        quantile(&all_us, 0.99),
        bucket_entries.join(",\n")
    );
    std::fs::write("BENCH_crash.json", &json).expect("write BENCH_crash.json");
    println!("wrote BENCH_crash.json ({} bytes)", json.len());
    assert_eq!(
        total_failures, 0,
        "E16: {total_failures} integrity failures across the crash sweep"
    );
    println!("(every schedule passed check_integrity; in-flight transactions were lost");
    println!(" only at the pre-commit WAL append, never after the WAL sync)");
}

/// E17 (contention): the two-level room locking against the old global
/// room-map lock, under a multi-room consultation workload.
///
/// N rooms × M members; each worker thread drives its own room with mixed
/// traffic — chat/annotation broadcasts, presentation reconfigurations,
/// object renders, and a periodic "slow CT decode" modelled as a fixed
/// 1 ms hold of that room's lock (the blocking service time the paper's
/// image fetch+decode path exhibits). The **global** baseline reproduces
/// the pre-refactor server by serialising every operation, decode
/// included, through one process-wide mutex — exactly what
/// `Mutex<HashMap<RoomId, Room>>` did. The **per-room** mode is the
/// shipping two-level scheme.
///
/// Reports throughput vs. worker threads and per-op p50/p99 latency for
/// both modes, plus the per-room lock wait/hold instrumentation. Writes
/// `BENCH_concurrency.json`; the run aborts unless per-room multi-room
/// throughput scales ≥ 2× from 1 → 4 threads, which is the CI gate.
fn e17_concurrency() {
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    section("E17", "per-room concurrency vs the global room lock");

    const MAX_THREADS: usize = 8;
    const MEMBERS: usize = 4;
    const OPS: usize = 160;
    const DECODE: Duration = Duration::from_millis(1);

    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        Global,
        PerRoom,
    }

    struct RunResult {
        wall: Duration,
        latencies_us: Vec<u64>,
        ops: usize,
    }

    /// One run: `threads` workers, each bound to its own room of `MEMBERS`
    /// members, a fresh server per run so rooms start identical.
    fn run(mode: Mode, threads: usize) -> RunResult {
        let (srv, doc_id, image_id) = consultation_fixture(threads * MEMBERS);
        let srv = Arc::new(srv);
        let global_lock = Arc::new(Mutex::new(()));
        let mut rooms = Vec::new();
        let mut conns = Vec::new();
        for r in 0..threads {
            let owner = format!("user-{}", r * MEMBERS);
            let room = srv
                .create_room(&owner, &format!("e17-{r}"), doc_id)
                .unwrap();
            for m in 0..MEMBERS {
                conns.push(
                    srv.join_default(room, &format!("user-{}", r * MEMBERS + m))
                        .unwrap(),
                );
            }
            srv.open_image(room, &owner, image_id).unwrap();
            rooms.push(room);
        }

        let start = Instant::now();
        let mut workers = Vec::new();
        for (r, &room) in rooms.iter().enumerate() {
            let srv = Arc::clone(&srv);
            let global_lock = Arc::clone(&global_lock);
            let user = format!("user-{}", r * MEMBERS);
            workers.push(std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(OPS);
                for i in 0..OPS {
                    let t = Instant::now();
                    // The baseline serialises *every* op process-wide, as
                    // the old `Mutex<HashMap<..>>` server did.
                    let _g = match mode {
                        Mode::Global => Some(global_lock.lock().unwrap()),
                        Mode::PerRoom => None,
                    };
                    match i % 4 {
                        0 => srv
                            .act(
                                room,
                                &user,
                                Action::Chat {
                                    text: format!("op {i}"),
                                },
                            )
                            .unwrap(),
                        1 => srv
                            .act(
                                room,
                                &user,
                                Action::AddLine {
                                    object: image_id,
                                    element: LineElement {
                                        x0: (i % 64) as i64,
                                        y0: 0,
                                        x1: 63,
                                        y1: (i % 64) as i64,
                                        intensity: 190,
                                    },
                                },
                            )
                            .unwrap(),
                        2 => {
                            std::hint::black_box(srv.render_presentation(room, &user).unwrap());
                        }
                        _ => {
                            // Slow CT decode: a blocking, in-room service
                            // time held under that room's lock only.
                            match mode {
                                Mode::PerRoom => {
                                    let handle = srv.room_handle(room).unwrap();
                                    let _room = handle.lock();
                                    std::thread::sleep(DECODE);
                                }
                                // The outer guard *is* the old room lock.
                                Mode::Global => std::thread::sleep(DECODE),
                            }
                            std::hint::black_box(srv.render_object(room, image_id).unwrap());
                        }
                    }
                    lat.push(t.elapsed().as_micros() as u64);
                }
                lat
            }));
        }
        let mut latencies_us: Vec<u64> = Vec::new();
        for w in workers {
            latencies_us.extend(w.join().unwrap());
        }
        let wall = start.elapsed();
        drop(conns);
        RunResult {
            wall,
            latencies_us,
            ops: threads * OPS,
        }
    }

    fn quantile(sorted: &[u64], q: f64) -> u64 {
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    }

    println!(
        "{} rooms max, {MEMBERS} members/room, {OPS} ops/thread; every 4th op is a",
        MAX_THREADS
    );
    println!("1 ms CT-decode hold of the room's lock (the paper's slow fetch+decode)\n");
    println!(
        "{:<10} {:>8} {:>12} {:>10} {:>10} {:>9}",
        "mode", "threads", "ops/s", "p50 µs", "p99 µs", "scaling"
    );

    let mut results: Vec<(Mode, usize, f64, u64, u64)> = Vec::new();
    let mut entries = Vec::new();
    for mode in [Mode::Global, Mode::PerRoom] {
        let mut base_thr = 0.0f64;
        for threads in [1usize, 2, 4, 8] {
            let r = run(mode, threads);
            let thr = r.ops as f64 / r.wall.as_secs_f64();
            let mut lat = r.latencies_us;
            lat.sort_unstable();
            let (p50, p99) = (quantile(&lat, 0.50), quantile(&lat, 0.99));
            if threads == 1 {
                base_thr = thr;
            }
            let scaling = thr / base_thr;
            let mode_name = match mode {
                Mode::Global => "global",
                Mode::PerRoom => "per-room",
            };
            println!(
                "{:<10} {:>8} {:>12.0} {:>10} {:>10} {:>8.2}x",
                mode_name, threads, thr, p50, p99, scaling
            );
            results.push((mode, threads, thr, p50, p99));
            entries.push(format!(
                concat!(
                    "    {{\"mode\": \"{}\", \"threads\": {}, \"rooms\": {}, ",
                    "\"members_per_room\": {}, \"ops\": {}, \"wall_ms\": {:.1}, ",
                    "\"throughput_ops_s\": {:.0}, \"p50_us\": {}, \"p99_us\": {}, ",
                    "\"scaling_vs_1_thread\": {:.3}}}"
                ),
                mode_name,
                threads,
                threads,
                MEMBERS,
                r.ops,
                r.wall.as_secs_f64() * 1e3,
                thr,
                p50,
                p99,
                scaling
            ));
        }
    }

    let thr_of = |mode: Mode, threads: usize| {
        results
            .iter()
            .find(|(m, t, ..)| *m == mode && *t == threads)
            .map(|&(_, _, thr, _, _)| thr)
            .unwrap()
    };
    let scaling_1_to_4 = thr_of(Mode::PerRoom, 4) / thr_of(Mode::PerRoom, 1);
    let vs_baseline_4 = thr_of(Mode::PerRoom, 4) / thr_of(Mode::Global, 4);
    let p99_of = |mode: Mode, threads: usize| {
        results
            .iter()
            .find(|(m, t, ..)| *m == mode && *t == threads)
            .map(|&(.., p99)| p99)
            .unwrap()
    };
    println!(
        "\nper-room scaling 1->4 threads: {scaling_1_to_4:.2}x \
         (gate: >= 2x); vs global baseline at 4 threads: {vs_baseline_4:.2}x"
    );
    println!(
        "p99 at 4 threads: global {} µs vs per-room {} µs",
        p99_of(Mode::Global, 4),
        p99_of(Mode::PerRoom, 4)
    );

    // The lock-layer instrumentation accumulated across every run.
    let snap = Registry::global().snapshot();
    println!(
        "lock layer: map reads {}, map writes {}",
        snap.counters
            .get("server.rooms.map.read.count")
            .copied()
            .unwrap_or(0),
        snap.counters
            .get("server.rooms.map.write.count")
            .copied()
            .unwrap_or(0)
    );
    for name in ["server.room.lock.wait.us", "server.room.lock.hold.us"] {
        if let Some(h) = snap.histograms.get(name) {
            println!(
                "  {name}: {} samples, p50 {} p95 {} p99 {} max {} µs",
                h.count,
                h.p50(),
                h.p95(),
                h.p99(),
                h.max
            );
        }
    }

    let json = format!(
        concat!(
            "{{\n  \"ops_per_thread\": {},\n  \"members_per_room\": {},\n",
            "  \"decode_hold_ms\": 1,\n  \"runs\": [\n{}\n  ],\n",
            "  \"per_room_scaling_1_to_4\": {:.3},\n",
            "  \"per_room_vs_global_at_4\": {:.3}\n}}\n"
        ),
        OPS,
        MEMBERS,
        entries.join(",\n"),
        scaling_1_to_4,
        vs_baseline_4
    );
    std::fs::write("BENCH_concurrency.json", &json).expect("write BENCH_concurrency.json");
    println!("wrote BENCH_concurrency.json ({} bytes)", json.len());

    assert!(
        scaling_1_to_4 >= 2.0,
        "E17: multi-room throughput scaled only {scaling_1_to_4:.2}x from 1 to 4 \
         threads (gate: >= 2x)"
    );
    println!("(independent rooms now ride their own locks: the decode stall of one");
    println!(" room no longer serialises the whole server)");
}

fn e18_cluster() {
    use rcmo::obs::Metrics;
    use rcmo_bench::cluster_fixture;
    use rcmo_server::{ClusterConfig, ClusterFrontend, ClusterStats, ShardHealth};
    use std::sync::Arc;

    section(
        "E18",
        "sharded cluster: room-throughput scaling, live migration, zero-loss failover",
    );

    const ROOMS: usize = 8;
    const OPS: usize = 120;
    // Modeled reflector event-loop service time per routed call: the
    // single-threaded-daemon bottleneck E17's decode stall plays for
    // room locks, now at the shard ingress.
    const SERVICE_US: u64 = 300;

    /// A fresh cluster with rooms pinned round-robin across shards (the
    /// consistent hash alone spreads unevenly at this small N; pinning by
    /// live migration keeps the scaling runs comparable).
    fn build(shards: usize, service_us: u64) -> (Arc<ClusterFrontend>, Vec<u64>, u64, u64) {
        let mut cfg = ClusterConfig::new(shards);
        cfg.ingress_service_us = service_us;
        let (cf, doc_id, image_id) = cluster_fixture(ROOMS, cfg);
        let mut rooms = Vec::new();
        for r in 0..ROOMS {
            let owner = format!("user-{r}");
            let room = cf.create_room(&owner, &format!("e18-{r}"), doc_id).unwrap();
            cf.migrate_room(room, r % shards).unwrap();
            rooms.push(room);
        }
        (Arc::new(cf), rooms, doc_id, image_id)
    }

    // ---- Part 1: room-throughput scaling, 1 -> 4 shards -----------------
    // Eight rooms, one driver thread each. One shard serialises all eight
    // through its single ingress; four shards run two rooms' worth each.
    println!("part 1: {ROOMS} rooms x {OPS} ops, {SERVICE_US} µs reflector service/call\n");
    println!(
        "{:>7} {:>12} {:>10} {:>10} {:>9}",
        "shards", "ops/s", "p50 µs", "p99 µs", "scaling"
    );

    fn quantile(sorted: &[u64], q: f64) -> u64 {
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    }

    let mut entries = Vec::new();
    let mut thr_by_shards: Vec<(usize, f64)> = Vec::new();
    for shards in [1usize, 2, 4] {
        let (cf, rooms, _doc_id, image_id) = build(shards, SERVICE_US);
        let mut conns = Vec::new();
        for (r, &room) in rooms.iter().enumerate() {
            let owner = format!("user-{r}");
            conns.push(cf.join_default(room, &owner).unwrap());
            cf.open_image(room, &owner, image_id).unwrap();
        }
        let start = Instant::now();
        let mut workers = Vec::new();
        for (r, &room) in rooms.iter().enumerate() {
            let cf = Arc::clone(&cf);
            let user = format!("user-{r}");
            workers.push(std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(OPS);
                for i in 0..OPS {
                    let t = Instant::now();
                    match i % 3 {
                        0 => cf
                            .act(
                                room,
                                &user,
                                Action::Chat {
                                    text: format!("op {i}"),
                                },
                            )
                            .unwrap(),
                        1 => cf
                            .act(
                                room,
                                &user,
                                Action::AddLine {
                                    object: image_id,
                                    element: LineElement {
                                        x0: (i % 64) as i64,
                                        y0: 0,
                                        x1: 63,
                                        y1: (i % 64) as i64,
                                        intensity: 190,
                                    },
                                },
                            )
                            .unwrap(),
                        _ => {
                            std::hint::black_box(cf.render_presentation(room, &user).unwrap());
                        }
                    }
                    lat.push(t.elapsed().as_micros() as u64);
                }
                lat
            }));
        }
        let mut lat: Vec<u64> = Vec::new();
        for w in workers {
            lat.extend(w.join().unwrap());
        }
        let wall = start.elapsed();
        drop(conns);
        let thr = (ROOMS * OPS) as f64 / wall.as_secs_f64();
        lat.sort_unstable();
        let (p50, p99) = (quantile(&lat, 0.50), quantile(&lat, 0.99));
        let base = thr_by_shards.first().map(|&(_, t)| t).unwrap_or(thr);
        let scaling = thr / base;
        println!("{shards:>7} {thr:>12.0} {p50:>10} {p99:>10} {scaling:>8.2}x");
        entries.push(format!(
            concat!(
                "    {{\"shards\": {}, \"rooms\": {}, \"ops\": {}, \"wall_ms\": {:.1}, ",
                "\"throughput_ops_s\": {:.0}, \"p50_us\": {}, \"p99_us\": {}, ",
                "\"scaling_vs_1_shard\": {:.3}}}"
            ),
            shards,
            ROOMS,
            ROOMS * OPS,
            wall.as_secs_f64() * 1e3,
            thr,
            p50,
            p99,
            scaling
        ));
        thr_by_shards.push((shards, thr));
    }
    let thr_of = |n: usize| {
        thr_by_shards
            .iter()
            .find(|&&(s, _)| s == n)
            .map(|&(_, t)| t)
            .unwrap()
    };
    let scaling_1_to_4 = thr_of(4) / thr_of(1);
    println!("\nroom-throughput scaling 1->4 shards: {scaling_1_to_4:.2}x (gate: >= 2x)");

    // ---- Part 2: live migration + seeded shard kill under traffic ------
    // Four shards, rooms pinned two per shard. Traffic runs in three
    // phases; between them two rooms live-migrate and shard 3 is killed
    // (its heartbeats stop; the detector declares it dead; failover
    // rebuilds its rooms from the frontend-held replicas).
    println!("\npart 2: migration + failover under traffic (4 shards, seeded kill of shard 3)");
    let (cf, rooms, _doc_id, _image_id) = build(4, 0);
    let mut conns = Vec::new();
    for (r, &room) in rooms.iter().enumerate() {
        conns.push(cf.join_default(room, &format!("user-{r}")).unwrap());
    }
    let chat = |room: u64, r: usize, tag: &str, i: usize| {
        cf.act(
            room,
            &format!("user-{r}"),
            Action::Chat {
                text: format!("{tag}-{i}"),
            },
        )
        .unwrap();
    };
    const PHASE_OPS: usize = 40;
    // Phase A: all eight rooms chatting.
    for i in 0..PHASE_OPS {
        for (r, &room) in rooms.iter().enumerate() {
            chat(room, r, "a", i);
        }
    }
    // Live migrations with members attached: room 0 (shard 0 -> 1) and
    // room 5 (shard 1 -> 2). Streams must continue without a gap.
    cf.migrate_room(rooms[0], 1).unwrap();
    cf.migrate_room(rooms[5], 2).unwrap();
    println!(
        "  migrated room {} -> shard 1, room {} -> shard 2 (live)",
        rooms[0], rooms[5]
    );
    // Phase B.
    for i in 0..PHASE_OPS {
        for (r, &room) in rooms.iter().enumerate() {
            chat(room, r, "b", i);
        }
    }
    // Seeded kill: shard 3 (hosting rooms 3 and 7) stops heartbeating.
    cf.kill_shard(3);
    let moved = cf.advance_and_fail_over(10.0).unwrap();
    println!(
        "  shard 3 declared dead at t={:.1}s; failover re-homed {:?}",
        cf.now_s(),
        moved
    );
    assert_eq!(
        moved.len(),
        2,
        "E18: expected both of shard 3's rooms to fail over"
    );
    let failed_rooms: Vec<usize> = rooms
        .iter()
        .enumerate()
        .filter(|(_, id)| moved.iter().any(|(m, _)| m == *id))
        .map(|(r, _)| r)
        .collect();
    assert_eq!(failed_rooms, vec![3, 7]);

    // Clients of the dead shard resync (PR 1 path) before phase C; their
    // reconstructed streams must equal the uninterrupted reference.
    let mut resynced = Vec::new();
    for &r in &failed_rooms {
        let reference: Vec<_> = conns[r].events.try_iter().collect();
        let (conn2, catch_up) = cf.resync(rooms[r], &format!("user-{r}"), 0).unwrap();
        let Resync::Events(replayed) = catch_up else {
            panic!("E18: room {r} resync fell back to snapshot within horizon");
        };
        let identical =
            replayed.len() >= reference.len() && replayed[..reference.len()] == reference[..];
        let dense = replayed.windows(2).all(|w| w[1].seq == w[0].seq + 1);
        println!(
            "  room {} rebuilt: {} events replayed, identical prefix: {identical}, dense: {dense}",
            rooms[r],
            replayed.len()
        );
        assert!(identical && dense, "E18: event loss detected on room {r}");
        resynced.push((r, conn2));
    }
    // Phase C: every room — including the failed-over two — keeps serving.
    for i in 0..PHASE_OPS {
        for (r, &room) in rooms.iter().enumerate() {
            chat(room, r, "c", i);
        }
    }
    // Survivor streams span migrations and the failover without a gap.
    for (r, conn) in conns.iter().enumerate() {
        if failed_rooms.contains(&r) {
            continue;
        }
        let seqs: Vec<u64> = conn.events.try_iter().map(|e| e.seq).collect();
        assert!(
            seqs.windows(2).all(|w| w[1] == w[0] + 1),
            "E18: gap in room {r}'s stream"
        );
        assert_eq!(*seqs.last().unwrap(), cf.last_seq(rooms[r]).unwrap());
    }
    for (r, conn) in &resynced {
        let seqs: Vec<u64> = conn.events.try_iter().map(|e| e.seq).collect();
        assert!(
            seqs.windows(2).all(|w| w[1] == w[0] + 1),
            "E18: gap in failed-over room {r}'s stream"
        );
        assert_eq!(*seqs.last().unwrap(), cf.last_seq(rooms[*r]).unwrap());
    }

    let stats: ClusterStats = Metrics::metrics(cf.as_ref());
    println!(
        "  cluster stats: {} migrations, {} failover rooms, {} lossy events, {} route retries",
        stats.migrations, stats.failover_rooms, stats.failover_lossy_events, stats.route_retries
    );
    assert_eq!(stats.failover_shards, 1);
    assert_eq!(stats.failover_rooms, 2);
    assert_eq!(
        stats.failover_lossy_events, 0,
        "E18: failover dropped event effects"
    );
    for s in 0..4 {
        let health = cf.shard_health(s);
        println!("  shard {s} health: {health:?}");
        assert_eq!(
            health,
            if s == 3 {
                ShardHealth::Dead
            } else {
                ShardHealth::Alive
            }
        );
    }

    let json = format!(
        concat!(
            "{{\n  \"rooms\": {},\n  \"ops_per_room\": {},\n",
            "  \"ingress_service_us\": {},\n  \"runs\": [\n{}\n  ],\n",
            "  \"scaling_1_to_4_shards\": {:.3},\n",
            "  \"migrations\": {},\n  \"failover_rooms\": {},\n",
            "  \"failover_lossy_events\": {},\n  \"zero_event_loss\": true\n}}\n"
        ),
        ROOMS,
        OPS,
        SERVICE_US,
        entries.join(",\n"),
        scaling_1_to_4,
        stats.migrations,
        stats.failover_rooms,
        stats.failover_lossy_events
    );
    std::fs::write("BENCH_cluster.json", &json).expect("write BENCH_cluster.json");
    println!("wrote BENCH_cluster.json ({} bytes)", json.len());

    assert!(
        scaling_1_to_4 >= 2.0,
        "E18: room throughput scaled only {scaling_1_to_4:.2}x from 1 to 4 shards (gate: >= 2x)"
    );
    println!("(a dead shard costs only its own rooms one resync; everyone else never notices)");
}

/// E19 (lecture fan-out): the role-based lecture at audience scale. One
/// presenter broadcasts ~8 KiB slide payloads to 10 → 10 000 viewers; the
/// room encodes each event **once** into a shared `Arc` payload and fans
/// out pointers, so the per-event cost must grow far slower than the
/// audience (gate: ≤ 0.5× the audience factor), with exactly one encode
/// per event at every scale and zero slow-consumer evictions. Then a
/// 1 000-viewer late-join storm hits the 10 000-member room mid-talk:
/// every joiner must catch up through a *snapshot* resync (the talk is far
/// past the replay horizon), served from the room's snapshot byte cache,
/// with their live stream starting exactly at `snapshot.seq + 1` and
/// staying gap-free to the end — zero event loss — while the presenter's
/// per-broadcast latency never stalls. Writes `BENCH_fanout.json`; every
/// gate aborts the run on violation, which is the CI gate.
fn e19_fanout() {
    section(
        "E19",
        "role-based lecture: encode-once fan-out and the 1k late-join storm",
    );
    use std::hint::black_box;
    const EVENTS: usize = 200;
    const ROUNDS: usize = 3;
    const BASELINE_ITERS: usize = 20;
    const STORM: usize = 1_000;
    const AUDIENCES: [usize; 4] = [10, 100, 1_000, 10_000];

    // ~8 KiB slide payload — the size of a delta list or a codec layer
    // packet: the shared buffer the encode-once fan-out materialises
    // exactly once per event (the pre-refactor broadcast deep-cloned it
    // once per member).
    let caption: String = "the CP-net of slide 7, reconfigured ".repeat(230);

    fn drain_all(conns: &[ClientConnection]) {
        for c in conns {
            while c.events.try_recv().is_some() {}
        }
    }

    println!(
        "{:>9} {:>10} {:>14} {:>10} {:>12} {:>13}",
        "audience", "join ms", "cost/event us", "encodes", "deliveries", "clone-base us"
    );
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    // The 10k room survives the loop: the storm phase below hits it.
    let mut lecture = None;
    for &n in &AUDIENCES {
        let users = if n == *AUDIENCES.last().unwrap() {
            n + STORM + 1
        } else {
            n + 1
        };
        let (srv, doc_id, _image_id) = consultation_fixture(users);
        let room = srv.create_room("user-0", "lecture", doc_id).unwrap();
        let presenter = srv.join(room, &JoinRequest::presenter("user-0")).unwrap();

        // Admission: each join broadcasts a `Joined` to everyone already
        // seated, so the storm of N admissions is inherently O(N²) events;
        // periodic drains keep the bounded queues shallow (nobody may be
        // evicted as a slow consumer during admission).
        let t_join = Instant::now();
        let mut viewers: Vec<ClientConnection> = Vec::with_capacity(n);
        for i in 1..=n {
            viewers.push(
                srv.join(room, &JoinRequest::viewer(&format!("user-{i}")))
                    .unwrap(),
            );
            if i % 512 == 0 {
                drain_all(&viewers);
            }
        }
        drain_all(&viewers);
        drain_all(std::slice::from_ref(&presenter));
        let join_ms = t_join.elapsed().as_secs_f64() * 1e3;
        assert_eq!(srv.members(room).unwrap().len(), n + 1);

        // The lecture: EVENTS captioned slides per round, timed. The
        // first round doubles as warmup (queues and allocator touched);
        // best-of-ROUNDS is the stable figure the gate compares — the
        // experiment may run after E1..E18 have churned the heap.
        let before = srv.room_stats(room).unwrap();
        let mut cost_per_event_us = f64::INFINITY;
        for round in 0..ROUNDS {
            drain_all(&viewers);
            drain_all(std::slice::from_ref(&presenter));
            let t = Instant::now();
            for i in 0..EVENTS {
                srv.act(
                    room,
                    "user-0",
                    Action::Chat {
                        text: format!("slide {round}-{i}: {caption}"),
                    },
                )
                .unwrap();
            }
            cost_per_event_us =
                cost_per_event_us.min(t.elapsed().as_secs_f64() * 1e6 / EVENTS as f64);
        }
        let after = srv.room_stats(room).unwrap();

        let encodes = after.events_encoded - before.events_encoded;
        let deliveries = after.events_delivered - before.events_delivered;
        assert_eq!(
            encodes,
            (ROUNDS * EVENTS) as u64,
            "E19: encode-once violated at audience {n}: {encodes} encodes for {} events",
            ROUNDS * EVENTS
        );
        assert_eq!(
            after.slow_consumers_evicted, before.slow_consumers_evicted,
            "E19: audience {n} lost members to slow-consumer eviction mid-lecture"
        );
        assert_eq!(
            deliveries,
            (ROUNDS * EVENTS * (n + 1)) as u64,
            "E19: audience {n} deliveries off: every member gets every event"
        );

        // Zero loss at the receiving edge: a sampled viewer saw every
        // slide, gap-free, through the room's last sequence number.
        let last = srv.last_seq(room).unwrap();
        let sample: Vec<_> = viewers[n / 2].events.try_iter().collect();
        let seqs: Vec<u64> = sample.iter().map(|e| e.seq).collect();
        assert!(
            seqs.windows(2).all(|w| w[1] == w[0] + 1),
            "E19: audience {n}: sampled viewer saw a sequence gap"
        );
        assert_eq!(*seqs.last().unwrap(), last);
        assert_eq!(
            sample
                .iter()
                .filter(|e| matches!(&e.event, RoomEvent::Chat { .. }))
                .count(),
            EVENTS,
            "E19: audience {n}: sampled viewer lost slides"
        );

        // The pre-refactor cost model for reference: one deep payload
        // clone per member per event.
        let proto = RoomEvent::Chat {
            user: "user-0".to_string(),
            text: format!("slide 0: {caption}"),
        };
        let t = Instant::now();
        for _ in 0..BASELINE_ITERS {
            for _ in 0..n + 1 {
                black_box(proto.clone());
            }
        }
        let clone_us = t.elapsed().as_secs_f64() * 1e6 / BASELINE_ITERS as f64;

        println!(
            "{:>9} {:>10.1} {:>14.2} {:>10} {:>12} {:>13.2}",
            n, join_ms, cost_per_event_us, encodes, deliveries, clone_us
        );
        entries.push(format!(
            concat!(
                "    {{\"audience\": {}, \"events\": {}, \"join_ms\": {:.1}, ",
                "\"cost_per_event_us\": {:.2}, \"encodes\": {}, \"deliveries\": {}, ",
                "\"clone_baseline_us\": {:.2}, \"slow_consumers_evicted\": 0}}"
            ),
            n, EVENTS, join_ms, cost_per_event_us, encodes, deliveries, clone_us
        ));
        rows.push((n, cost_per_event_us));
        if n == *AUDIENCES.last().unwrap() {
            lecture = Some((srv, room, presenter, viewers));
        }
    }

    // The tentpole gate: 1000× the audience must cost far less than 1000×
    // per event — the shared payload is encoded once, so only the pointer
    // fan-out scales with N.
    let (n_small, c_small) = rows[0];
    let (n_big, c_big) = rows[rows.len() - 1];
    let audience_factor = n_big as f64 / n_small as f64;
    let cost_factor = c_big / c_small;
    println!(
        "audience x{audience_factor:.0} cost x{cost_factor:.1} \
         (gate: <= {:.0}, i.e. 0.5x linear)",
        0.5 * audience_factor
    );
    assert!(
        cost_factor <= 0.5 * audience_factor,
        "E19: fan-out cost scaled {cost_factor:.1}x over a {audience_factor:.0}x audience \
         (gate: <= {:.0}x) — encode-once is not paying off",
        0.5 * audience_factor
    );

    // The late-join storm: 1 000 new viewers join the 10 000-member room
    // mid-talk. The talk is thousands of events past the 1 024-event
    // replay horizon, so every catch-up must be a snapshot — served from
    // the snapshot byte cache — and the presenter keeps presenting.
    let (srv, room, presenter, viewers) = lecture.unwrap();
    let cache = |snap: &MetricsSnapshot, k: &str| snap.counters.get(k).copied().unwrap_or(0);
    let m0 = srv.metrics();
    let mut joiners: Vec<(ClientConnection, u64)> = Vec::with_capacity(STORM);
    let mut max_presenter_ms = 0f64;
    let t_storm = Instant::now();
    for j in 0..STORM {
        let user = format!("user-{}", n_big + 1 + j);
        let _admitted = srv.join(room, &JoinRequest::viewer(&user)).unwrap();
        let (conn, catch_up) = srv.resync(room, &user, 0).unwrap();
        let snap_seq = match catch_up {
            Resync::Snapshot(s) => s.seq,
            Resync::Events(ev) => panic!(
                "E19: joiner {j} replayed {} events instead of a snapshot catch-up",
                ev.len()
            ),
        };
        joiners.push((conn, snap_seq));
        if j % 50 == 0 {
            // The talk goes on mid-storm; the hot path must not stall.
            let t = Instant::now();
            srv.act(
                room,
                "user-0",
                Action::Chat {
                    text: format!("storm slide {j}: {caption}"),
                },
            )
            .unwrap();
            max_presenter_ms = max_presenter_ms.max(t.elapsed().as_secs_f64() * 1e3);
            drain_all(&viewers);
            drain_all(std::slice::from_ref(&presenter));
        }
    }
    let storm_ms = t_storm.elapsed().as_secs_f64() * 1e3;

    // Closing slide, then the zero-loss audit: every joiner's live stream
    // starts exactly one past their snapshot and runs gap-free to the end.
    srv.act(
        room,
        "user-0",
        Action::Chat {
            text: format!("fin: {caption}"),
        },
    )
    .unwrap();
    let last = srv.last_seq(room).unwrap();
    for (j, (conn, snap_seq)) in joiners.iter().enumerate() {
        let seqs: Vec<u64> = conn.events.try_iter().map(|e| e.seq).collect();
        assert_eq!(
            seqs[0],
            snap_seq + 1,
            "E19: joiner {j}'s stream does not resume at snapshot.seq + 1"
        );
        assert!(
            seqs.windows(2).all(|w| w[1] == w[0] + 1),
            "E19: joiner {j} has a gap between snapshot and live stream"
        );
        assert_eq!(
            *seqs.last().unwrap(),
            last,
            "E19: joiner {j} lost the tail of the talk"
        );
    }
    let m1 = srv.metrics();
    let cache_hits = cache(&m1, "server.room.snapshot_cache.hit.count")
        - cache(&m0, "server.room.snapshot_cache.hit.count");
    let cache_misses = cache(&m1, "server.room.snapshot_cache.miss.count")
        - cache(&m0, "server.room.snapshot_cache.miss.count");
    println!(
        "storm: {STORM} joiners in {storm_ms:.0} ms, all snapshot-resynced \
         (cache {cache_hits} hits / {cache_misses} misses), \
         presenter max {max_presenter_ms:.2} ms/broadcast, zero loss"
    );
    assert!(
        cache_hits >= (STORM - 5) as u64,
        "E19: snapshot byte cache missed the storm ({cache_hits} hits)"
    );
    assert!(
        max_presenter_ms < 250.0,
        "E19: presenter stalled {max_presenter_ms:.0} ms mid-storm (gate: < 250 ms)"
    );

    let json = format!(
        concat!(
            "{{\n  \"events_per_round\": {},\n  \"rounds\": {},\n  \"fanout\": [\n{}\n  ],\n",
            "  \"sublinear_gate\": {{\"audience_factor\": {:.0}, \"cost_factor\": {:.2}, ",
            "\"max_cost_factor\": {:.0}}},\n",
            "  \"join_storm\": {{\"joiners\": {}, \"snapshot_resyncs\": {}, ",
            "\"storm_ms\": {:.0}, \"snapshot_cache_hits\": {}, \"snapshot_cache_misses\": {}, ",
            "\"max_presenter_broadcast_ms\": {:.2}, \"event_loss\": 0}}\n}}\n"
        ),
        EVENTS,
        ROUNDS,
        entries.join(",\n"),
        audience_factor,
        cost_factor,
        0.5 * audience_factor,
        STORM,
        STORM,
        storm_ms,
        cache_hits,
        cache_misses,
        max_presenter_ms
    );
    std::fs::write("BENCH_fanout.json", &json).expect("write BENCH_fanout.json");
    println!("wrote BENCH_fanout.json ({} bytes)", json.len());
    println!(
        "(one encode per event at every audience size; the 10k room pays pointers, not payloads)"
    );
}

/// E20 (storage throughput): committed-txns/s at 1/4/8 concurrent writer
/// threads through the group-commit pipeline, against the old
/// checkpoint-per-commit (eager) baseline, plus a reader-starvation probe.
///
/// A [`SlowSyncBackend`] charges a fixed latency per fsync, modelling the
/// spinning-disk commit bottleneck: with early lock release one WAL sync
/// covers every commit published while the sync was in flight, so
/// throughput must scale with writers even though each acknowledged commit
/// still waits for durability. The probe runs a snapshot reader full-tilt
/// while 4 writers hammer commits; its p99 proves reads ride the committed
/// snapshot instead of the writer lock. Writes `BENCH_storage_scale.json`;
/// the run aborts unless throughput scales >= 2x from 1 to 4 writers (the
/// CI gate).
fn e20_storage_scale() {
    use rcmo::storage::{
        Column, ColumnType, Database, DbOptions, MemBackend, RowValue, Schema, SlowSyncBackend,
    };
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    section(
        "E20",
        "storage commit throughput: group commit, snapshot reads",
    );

    const TXNS_PER_WRITER: usize = 50;
    const SYNC_LATENCY: Duration = Duration::from_millis(1);
    const WINDOW: Duration = Duration::from_micros(100);

    fn build(eager: bool) -> (Database, Arc<AtomicU64>) {
        let data = SlowSyncBackend::new(MemBackend::new(), SYNC_LATENCY);
        let wal = SlowSyncBackend::new(MemBackend::new(), SYNC_LATENCY);
        let wal_syncs = wal.sync_counter();
        let opts = if eager {
            DbOptions::eager()
        } else {
            DbOptions {
                group_commit_window: WINDOW,
                // Keep checkpoints out of the measured window: throughput
                // here is about the commit path, not the fold.
                checkpoint_commits: 100_000,
                checkpoint_wal_bytes: 1 << 30,
                ..DbOptions::default()
            }
        };
        let db = Database::open_with_backends_opts(Box::new(data), Box::new(wal), opts).unwrap();
        {
            let mut tx = db.begin().unwrap();
            tx.create_table(
                "e20",
                Schema::new(vec![
                    Column::new("ID", ColumnType::U64),
                    Column::new("V", ColumnType::I64),
                ])
                .unwrap(),
            )
            .unwrap();
            tx.commit().unwrap();
        }
        (db, wal_syncs)
    }

    struct RunResult {
        txns: usize,
        wall: std::time::Duration,
        wal_syncs: u64,
    }

    fn run_writers(eager: bool, writers: usize) -> RunResult {
        let (db, wal_syncs) = build(eager);
        let syncs_before = wal_syncs.load(Ordering::Relaxed);
        let start = Instant::now();
        std::thread::scope(|s| {
            for w in 0..writers {
                let db = &db;
                s.spawn(move || {
                    for i in 0..TXNS_PER_WRITER {
                        let key = (w * TXNS_PER_WRITER + i + 1) as u64;
                        let mut tx = db.begin().unwrap();
                        tx.insert("e20", vec![RowValue::U64(key), RowValue::I64(key as i64)])
                            .unwrap();
                        tx.commit().unwrap();
                    }
                });
            }
        });
        let wall = start.elapsed();
        let txns = writers * TXNS_PER_WRITER;
        let mut tx = db.begin().unwrap();
        assert_eq!(tx.count("e20").unwrap(), txns, "lost commits");
        RunResult {
            txns,
            wall,
            wal_syncs: wal_syncs.load(Ordering::Relaxed) - syncs_before,
        }
    }

    fn quantile(sorted: &[u64], q: f64) -> u64 {
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    }

    println!(
        "{TXNS_PER_WRITER} txns/writer, {}µs modelled fsync, {}µs group-commit window\n",
        SYNC_LATENCY.as_micros(),
        WINDOW.as_micros()
    );
    println!(
        "{:<14} {:>8} {:>12} {:>11} {:>12} {:>9}",
        "mode", "writers", "txns/s", "wal syncs", "txns/sync", "scaling"
    );

    let mut entries = Vec::new();
    let mut grouped: Vec<(usize, f64)> = Vec::new();
    let mut eager_4 = 0.0f64;
    for (mode_name, eager, threads) in [
        ("eager", true, 1usize),
        ("eager", true, 4),
        ("group-commit", false, 1),
        ("group-commit", false, 4),
        ("group-commit", false, 8),
    ] {
        let r = run_writers(eager, threads);
        let thr = r.txns as f64 / r.wall.as_secs_f64();
        let base = grouped.first().map(|&(_, t)| t);
        let scaling = if eager {
            1.0
        } else {
            base.map_or(1.0, |b| thr / b)
        };
        if !eager {
            grouped.push((threads, thr));
        } else if threads == 4 {
            eager_4 = thr;
        }
        println!(
            "{:<14} {:>8} {:>12.0} {:>11} {:>12.1} {:>8.2}x",
            mode_name,
            threads,
            thr,
            r.wal_syncs,
            r.txns as f64 / r.wal_syncs.max(1) as f64,
            scaling
        );
        entries.push(format!(
            concat!(
                "    {{\"mode\": \"{}\", \"writers\": {}, \"txns\": {}, ",
                "\"wall_ms\": {:.1}, \"throughput_txns_s\": {:.0}, ",
                "\"wal_syncs\": {}, \"scaling_vs_1_writer\": {:.3}}}"
            ),
            mode_name,
            threads,
            r.txns,
            r.wall.as_secs_f64() * 1e3,
            thr,
            r.wal_syncs,
            scaling
        ));
    }

    // Reader-starvation probe: one reader scans as fast as it can while 4
    // writers commit through the slow-fsync WAL. Snapshot reads never take
    // the writer lock, so read latency must stay flat while each commit
    // spends ~1 ms waiting on "disk".
    let (db, _) = build(false);
    let stop = AtomicBool::new(false);
    let (reads, read_lat) = std::thread::scope(|s| {
        for w in 0..4usize {
            let db = &db;
            s.spawn(move || {
                for i in 0..TXNS_PER_WRITER {
                    let key = (w * TXNS_PER_WRITER + i + 1) as u64;
                    let mut tx = db.begin().unwrap();
                    tx.insert("e20", vec![RowValue::U64(key), RowValue::I64(1)])
                        .unwrap();
                    tx.commit().unwrap();
                }
            });
        }
        let reader = s.spawn(|| {
            let mut lat = Vec::new();
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let t = Instant::now();
                let snap = db.begin_read().unwrap();
                std::hint::black_box(snap.count("e20").unwrap());
                lat.push(t.elapsed().as_micros() as u64);
                reads += 1;
            }
            (reads, lat)
        });
        // Writers finish first; scope waits on them implicitly via handles
        // being joined at scope exit, so signal the reader from a watcher.
        s.spawn(|| {
            // Poll until all rows are in, then stop the reader.
            loop {
                let mut tx = db.begin().unwrap();
                if tx.count("e20").unwrap() >= 4 * TXNS_PER_WRITER {
                    break;
                }
                drop(tx);
                std::thread::sleep(Duration::from_millis(1));
            }
            stop.store(true, Ordering::Relaxed);
        });
        reader.join().unwrap()
    });
    let mut lat = read_lat;
    lat.sort_unstable();
    let (read_p50, read_p99) = (quantile(&lat, 0.50), quantile(&lat, 0.99));
    println!(
        "\nreader probe: {reads} snapshot scans during the 4-writer run, \
         p50 {read_p50} µs, p99 {read_p99} µs"
    );

    let thr_of = |threads: usize| {
        grouped
            .iter()
            .find(|&&(t, _)| t == threads)
            .map(|&(_, thr)| thr)
            .unwrap()
    };
    let scaling_1_to_4 = thr_of(4) / thr_of(1);
    let vs_eager_4 = thr_of(4) / eager_4;
    println!(
        "group-commit scaling 1->4 writers: {scaling_1_to_4:.2}x (gate: >= 2x); \
         vs eager baseline at 4 writers: {vs_eager_4:.2}x"
    );

    let json = format!(
        concat!(
            "{{\n  \"txns_per_writer\": {},\n  \"sync_latency_us\": {},\n",
            "  \"group_commit_window_us\": {},\n  \"runs\": [\n{}\n  ],\n",
            "  \"reader_probe\": {{\"reads\": {}, \"p50_us\": {}, \"p99_us\": {}}},\n",
            "  \"scaling_1_to_4_writers\": {:.3},\n",
            "  \"vs_eager_at_4_writers\": {:.3}\n}}\n"
        ),
        TXNS_PER_WRITER,
        SYNC_LATENCY.as_micros(),
        WINDOW.as_micros(),
        entries.join(",\n"),
        reads,
        read_p50,
        read_p99,
        scaling_1_to_4,
        vs_eager_4
    );
    std::fs::write("BENCH_storage_scale.json", &json).expect("write BENCH_storage_scale.json");
    println!("wrote BENCH_storage_scale.json ({} bytes)", json.len());

    assert!(
        scaling_1_to_4 >= 2.0,
        "E20: commit throughput scaled only {scaling_1_to_4:.2}x from 1 to 4 \
         writers (gate: >= 2x)"
    );
    assert!(
        reads > 0 && read_p99 < 250_000,
        "E20: snapshot reader starved (p99 {read_p99} µs over {reads} reads)"
    );
    println!("(readers scanned freely while every commit waited on the slow fsync:");
    println!(" the write path no longer holds the database lock across durability)");
}

/// E21 (whole-system chaos hour): the deterministic simulator drives 10k
/// seeded rooms through a full virtual conference hour — scripted personas
/// (lurkers, annotators, late joiners, flappy modem viewers, presenter
/// handoff chains, room churners) plus chaos actors (shard kills, live
/// migrations, storage crash drills) on one virtual clock. Gates: the
/// invariant oracle must be green (gap-free per-member sequences, zero
/// acked-event loss across failover, bounded queues, storage integrity
/// after every crash, no dead histograms), every registered persona kind
/// must have executed, and a same-seed double run of the small scenario
/// must be byte-identical. Writes `BENCH_sim.json`.
fn e21_sim() {
    use rcmo_sim::{SimConfig, Simulator};

    section("E21", "deterministic whole-system chaos simulation");
    const SEED: u64 = 42;

    // Determinism cross-check first (cheap): the small chaos scenario run
    // twice from the same seed must reproduce trace and metrics
    // byte-for-byte. The rcmo-sim integration test covers this too; doing
    // it here keeps the property on the bench gate even when tests are
    // skipped.
    let s1 = Simulator::run(&SimConfig::small(SEED));
    let s2 = Simulator::run(&SimConfig::small(SEED));
    assert_eq!(
        s1.trace_text, s2.trace_text,
        "E21: same-seed small runs diverged (trace)"
    );
    assert_eq!(
        s1.metrics_text, s2.metrics_text,
        "E21: same-seed small runs diverged (metrics)"
    );
    println!(
        "determinism cross-check: 2x small(seed={SEED}) byte-identical \
         ({} trace lines, fingerprint {:016x})",
        s1.trace_len, s1.trace_fingerprint
    );

    // The full scenario: a 10k-room, 100k-event virtual hour.
    let config = SimConfig::full(SEED);
    let t0 = Instant::now();
    let report = Simulator::run(&config);
    let wall_ms = t0.elapsed().as_millis();

    println!(
        "\nfull scenario: {} rooms, {} actors, {} events over {:.0}s virtual \
         ({} epochs) in {:.1}s wall",
        report.rooms,
        report.actors,
        report.events_executed,
        report.horizon_s,
        report.epochs,
        wall_ms as f64 / 1000.0
    );
    println!(
        "chaos: {} shard kills, {} room failovers, {} migrations, \
         {} crash drills ({} failed), {} persona resyncs",
        report.kills,
        report.failovers,
        report.migrations,
        report.crash_drills,
        report.crash_failures,
        report.resyncs
    );
    println!("\n{:>20} {:>10}", "persona/chaos kind", "steps");
    for (kind, count) in &report.actions {
        println!("{:>20} {:>10}", kind, count);
    }
    println!(
        "\ntrace: {} lines, fingerprint {:016x}",
        report.trace_len, report.trace_fingerprint
    );

    // Export before gating so a red run still leaves the evidence behind.
    let actions = report
        .actions
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let violations = report
        .violations
        .iter()
        .map(|v| format!("    {:?}", v))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"seed\": {},\n",
            "  \"rooms\": {},\n",
            "  \"actors\": {},\n",
            "  \"events_executed\": {},\n",
            "  \"horizon_s\": {},\n",
            "  \"epochs\": {},\n",
            "  \"wall_ms\": {},\n",
            "  \"trace_lines\": {},\n",
            "  \"trace_fingerprint\": \"{:016x}\",\n",
            "  \"kills\": {},\n",
            "  \"failovers\": {},\n",
            "  \"migrations\": {},\n",
            "  \"resyncs\": {},\n",
            "  \"crash_drills\": {},\n",
            "  \"crash_failures\": {},\n",
            "  \"actions\": {{\n{}\n  }},\n",
            "  \"violations\": [\n{}\n  ],\n",
            "  \"metrics\": {}\n",
            "}}\n"
        ),
        report.seed,
        report.rooms,
        report.actors,
        report.events_executed,
        report.horizon_s,
        report.epochs,
        wall_ms,
        report.trace_len,
        report.trace_fingerprint,
        report.kills,
        report.failovers,
        report.migrations,
        report.resyncs,
        report.crash_drills,
        report.crash_failures,
        actions,
        violations,
        report.merged_metrics.to_json().trim_end()
    );
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("wrote BENCH_sim.json ({} bytes)", json.len());

    // Gates.
    assert!(
        report.violations.is_empty(),
        "E21: invariant oracle red — {} violation(s):\n{}",
        report.violations.len(),
        report.violations.join("\n")
    );
    assert_eq!(
        report.crash_failures, 0,
        "E21: {} of {} storage crash drills failed integrity",
        report.crash_failures, report.crash_drills
    );
    let dead: Vec<&str> = report
        .actions
        .iter()
        .filter(|(_, n)| **n == 0)
        .map(|(k, _)| *k)
        .collect();
    assert!(
        dead.is_empty(),
        "E21: persona kinds never stepped: {dead:?}"
    );
    assert!(
        report.kills >= 1 && report.failovers >= 1 && report.migrations >= 1,
        "E21: chaos did not bite (kills={}, failovers={}, migrations={})",
        report.kills,
        report.failovers,
        report.migrations
    );
    println!("\n(one virtual hour of 10k-room conference chaos, replayed from one");
    println!(" seed; every invariant held through every kill, move, and crash)");
}

/// E22 (adaptive delivery): bandwidth-adaptive layered delivery through the
/// shared room object cache vs. fixed full-quality serving, over a
/// heterogeneous modem→LAN viewer population. Three CI gates:
///
/// 1. adaptive p99 time-to-first-render beats fixed-quality serving,
/// 2. storage reads stay O(objects × rooms), never O(viewers) — the room
///    cache absorbs every repeat fetch,
/// 3. every delivery of the layered stream chose a depth from its real
///    prefix ladder (`server.delivery.full_payload.count` stays 0).
///
/// Writes `BENCH_delivery.json`.
fn e22_delivery() {
    use rcmo_server::DeliveryConfig;

    section(
        "E22",
        "bandwidth-adaptive layered delivery vs fixed quality",
    );

    const ROOMS: usize = 8;
    const VIEWERS_PER_ROOM: usize = 120;
    /// Render budget tight enough that a 256×256 CT discriminates the
    /// slow link classes (a modem moves ~1.8 KB in it, the LAN ~312 KB).
    const TTFR_BUDGET_S: f64 = 0.25;

    // (name, bandwidth bits/s, one-way latency s), round-robin across the
    // viewer population — the paper's ISDN-era mix stretched to a LAN.
    let classes: [(&str, f64, f64); 4] = [
        ("modem-56k", 56_000.0, 0.200),
        ("isdn-128k", 128_000.0, 0.080),
        ("dsl-1m", 1_000_000.0, 0.030),
        ("lan-10m", 10_000_000.0, 0.005),
    ];

    let viewers = ROOMS * VIEWERS_PER_ROOM;
    let (srv, doc_id, _image_id) = consultation_fixture(viewers);
    srv.set_delivery_config(DeliveryConfig {
        ttfr_budget_s: TTFR_BUDGET_S,
        ..DeliveryConfig::default()
    });
    let ct = ct_phantom(256, 3, 7).expect("phantom");
    let stream = encode(&ct, &EncoderConfig::default()).expect("layered encode");
    let full_bytes = stream.len() as u64;
    let lic_id = srv
        .database()
        .insert_image(
            "admin",
            &rcmo_mediadb::ImageObject {
                name: "ct-layered".into(),
                quality: 0,
                texts: String::new(),
                cm: Vec::new(),
                data: stream,
            },
        )
        .expect("layered image stored");

    // Per link class: adaptive and fixed TTFR samples, layer tallies.
    struct ClassStats {
        adaptive: Vec<f64>,
        fixed: Vec<f64>,
        layers: usize,
        full_depth: usize,
    }
    let mut stats: Vec<ClassStats> = classes
        .iter()
        .map(|_| ClassStats {
            adaptive: Vec::new(),
            fixed: Vec::new(),
            layers: 0,
            full_depth: 0,
        })
        .collect();

    let mut conns = Vec::new();
    let mut total_layers = 0usize;
    for r in 0..ROOMS {
        let room = srv
            .create_room("user-0", &format!("e22-{r}"), doc_id)
            .expect("room");
        for i in 0..VIEWERS_PER_ROOM {
            let v = r * VIEWERS_PER_ROOM + i;
            let user = format!("user-{v}");
            let (_, bps, latency_s) = classes[v % classes.len()];
            let link = Link::new(bps, latency_s);
            conns.push(srv.join(room, &JoinRequest::viewer(&user)).expect("join"));
            // Seed the estimator with one probe transfer at the link's real
            // rate — the client-side feedback loop's first report.
            srv.report_transfer(room, &user, (bps / 8.0 * 0.5) as u64, 0.5)
                .expect("report");
            let d = srv.deliver_image(room, &user, lic_id).expect("deliver");
            total_layers = total_layers.max(d.total_layers);
            let c = &mut stats[v % classes.len()];
            c.adaptive.push(link.transfer_secs(d.payload.len() as u64));
            c.fixed.push(link.transfer_secs(d.full_bytes));
            c.layers += d.layers;
            c.full_depth += usize::from(d.is_full_depth());
        }
    }

    fn pctl(samples: &mut [f64], q: f64) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite TTFR"));
        samples[((samples.len() - 1) as f64 * q).round() as usize]
    }

    println!(
        "{viewers} viewers in {ROOMS} rooms, one {full_bytes}-byte \
         {total_layers}-layer CT, {TTFR_BUDGET_S} s render budget\n"
    );
    println!(
        "{:<12} {:>7} {:>11} {:>11} {:>13} {:>13}",
        "link class", "viewers", "avg layers", "full depth", "adaptive p99", "fixed p99"
    );
    let mut class_rows = Vec::new();
    for (ci, (name, _, _)) in classes.iter().enumerate() {
        let c = &mut stats[ci];
        let n = c.adaptive.len();
        let avg_layers = c.layers as f64 / n as f64;
        let a_p99 = pctl(&mut c.adaptive, 0.99);
        let f_p99 = pctl(&mut c.fixed, 0.99);
        println!(
            "{:<12} {:>7} {:>11.2} {:>11} {:>12.3}s {:>12.3}s",
            name, n, avg_layers, c.full_depth, a_p99, f_p99
        );
        class_rows.push(format!(
            concat!(
                "    {{\"class\": \"{}\", \"viewers\": {}, \"avg_layers\": {:.3}, ",
                "\"full_depth\": {}, \"adaptive_p99_s\": {:.6}, \"fixed_p99_s\": {:.6}}}"
            ),
            name, n, avg_layers, c.full_depth, a_p99, f_p99
        ));
    }

    let mut all_adaptive: Vec<f64> = stats.iter().flat_map(|c| c.adaptive.clone()).collect();
    let mut all_fixed: Vec<f64> = stats.iter().flat_map(|c| c.fixed.clone()).collect();
    let (a_p50, a_p99) = (pctl(&mut all_adaptive, 0.5), pctl(&mut all_adaptive, 0.99));
    let (f_p50, f_p99) = (pctl(&mut all_fixed, 0.5), pctl(&mut all_fixed, 0.99));

    let snap = srv.metrics();
    let misses = snap.counters["server.delivery.cache.miss.count"];
    let hits = snap.counters["server.delivery.cache.hit.count"];
    let saved = snap.counters["server.delivery.saved.bytes"];
    let full_payloads = snap.counters["server.delivery.full_payload.count"];
    println!(
        "\npopulation TTFR: adaptive p50 {a_p50:.3}s p99 {a_p99:.3}s | \
         fixed p50 {f_p50:.3}s p99 {f_p99:.3}s"
    );
    println!(
        "cache: {misses} storage reads for {viewers} deliveries ({hits} hits), \
         {saved} bytes saved vs full quality"
    );

    // Export before gating so a red run still leaves the evidence behind.
    let json = format!(
        concat!(
            "{{\n",
            "  \"viewers\": {},\n",
            "  \"rooms\": {},\n",
            "  \"full_bytes\": {},\n",
            "  \"total_layers\": {},\n",
            "  \"ttfr_budget_s\": {},\n",
            "  \"adaptive_p50_s\": {:.6},\n",
            "  \"adaptive_p99_s\": {:.6},\n",
            "  \"fixed_p50_s\": {:.6},\n",
            "  \"fixed_p99_s\": {:.6},\n",
            "  \"cache_misses\": {},\n",
            "  \"cache_hits\": {},\n",
            "  \"saved_bytes\": {},\n",
            "  \"full_payload_fallbacks\": {},\n",
            "  \"classes\": [\n{}\n  ]\n",
            "}}\n"
        ),
        viewers,
        ROOMS,
        full_bytes,
        total_layers,
        TTFR_BUDGET_S,
        a_p50,
        a_p99,
        f_p50,
        f_p99,
        misses,
        hits,
        saved,
        full_payloads,
        class_rows.join(",\n")
    );
    std::fs::write("BENCH_delivery.json", &json).expect("write BENCH_delivery.json");
    println!("wrote BENCH_delivery.json ({} bytes)", json.len());

    // Gates.
    assert!(
        a_p99 < f_p99,
        "E22: adaptive p99 TTFR {a_p99:.3}s did not beat fixed serving {f_p99:.3}s"
    );
    assert_eq!(
        misses, ROOMS as u64,
        "E22: storage reads must be one per (room, object), not per viewer"
    );
    assert!(
        hits >= (viewers - ROOMS) as u64,
        "E22: the room cache must absorb every repeat delivery ({hits} hits)"
    );
    assert_eq!(
        full_payloads, 0,
        "E22: a layered stream must never fall back to the blind full-payload path"
    );
    assert_eq!(
        stats[0].full_depth, 0,
        "E22: modem viewers cannot render full depth inside the budget"
    );
    assert_eq!(
        stats[3].full_depth,
        stats[3].adaptive.len(),
        "E22: LAN viewers must get the complete stream"
    );
    assert!(saved > 0, "E22: adaptive depths saved no bytes");
    println!("\n(slow links got coarse layers inside the render budget, fast links the");
    println!(" full stream; one storage read per room fed every viewer from the cache)");
}
