//! Voice-processing benchmarks (experiment E9): feature extraction,
//! GMM scoring, and CD-HMM Viterbi throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rcmo_audio::features::{extract_features, FeatureConfig};
use rcmo_audio::gmm::DiagGmm;
use rcmo_audio::hmm::Hmm;
use rcmo_audio::synth::{babble, SynthConfig, VoiceProfile};
use std::hint::black_box;

fn bench_features(c: &mut Criterion) {
    let cfg = FeatureConfig::default();
    let audio = babble(&VoiceProfile::male("m"), 5.0, &SynthConfig::default());
    let mut group = c.benchmark_group("audio/features_5s");
    group.throughput(Throughput::Elements(cfg.num_frames(audio.len()) as u64));
    group.bench_function("extract", |b| {
        b.iter(|| black_box(extract_features(&audio, &cfg)))
    });
    group.finish();
}

fn bench_gmm(c: &mut Criterion) {
    let cfg = FeatureConfig::default();
    let audio = babble(&VoiceProfile::female("f"), 3.0, &SynthConfig::default());
    let frames = extract_features(&audio, &cfg);
    let gmm = DiagGmm::train(&frames, 4, 10, 1);
    c.bench_function("audio/gmm_loglik_per_frame", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % frames.len();
            black_box(gmm.log_likelihood(&frames[i]))
        })
    });
    let mut group = c.benchmark_group("audio/gmm_train");
    group.sample_size(10);
    group.bench_function("k4_10iters", |b| {
        b.iter(|| black_box(DiagGmm::train(&frames, 4, 10, 1)))
    });
    group.finish();
}

fn bench_viterbi(c: &mut Criterion) {
    let cfg = FeatureConfig::default();
    let audio = babble(&VoiceProfile::male("m"), 2.0, &SynthConfig::default());
    let frames = extract_features(&audio, &cfg);
    let states: Vec<DiagGmm> = (0..6)
        .map(|i| DiagGmm::train(&frames, 2, 6, i as u64))
        .collect();
    let hmm = Hmm::left_right(states, 0.6);
    let mut group = c.benchmark_group("audio/hmm");
    group.throughput(Throughput::Elements(frames.len() as u64));
    group.bench_function("viterbi_6state", |b| {
        b.iter(|| black_box(hmm.viterbi(&frames)))
    });
    group.bench_function("forward_loglik_6state", |b| {
        b.iter(|| black_box(hmm.log_likelihood(&frames)))
    });
    group.finish();
}

criterion_group!(benches, bench_features, bench_gmm, bench_viterbi);
criterion_main!(benches);
