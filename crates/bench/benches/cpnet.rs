//! CP-network reasoning benchmarks (experiment E2 performance side):
//! optimal outcome / completion vs. network size, and preference-ordered
//! enumeration throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcmo_core::cpnet::samples::{chain_net, random_net, RandomNetSpec};
use rcmo_core::{PartialAssignment, Value, VarId};
use std::hint::black_box;

fn bench_optimal_outcome(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpnet/optimal_outcome");
    for vars in [16usize, 64, 256, 1024] {
        let net = random_net(&RandomNetSpec {
            vars,
            max_domain: 3,
            max_parents: 3,
            seed: 7,
        });
        group.bench_with_input(BenchmarkId::from_parameter(vars), &net, |b, net| {
            b.iter(|| black_box(net.optimal_outcome()))
        });
    }
    group.finish();
}

fn bench_optimal_completion(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpnet/optimal_completion");
    for vars in [16usize, 64, 256, 1024] {
        let net = chain_net(vars, 3, 9);
        let mut ev = PartialAssignment::empty(vars);
        for i in (0..vars).step_by(4) {
            ev.set(VarId(i as u32), Value(1));
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(vars),
            &(net, ev),
            |b, (net, ev)| b.iter(|| black_box(net.optimal_completion(ev))),
        );
    }
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpnet/top32_outcomes");
    for vars in [8usize, 16, 32] {
        let net = random_net(&RandomNetSpec {
            vars,
            max_domain: 2,
            max_parents: 2,
            seed: 3,
        });
        group.bench_with_input(BenchmarkId::from_parameter(vars), &net, |b, net| {
            b.iter(|| {
                let ev = PartialAssignment::empty(net.len());
                let v: Vec<_> = net.outcomes_by_preference(&ev).take(32).collect();
                black_box(v)
            })
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let net = random_net(&RandomNetSpec {
        vars: 256,
        max_domain: 3,
        max_parents: 3,
        seed: 5,
    });
    c.bench_function("cpnet/encode_256", |b| b.iter(|| black_box(net.to_bytes())));
    let bytes = net.to_bytes();
    c.bench_function("cpnet/decode_256", |b| {
        b.iter(|| black_box(rcmo_core::CpNet::from_bytes(&bytes).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_optimal_outcome,
    bench_optimal_completion,
    bench_enumeration,
    bench_codec
);
criterion_main!(benches);
