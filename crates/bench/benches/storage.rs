//! Storage engine benchmarks (experiment E6): row insert/lookup throughput
//! and BLOB streaming — the paths behind every fetch/store in Figure 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcmo_storage::{Column, ColumnType, Database, RowValue, Schema};
use std::hint::black_box;

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("ID", ColumnType::U64),
        Column::new("FLD_NAME", ColumnType::Text),
        Column::new("FLD_DATA", ColumnType::Bytes),
    ])
    .unwrap()
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/insert_1k_rows");
    group.sample_size(10);
    group.bench_function("in_memory", |b| {
        b.iter(|| {
            let db = Database::in_memory().unwrap();
            let mut tx = db.begin().unwrap();
            tx.create_table("T", schema()).unwrap();
            for i in 0..1_000u64 {
                tx.insert(
                    "T",
                    vec![
                        RowValue::Null,
                        RowValue::Text(format!("row{i}")),
                        RowValue::Bytes(vec![0u8; 64]),
                    ],
                )
                .unwrap();
            }
            tx.commit().unwrap();
            black_box(db)
        })
    });
    group.finish();
}

fn bench_point_get(c: &mut Criterion) {
    let db = Database::in_memory().unwrap();
    {
        let mut tx = db.begin().unwrap();
        tx.create_table("T", schema()).unwrap();
        for i in 0..10_000u64 {
            tx.insert(
                "T",
                vec![
                    RowValue::Null,
                    RowValue::Text(format!("row{i}")),
                    RowValue::Bytes(vec![0u8; 32]),
                ],
            )
            .unwrap();
        }
        tx.commit().unwrap();
    }
    c.bench_function("storage/point_get_of_10k", |b| {
        let mut k = 1u64;
        b.iter(|| {
            let mut tx = db.begin().unwrap();
            let row = tx.get("T", k % 10_000 + 1).unwrap();
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(row)
        })
    });
}

fn bench_blob(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/blob");
    for size in [64 * 1024usize, 1024 * 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        let payload = vec![0xA5u8; size];
        group.bench_with_input(BenchmarkId::new("write", size), &payload, |b, payload| {
            let db = Database::in_memory().unwrap();
            b.iter(|| {
                let mut tx = db.begin().unwrap();
                let id = tx.put_blob(payload).unwrap();
                tx.commit().unwrap();
                black_box(id)
            })
        });
        let db = Database::in_memory().unwrap();
        let id = {
            let mut tx = db.begin().unwrap();
            let id = tx.put_blob(&payload).unwrap();
            tx.commit().unwrap();
            id
        };
        group.bench_with_input(BenchmarkId::new("read", size), &id, |b, &id| {
            b.iter(|| {
                let mut tx = db.begin().unwrap();
                black_box(tx.get_blob(id).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_range_scan(c: &mut Criterion) {
    let db = Database::in_memory().unwrap();
    {
        let mut tx = db.begin().unwrap();
        tx.create_table("T", schema()).unwrap();
        for i in 0..10_000u64 {
            tx.insert(
                "T",
                vec![
                    RowValue::Null,
                    RowValue::Text(format!("r{i}")),
                    RowValue::Bytes(vec![]),
                ],
            )
            .unwrap();
        }
        tx.commit().unwrap();
    }
    c.bench_function("storage/range_100_of_10k", |b| {
        b.iter(|| {
            let mut tx = db.begin().unwrap();
            black_box(tx.range("T", 5_000, 5_099).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_point_get,
    bench_blob,
    bench_range_scan
);
criterion_main!(benches);
