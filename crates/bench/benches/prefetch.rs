//! Prefetch-policy benchmarks (experiment E10): full simulated sessions per
//! policy, and the planner's own planning cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcmo_bench::medical_document;
use rcmo_core::{PartialAssignment, PrefetchConfig, PrefetchPlanner};
use rcmo_netsim::{simulate_session, Link, PolicyKind, SessionConfig};
use std::hint::black_box;

fn bench_session(c: &mut Criterion) {
    let doc = medical_document(4, 4);
    let mut group = c.benchmark_group("prefetch/session_30_clicks");
    group.sample_size(20);
    for policy in PolicyKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    black_box(simulate_session(
                        &doc,
                        &SessionConfig {
                            steps: 30,
                            buffer_bytes: 256 * 1024,
                            link: Link::new(1_000_000.0, 0.04),
                            policy,
                            ..SessionConfig::default()
                        },
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefetch/plan");
    for (folders, leaves) in [(2usize, 4usize), (4, 8), (8, 8)] {
        let doc = medical_document(folders, leaves);
        let planner = PrefetchPlanner::new(PrefetchConfig {
            top_k: 64,
            decay: 0.9,
        });
        let ev = PartialAssignment::empty(doc.net().len());
        let n = doc.num_components();
        group.bench_with_input(BenchmarkId::from_parameter(n), &doc, |b, doc| {
            b.iter(|| black_box(planner.plan(doc, &ev, 512 * 1024).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_session, bench_planner);
criterion_main!(benches);
