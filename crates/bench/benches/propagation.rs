//! Change-propagation benchmarks (experiment E1): delta broadcast cost as
//! the number of partners in a room grows — "that change is immediately
//! propagated to other clients in the room".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcmo_bench::consultation_fixture;
use rcmo_imaging::LineElement;
use rcmo_server::Action;
use std::hint::black_box;

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation/annotation_broadcast");
    for partners in [2usize, 4, 8, 16] {
        let (srv, doc_id, image_id) = consultation_fixture(partners);
        let room = srv.create_room("user-0", "bench", doc_id).unwrap();
        let conns: Vec<_> = (0..partners)
            .map(|u| srv.join_default(room, &format!("user-{u}")).unwrap())
            .collect();
        srv.open_image(room, "user-0", image_id).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(partners), &srv, |b, srv| {
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                srv.act(
                    room,
                    "user-0",
                    Action::AddLine {
                        object: image_id,
                        element: LineElement {
                            x0: i % 64,
                            y0: 0,
                            x1: 0,
                            y1: i % 64,
                            intensity: 200,
                        },
                    },
                )
                .unwrap();
                // Drain so channels stay bounded in memory.
                for c in &conns {
                    while c.events.try_recv().is_some() {}
                }
            })
        });
        black_box(conns);
    }
    group.finish();
}

fn bench_choice_reconfig(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation/choice_with_reconfig");
    for partners in [2usize, 8] {
        let (srv, doc_id, _) = consultation_fixture(partners);
        let room = srv.create_room("user-0", "bench", doc_id).unwrap();
        let conns: Vec<_> = (0..partners)
            .map(|u| srv.join_default(room, &format!("user-{u}")).unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(partners), &srv, |b, srv| {
            let mut form = 0usize;
            b.iter(|| {
                form = (form + 1) % 2;
                srv.act(
                    room,
                    "user-0",
                    Action::Choose {
                        component: rcmo_core::ComponentId(2),
                        form,
                    },
                )
                .unwrap();
                for c in &conns {
                    while c.events.try_recv().is_some() {}
                }
            })
        });
        black_box(conns);
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast, bench_choice_reconfig);
criterion_main!(benches);
