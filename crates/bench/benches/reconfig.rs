//! Presentation (re)configuration latency (experiment E3): the paper's
//! §4.4 worries that "large amounts of information must be delivered to the
//! user quickly, on demand" — this measures defaultPresentation() and
//! reconfigPresentation() against document size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcmo_bench::medical_document;
use rcmo_core::cpnet::samples::{chain_net, tree_net};
use rcmo_core::{
    ComponentId, PartialAssignment, PresentationEngine, ReconfigEngine, Value, VarId, ViewerChoice,
    ViewerSession,
};
use std::hint::black_box;

fn bench_default_presentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("presentation/default");
    for (folders, leaves) in [(2usize, 4usize), (4, 8), (8, 16), (16, 32)] {
        let doc = medical_document(folders, leaves);
        let engine = PresentationEngine::new();
        let n = doc.num_components();
        group.bench_with_input(BenchmarkId::from_parameter(n), &doc, |b, doc| {
            b.iter(|| black_box(engine.default_presentation(doc)))
        });
    }
    group.finish();
}

fn bench_reconfigure(c: &mut Criterion) {
    let mut group = c.benchmark_group("presentation/reconfigure");
    for (folders, leaves) in [(2usize, 4usize), (4, 8), (8, 16), (16, 32)] {
        let doc = medical_document(folders, leaves);
        let engine = PresentationEngine::new();
        let mut session = ViewerSession::new("bench");
        // Three explicit choices, like an active viewer.
        for (i, c_id) in [2u32, 5, 7].iter().enumerate() {
            let comp = ComponentId(*c_id % doc.num_components() as u32);
            if doc.forms(comp).map(|f| f.len() > 1).unwrap_or(false)
                && doc.parent(comp).ok().flatten().is_some()
            {
                let _ = session.choose(
                    &doc,
                    ViewerChoice {
                        component: comp,
                        form: i % 2,
                    },
                );
            }
        }
        let n = doc.num_components();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(doc, session),
            |b, (doc, session)| {
                b.iter(|| black_box(engine.presentation_for(doc, session).unwrap()))
            },
        );
    }
    group.finish();
}

fn bench_local_operation(c: &mut Criterion) {
    let doc = medical_document(4, 8);
    c.bench_function("presentation/apply_local_operation", |b| {
        b.iter_batched(
            || ViewerSession::new("bench"),
            |mut session| {
                session
                    .apply_local_operation(&doc, ComponentId(2), 0, "segmentation")
                    .unwrap();
                black_box(session)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

/// The incremental engine against the full sweep on the E15 nets: each
/// iteration changes one evidence slot and reconfigures, so the engine pays
/// a dirty cone (or a memo hit once the deterministic walk cycles) where the
/// sweep pays the whole net.
fn bench_reconfig_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfig/engine");
    for (name, net) in [
        ("chain30", chain_net(30, 2, 0xE15)),
        ("tree30", tree_net(30, 2, 0xE15)),
    ] {
        let n = net.len() as u32;
        let mut ev = PartialAssignment::empty(net.len());
        group.bench_function(BenchmarkId::new("full_sweep", name), |b| {
            let mut i = 0u32;
            b.iter(|| {
                ev.set(VarId(i % n), Value((i % 2) as u16));
                i += 1;
                black_box(net.optimal_completion(&ev))
            })
        });
        let mut engine = ReconfigEngine::new();
        let mut ev = PartialAssignment::empty(net.len());
        group.bench_function(BenchmarkId::new("incremental", name), |b| {
            let mut i = 0u32;
            b.iter(|| {
                ev.set(VarId(i % n), Value((i % 2) as u16));
                i += 1;
                black_box(engine.completion(&net, "bench", &ev))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_default_presentation,
    bench_reconfigure,
    bench_local_operation,
    bench_reconfig_engine
);
criterion_main!(benches);
