//! Layered codec benchmarks (experiment E8): encode/decode throughput and
//! the cost of multi-resolution extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcmo_codec::{decode, decode_resolution, encode, EncoderConfig};
use rcmo_imaging::ct_phantom;
use std::hint::black_box;

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/encode");
    group.sample_size(20);
    for size in [64usize, 128, 256] {
        let img = ct_phantom(size, 3, 1).unwrap();
        group.throughput(Throughput::Bytes((size * size) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &img, |b, img| {
            b.iter(|| black_box(encode(img, &EncoderConfig::default()).unwrap()))
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/decode");
    group.sample_size(20);
    for size in [64usize, 128, 256] {
        let img = ct_phantom(size, 3, 1).unwrap();
        let bytes = encode(&img, &EncoderConfig::default()).unwrap();
        group.throughput(Throughput::Bytes((size * size) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &bytes, |b, bytes| {
            b.iter(|| black_box(decode(bytes).unwrap()))
        });
    }
    group.finish();
}

fn bench_multires(c: &mut Criterion) {
    let img = ct_phantom(256, 3, 1).unwrap();
    let bytes = encode(&img, &EncoderConfig::default()).unwrap();
    let mut group = c.benchmark_group("codec/decode_resolution");
    for drop in [0usize, 1, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(drop), &drop, |b, &drop| {
            b.iter(|| black_box(decode_resolution(&bytes, drop).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_multires);
criterion_main!(benches);
