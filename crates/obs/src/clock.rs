//! The shared time source: one `Clock` trait, two implementations.
//!
//! Everything in the serving stack that needs "now" — lock-wait
//! histograms, migration latency spans, retry backoff — asks a [`Clock`]
//! instead of calling `std::time::Instant::now()` directly. In production
//! the clock is a [`WallClock`] and nothing changes. Under the
//! whole-system simulator (`rcmo-sim`) the clock is a [`SimClock`]: a
//! virtual microsecond counter advanced only by the simulator's event
//! loop. Every duration the instrumented stack records then derives from
//! virtual time, which is what makes a simulated run's
//! [`MetricsSnapshot`](crate::MetricsSnapshot) byte-identical across
//! equal-seed runs — wall-clock jitter never reaches a histogram bucket.
//!
//! `sleep_us` follows the same split: a `WallClock` really sleeps (retry
//! backoff in a live cluster), a `SimClock` advances virtual time and
//! returns immediately, so a simulated retry storm costs no wall time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic time source measured in microseconds since an arbitrary
/// epoch (the clock's construction).
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds since the clock's epoch.
    fn now_us(&self) -> u64;

    /// Blocks (or, for a virtual clock, advances time) for `us`
    /// microseconds.
    fn sleep_us(&self, us: u64);

    /// Seconds since the clock's epoch.
    fn now_s(&self) -> f64 {
        self.now_us() as f64 / 1e6
    }
}

/// A shareable clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// The production clock: `Instant`-backed wall time.
///
/// This is the single place in the sim-reachable stack allowed to touch
/// `std::time::Instant` / `std::thread::sleep` (the `no_wall_clock` lint
/// test in `rcmo-sim` greps for strays everywhere else).
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> WallClock {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// A fresh wall clock behind a [`SharedClock`] handle.
    pub fn shared() -> SharedClock {
        Arc::new(WallClock::new())
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    fn sleep_us(&self, us: u64) {
        std::thread::sleep(std::time::Duration::from_micros(us));
    }
}

/// The simulator's clock: a virtual microsecond counter. Time moves only
/// when someone advances it — the discrete-event loop jumping to the next
/// heap entry, or an instrumented `sleep_us` (virtual backoff).
///
/// Equal seeds drive equal advance sequences, so every timestamp (and
/// every duration recorded into an obs histogram) is reproducible
/// bit-for-bit.
#[derive(Debug, Default)]
pub struct SimClock {
    now_us: AtomicU64,
}

impl SimClock {
    /// A virtual clock at t = 0, behind an `Arc` so the simulator and the
    /// stack under test share it.
    pub fn new() -> Arc<SimClock> {
        Arc::new(SimClock::default())
    }

    /// Jumps the clock forward to `t_us`. A jump backwards is ignored —
    /// the clock is monotonic (concurrent virtual sleeps may already have
    /// pushed it past an older heap entry).
    pub fn advance_to_us(&self, t_us: u64) {
        self.now_us.fetch_max(t_us, Ordering::Relaxed);
    }

    /// Advances the clock by `dt_us`.
    pub fn advance_us(&self, dt_us: u64) {
        self.now_us.fetch_add(dt_us, Ordering::Relaxed);
    }
}

impl Clock for SimClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }

    fn sleep_us(&self, us: u64) {
        // Virtual sleep: the sleeper's time passes, no wall time does.
        self.advance_us(us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_moves_only_when_advanced() {
        let c = SimClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance_to_us(1_500);
        assert_eq!(c.now_us(), 1_500);
        c.advance_to_us(900); // backwards jump ignored
        assert_eq!(c.now_us(), 1_500);
        c.sleep_us(250); // virtual sleep advances
        assert_eq!(c.now_us(), 1_750);
        assert!((c.now_s() - 0.00175).abs() < 1e-12);
    }

    #[test]
    fn wall_clock_is_monotonic_and_sleeps() {
        let c = WallClock::new();
        let a = c.now_us();
        c.sleep_us(1_000);
        let b = c.now_us();
        assert!(b >= a + 1_000);
    }

    #[test]
    fn shared_handles_see_one_timeline() {
        let c = SimClock::new();
        let shared: SharedClock = c.clone();
        c.advance_to_us(42);
        assert_eq!(shared.now_us(), 42);
    }
}
