//! # rcmo-obs — the unified observability layer
//!
//! Every performance claim this workspace reproduces is a latency or cost
//! claim — presentation reconfiguration "in real time", change-propagation
//! cost per partner, prefetch hit rates under modem bandwidth — so every
//! subsystem records into one shared instrumentation substrate instead of
//! growing its own ad-hoc stat struct. The design goals:
//!
//! * **lock-cheap**: metric updates are single relaxed atomic operations;
//!   locks are taken only at registration (once per metric name);
//! * **zero deps, always on**: pure `std`, no feature gate — benches,
//!   tests, and experiments all exercise the same instrumented code path;
//! * **hierarchical**: a [`Registry`] may have a parent; every update to a
//!   child handle also lands in the same-named metric of each ancestor, so
//!   per-instance views (one buffer pool, one room, one session) stay exact
//!   while the [process-global registry](Registry::global) aggregates
//!   everything for export;
//! * **snapshot-and-diff**: a [`MetricsSnapshot`] is a plain value that
//!   serializes to human-readable text and JSON and subtracts
//!   ([`MetricsSnapshot::diff`]), which is how experiments isolate one
//!   scenario's counts from a shared accumulating registry.
//!
//! Metric names follow the `subsystem.op.unit` convention, e.g.
//! `storage.wal.append.us` (wall-clock microseconds),
//! `netsim.session.response.vus` (*virtual* microseconds),
//! `server.room.delivered.bytes`, `storage.pool.hit.count`.
//!
//! ```
//! use rcmo_obs::{bounds, Registry};
//!
//! let reg = Registry::detached(); // or Registry::new() to roll up globally
//! let hits = reg.counter("demo.cache.hit.count");
//! let lat = reg.histogram("demo.op.us", bounds::LATENCY_US);
//! hits.inc();
//! {
//!     let _t = lat.start_timer(); // records elapsed µs on drop
//! }
//! lat.record(250);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters["demo.cache.hit.count"], 1);
//! assert!(snap.histograms["demo.op.us"].count >= 2);
//! let json = snap.to_json();
//! assert_eq!(rcmo_obs::MetricsSnapshot::from_json(&json).unwrap(), snap);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metric;
pub mod registry;
pub mod snapshot;

pub use clock::{Clock, SharedClock, SimClock, WallClock};
pub use metric::{bounds, Counter, Gauge, Histogram, OwnedTimer, Timer};
pub use registry::{LazyCounter, LazyGauge, LazyHistogram, Registry};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};

/// The uniform metrics entry point every instrumented subsystem implements:
/// one typed view (the redesigned `*Stats` struct, produced *from* the
/// registry) plus the raw snapshot for export.
pub trait Metrics {
    /// The subsystem's typed view over its registry (e.g. `PoolStats`).
    type View;

    /// The registry this subsystem records into.
    fn obs(&self) -> &Registry;

    /// The typed view, read from the registry.
    fn metrics(&self) -> Self::View;

    /// A full snapshot of everything this subsystem (and, through parent
    /// chaining, its children) recorded.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs().snapshot()
    }
}

#[cfg(test)]
mod tests;
