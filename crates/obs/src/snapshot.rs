//! Point-in-time metric snapshots: plain values that print as text,
//! round-trip through JSON (no serde — the format is a small fixed shape),
//! and subtract, so experiments can isolate one scenario's activity from an
//! accumulating registry.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A histogram's frozen state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Upper-inclusive bucket boundaries (strictly increasing).
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; `counts.len() == bounds.len() + 1` (the
    /// last entry is the overflow bucket).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (0 < q ≤ 1) estimated as the upper bound of the
    /// bucket holding the target sample; samples in the overflow bucket
    /// report [`max`](Self::max). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// This snapshot minus an `older` one of the same histogram: bucket
    /// counts, total count, and sum subtract (saturating). `max`/`min` are
    /// not recoverable for the interval, so the newer values are kept —
    /// treat them as "over the whole run" bounds.
    pub fn diff(&self, older: &HistogramSnapshot) -> HistogramSnapshot {
        if self.bounds != older.bounds {
            return self.clone();
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&older.counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(older.count),
            sum: self.sum.saturating_sub(older.sum),
            max: self.max,
            min: self.min,
        }
    }
}

/// A point-in-time copy of a whole [`Registry`](crate::Registry).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// This snapshot minus an `older` one: counters and histogram counts
    /// subtract; gauges keep their newer value. Metrics absent from
    /// `older` pass through unchanged. This is how experiments report
    /// per-scenario numbers off a shared accumulating registry.
    pub fn diff(&self, older: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (name, &v) in &self.counters {
            let base = older.counters.get(name).copied().unwrap_or(0);
            out.counters.insert(name.clone(), v.saturating_sub(base));
        }
        out.gauges = self.gauges.clone();
        for (name, h) in &self.histograms {
            let d = match older.histograms.get(name) {
                Some(old) => h.diff(old),
                None => h.clone(),
            };
            out.histograms.insert(name.clone(), d);
        }
        out
    }

    /// Human-readable report: one line per metric, histograms with
    /// count/mean/p50/p95/p99/max.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(s, "counter    {name:<44} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(s, "gauge      {name:<44} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                s,
                "histogram  {name:<44} n={:<8} mean={:<10.1} p50={:<8} p95={:<8} p99={:<8} max={}",
                h.count,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max
            );
        }
        s
    }

    /// JSON encoding (stable key order; integers only).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        json_map(
            &mut s,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        s.push_str("},\n  \"gauges\": {");
        json_map(&mut s, self.gauges.iter().map(|(k, v)| (k, v.to_string())));
        s.push_str("},\n  \"histograms\": {");
        json_map(
            &mut s,
            self.histograms.iter().map(|(k, h)| {
                let body = format!(
                    "{{\"bounds\": {}, \"counts\": {}, \"count\": {}, \"sum\": {}, \"max\": {}, \"min\": {}}}",
                    json_array(&h.bounds),
                    json_array(&h.counts),
                    h.count,
                    h.sum,
                    h.max,
                    h.min
                );
                (k, body)
            }),
        );
        s.push_str("}\n}\n");
        s
    }

    /// Parses the output of [`to_json`](Self::to_json) back into a
    /// snapshot. Accepts any key order and whitespace.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let snap = p.snapshot()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(snap)
    }
}

fn json_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {v}", escape(k));
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn json_array(vals: &[u64]) -> String {
    let items: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A minimal recursive-descent parser for the snapshot's JSON shape:
/// objects, arrays of integers, strings, and (signed) integers.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} of snapshot JSON",
                c as char, self.i
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.b.get(self.i).ok_or("truncated escape")?;
                    self.i += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    });
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn integer(&mut self) -> Result<i128, String> {
        self.skip_ws();
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("expected integer at byte {start}"))
    }

    fn u64_array(&mut self) -> Result<Vec<u64>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(out);
        }
        loop {
            out.push(self.integer()? as u64);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    /// Parses `{ "key": <v>, ... }`, handing each value to `visit`.
    fn object(
        &mut self,
        mut visit: impl FnMut(&mut Self, String) -> Result<(), String>,
    ) -> Result<(), String> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            visit(self, key)?;
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn histogram(&mut self) -> Result<HistogramSnapshot, String> {
        let mut h = HistogramSnapshot::default();
        self.object(|p, key| {
            match key.as_str() {
                "bounds" => h.bounds = p.u64_array()?,
                "counts" => h.counts = p.u64_array()?,
                "count" => h.count = p.integer()? as u64,
                "sum" => h.sum = p.integer()? as u64,
                "max" => h.max = p.integer()? as u64,
                "min" => h.min = p.integer()? as u64,
                other => return Err(format!("unknown histogram field '{other}'")),
            }
            Ok(())
        })?;
        Ok(h)
    }

    fn snapshot(&mut self) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot::default();
        self.object(|p, section| {
            match section.as_str() {
                "counters" => p.object(|p, name| {
                    let v = p.integer()? as u64;
                    snap.counters.insert(name, v);
                    Ok(())
                })?,
                "gauges" => p.object(|p, name| {
                    let v = p.integer()? as i64;
                    snap.gauges.insert(name, v);
                    Ok(())
                })?,
                "histograms" => p.object(|p, name| {
                    let h = p.histogram()?;
                    snap.histograms.insert(name, h);
                    Ok(())
                })?,
                other => return Err(format!("unknown section '{other}'")),
            }
            Ok(())
        })?;
        Ok(snap)
    }
}
