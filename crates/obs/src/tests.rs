use crate::{bounds, HistogramSnapshot, MetricsSnapshot, Registry};
use std::sync::Arc;

#[test]
fn counter_and_gauge_basics() {
    let reg = Registry::detached();
    let c = reg.counter("t.c.count");
    c.inc();
    c.add(4);
    assert_eq!(c.get(), 5);
    assert_eq!(reg.read_counter("t.c.count"), 5);
    let g = reg.gauge("t.g");
    g.set(7);
    g.add(-10);
    assert_eq!(g.get(), -3);
    assert_eq!(reg.read_gauge("t.g"), -3);
    // Same name returns the same cell.
    reg.counter("t.c.count").inc();
    assert_eq!(c.get(), 6);
}

#[test]
fn histogram_bucket_boundaries() {
    let reg = Registry::detached();
    let h = reg.histogram("t.h.us", &[10, 100, 1000]);
    // A value exactly on a boundary lands in that boundary's bucket.
    h.record(10);
    // Strictly above a boundary lands in the next bucket.
    h.record(11);
    h.record(100);
    // Zero lands in the first bucket.
    h.record(0);
    // Above the last bound lands in the overflow bucket.
    h.record(1001);
    let s = h.snapshot();
    assert_eq!(s.counts, vec![2, 2, 0, 1]);
    assert_eq!(s.count, 5);
    assert_eq!(s.sum, 10 + 11 + 100 + 1001);
    assert_eq!(s.max, 1001);
    assert_eq!(s.min, 0);
}

#[test]
fn histogram_quantiles() {
    let reg = Registry::detached();
    let h = reg.histogram("t.q.us", &[1, 2, 4, 8, 16, 32]);
    for v in 1..=8u64 {
        h.record(v);
    }
    let s = h.snapshot();
    // 8 samples in buckets [1]=1, [2]=1, [3..4]=2, [5..8]=4.
    assert_eq!(s.p50(), 4, "4th of 8 samples sits in the (2,4] bucket");
    assert_eq!(s.p95(), 8);
    assert_eq!(s.p99(), 8);
    assert_eq!(s.quantile(1.0), 8);
    // Overflow samples report the true max, not a bucket bound.
    h.record(1_000);
    assert_eq!(h.snapshot().quantile(1.0), 1_000);
    // Empty histograms report zeros.
    let empty = reg.histogram("t.q2.us", &[1, 2]).snapshot();
    assert_eq!((empty.p50(), empty.max, empty.min), (0, 0, 0));
}

#[test]
fn quantile_capped_by_observed_max() {
    let reg = Registry::detached();
    let h = reg.histogram("t.cap.us", &[1_000_000]);
    h.record(3);
    // The bucket bound is 1s but the only sample is 3 µs: p99 must not
    // report a value larger than anything observed.
    assert_eq!(h.snapshot().p99(), 3);
}

#[test]
fn parent_chaining_rolls_up() {
    let root = Registry::detached();
    let child_a = Registry::with_parent(&root);
    let child_b = Registry::with_parent(&root);
    child_a.counter("t.shared.count").add(3);
    child_b.counter("t.shared.count").add(4);
    assert_eq!(child_a.read_counter("t.shared.count"), 3);
    assert_eq!(child_b.read_counter("t.shared.count"), 4);
    assert_eq!(root.read_counter("t.shared.count"), 7);
    child_a.histogram("t.shared.us", &[10, 100]).record(5);
    child_b.histogram("t.shared.us", &[10, 100]).record(50);
    let rh = root.read_histogram("t.shared.us").unwrap();
    assert_eq!(rh.count, 2);
    assert_eq!(rh.counts, vec![1, 1, 0]);
    let ah = child_a.read_histogram("t.shared.us").unwrap();
    assert_eq!(ah.count, 1);
}

#[test]
fn timer_records_elapsed_micros() {
    let reg = Registry::detached();
    let h = reg.histogram("t.timer.us", bounds::LATENCY_US);
    {
        let _t = h.start_timer();
        std::hint::black_box(());
    }
    let us = h.start_timer().stop();
    let s = h.snapshot();
    assert_eq!(s.count, 2);
    assert!(s.sum >= us);
}

/// The loom-free concurrency stress: many threads hammer shared handles,
/// coordinating shutdown through the vendored crossbeam channel shim; the
/// relaxed-atomic cells must not lose a single increment.
#[test]
fn concurrent_counter_increments() {
    let root = Registry::detached();
    let child = Registry::with_parent(&root);
    let counter = Arc::new(child.counter("t.stress.count"));
    let hist = Arc::new(child.histogram("t.stress.us", &[8, 64, 512]));
    let (tx, rx) = crossbeam::channel::unbounded();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let counter = Arc::clone(&counter);
            let hist = Arc::clone(&hist);
            let tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(t * 97 + i % 600);
                }
                tx.send(t).unwrap();
            })
        })
        .collect();
    let finished: Vec<u64> = rx.iter().take(THREADS as usize).collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(finished.len(), THREADS as usize);
    let total = THREADS * PER_THREAD;
    assert_eq!(counter.get(), total);
    assert_eq!(root.read_counter("t.stress.count"), total);
    let s = root.read_histogram("t.stress.us").unwrap();
    assert_eq!(s.count, total);
    assert_eq!(s.counts.iter().sum::<u64>(), total);
}

#[test]
fn snapshot_text_and_json_round_trip() {
    let reg = Registry::detached();
    reg.counter("a.b.count").add(42);
    reg.gauge("a.g").set(-17);
    let h = reg.histogram("a.lat.us", &[10, 100, 1000]);
    h.record(7);
    h.record(250);
    h.record(5_000);
    let snap = reg.snapshot();
    let text = snap.to_text();
    assert!(text.contains("a.b.count"));
    assert!(text.contains("p95"));
    let json = snap.to_json();
    let back = MetricsSnapshot::from_json(&json).unwrap();
    assert_eq!(back, snap);
    // And the re-encoding is byte-identical (stable order).
    assert_eq!(back.to_json(), json);
}

#[test]
fn from_json_rejects_garbage() {
    assert!(MetricsSnapshot::from_json("").is_err());
    assert!(MetricsSnapshot::from_json("{").is_err());
    assert!(MetricsSnapshot::from_json(r#"{"bogus": {}}"#).is_err());
    assert!(MetricsSnapshot::from_json(r#"{"counters": {"x": 1}} trailing"#).is_err());
    // Key escapes survive the round trip.
    let mut snap = MetricsSnapshot::default();
    snap.counters.insert("weird\"name\\x".to_string(), 3);
    let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn snapshot_diff_isolates_an_interval() {
    let reg = Registry::detached();
    let c = reg.counter("d.ops.count");
    let h = reg.histogram("d.lat.us", &[10, 100]);
    c.add(5);
    h.record(3);
    let before = reg.snapshot();
    c.add(2);
    h.record(50);
    h.record(60);
    let after = reg.snapshot();
    let d = after.diff(&before);
    assert_eq!(d.counters["d.ops.count"], 2);
    let dh = &d.histograms["d.lat.us"];
    assert_eq!(dh.count, 2);
    assert_eq!(dh.counts, vec![0, 2, 0]);
    assert_eq!(dh.sum, 110);
    // Metrics registered after `before` pass through unchanged.
    reg.counter("d.new.count").inc();
    let d2 = reg.snapshot().diff(&before);
    assert_eq!(d2.counters["d.new.count"], 1);
}

#[test]
fn empty_histogram_diff_is_empty() {
    let a = HistogramSnapshot {
        bounds: vec![1, 2],
        counts: vec![0, 0, 0],
        ..HistogramSnapshot::default()
    };
    let d = a.diff(&a);
    assert_eq!(d.count, 0);
    assert_eq!(d.counts, vec![0, 0, 0]);
}
