//! The metrics registry: named metric slots, parent chaining, and the
//! process-global root. Registration (the only locking operation) happens
//! once per metric name per registry; the returned handles are pure-atomic
//! thereafter.

use crate::metric::{Counter, CounterCell, Gauge, GaugeCell, Histogram, HistogramCell, Timer};
use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

#[derive(Debug, Clone)]
enum Slot {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

#[derive(Debug, Default)]
struct Inner {
    parent: Option<Registry>,
    slots: RwLock<BTreeMap<String, Slot>>,
}

/// A registry of named metrics. Cheap to clone (shared interior). A
/// registry may be *parented*: handles created from it update both their
/// own cell and the same-named cell of every ancestor, so instance-local
/// views stay exact while ancestors aggregate.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

impl Registry {
    /// A fresh registry parented to the [global](Registry::global) root:
    /// everything it records also aggregates process-wide. This is the
    /// right default for instrumented components.
    #[allow(clippy::new_without_default)] // Default = detached, by design
    pub fn new() -> Registry {
        Registry::with_parent(Registry::global())
    }

    /// A fresh detached registry (no parent; nothing rolls up). Used by
    /// tests that need full isolation.
    pub fn detached() -> Registry {
        Registry {
            inner: Arc::new(Inner::default()),
        }
    }

    /// A fresh registry whose updates also land in `parent` (and its
    /// ancestors).
    pub fn with_parent(parent: &Registry) -> Registry {
        Registry {
            inner: Arc::new(Inner {
                parent: Some(parent.clone()),
                slots: RwLock::new(BTreeMap::new()),
            }),
        }
    }

    /// The process-global root registry: the export point for experiments
    /// and benches.
    pub fn global() -> &'static Registry {
        GLOBAL.get_or_init(Registry::detached)
    }

    fn counter_cell(&self, name: &str) -> Arc<CounterCell> {
        if let Some(Slot::Counter(c)) = self.inner.slots.read().expect("obs lock").get(name) {
            return c.clone();
        }
        let mut slots = self.inner.slots.write().expect("obs lock");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Arc::new(CounterCell::default())))
        {
            Slot::Counter(c) => c.clone(),
            other => panic!("metric '{name}' already registered as {other:?}, not a counter"),
        }
    }

    fn gauge_cell(&self, name: &str) -> Arc<GaugeCell> {
        if let Some(Slot::Gauge(g)) = self.inner.slots.read().expect("obs lock").get(name) {
            return g.clone();
        }
        let mut slots = self.inner.slots.write().expect("obs lock");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Arc::new(GaugeCell::default())))
        {
            Slot::Gauge(g) => g.clone(),
            other => panic!("metric '{name}' already registered as {other:?}, not a gauge"),
        }
    }

    fn histogram_cell(&self, name: &str, bounds: &[u64]) -> Arc<HistogramCell> {
        if let Some(Slot::Histogram(h)) = self.inner.slots.read().expect("obs lock").get(name) {
            return h.clone();
        }
        let mut slots = self.inner.slots.write().expect("obs lock");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Arc::new(HistogramCell::new(bounds))))
        {
            Slot::Histogram(h) => h.clone(),
            other => panic!("metric '{name}' already registered as {other:?}, not a histogram"),
        }
    }

    /// Registers (or retrieves) the counter `name`, chained through every
    /// ancestor. Panics if `name` is registered here as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut cells = vec![self.counter_cell(name)];
        let mut up = self.inner.parent.clone();
        while let Some(reg) = up {
            cells.push(reg.counter_cell(name));
            up = reg.inner.parent.clone();
        }
        Counter { cells }
    }

    /// Registers (or retrieves) the gauge `name`, chained through every
    /// ancestor.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut cells = vec![self.gauge_cell(name)];
        let mut up = self.inner.parent.clone();
        while let Some(reg) = up {
            cells.push(reg.gauge_cell(name));
            up = reg.inner.parent.clone();
        }
        Gauge { cells }
    }

    /// Registers (or retrieves) the histogram `name` with the given bucket
    /// `bounds` (strictly increasing, upper-inclusive; an overflow bucket
    /// is appended), chained through every ancestor. The bounds of the
    /// first registration win at each level.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut cells = vec![self.histogram_cell(name, bounds)];
        let mut up = self.inner.parent.clone();
        while let Some(reg) = up {
            cells.push(reg.histogram_cell(name, bounds));
            up = reg.inner.parent.clone();
        }
        Histogram { cells }
    }

    /// Reads a counter's current value (0 if unregistered).
    pub fn read_counter(&self, name: &str) -> u64 {
        match self.inner.slots.read().expect("obs lock").get(name) {
            Some(Slot::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// Reads a gauge's current value (0 if unregistered).
    pub fn read_gauge(&self, name: &str) -> i64 {
        match self.inner.slots.read().expect("obs lock").get(name) {
            Some(Slot::Gauge(g)) => g.get(),
            _ => 0,
        }
    }

    /// Reads a histogram's snapshot (`None` if unregistered).
    pub fn read_histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        match self.inner.slots.read().expect("obs lock").get(name) {
            Some(Slot::Histogram(h)) => Some(h.snapshot()),
            _ => None,
        }
    }

    /// A consistent-enough point-in-time copy of every metric registered in
    /// *this* registry (metrics of ancestors are not included; metrics of
    /// descendants are, via chaining).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.inner.slots.read().expect("obs lock");
        let mut snap = MetricsSnapshot::default();
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Slot::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Slot::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// A counter in the global registry, resolved once on first use — the
/// pattern for instrumenting free functions and methods without threading a
/// registry through: `static N: LazyCounter = LazyCounter::new("a.b.count");`
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl LazyCounter {
    /// Declares the counter (registered in the global registry on first use).
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying handle.
    pub fn get(&self) -> &Counter {
        self.cell
            .get_or_init(|| Registry::global().counter(self.name))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.get().inc();
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.get().add(n);
    }
}

/// A gauge in the global registry, resolved once on first use.
#[derive(Debug)]
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Gauge>,
}

impl LazyGauge {
    /// Declares the gauge (registered in the global registry on first use).
    pub const fn new(name: &'static str) -> LazyGauge {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying handle.
    pub fn get(&self) -> &Gauge {
        self.cell
            .get_or_init(|| Registry::global().gauge(self.name))
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.get().set(v);
    }

    /// Adjusts the value by `delta`.
    pub fn add(&self, delta: i64) {
        self.get().add(delta);
    }
}

/// A histogram in the global registry, resolved once on first use.
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    bounds: &'static [u64],
    cell: OnceLock<Histogram>,
}

impl LazyHistogram {
    /// Declares the histogram (registered in the global registry on first
    /// use) with the given bucket bounds.
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> LazyHistogram {
        LazyHistogram {
            name,
            bounds,
            cell: OnceLock::new(),
        }
    }

    /// The underlying handle.
    pub fn get(&self) -> &Histogram {
        self.cell
            .get_or_init(|| Registry::global().histogram(self.name, self.bounds))
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.get().record(v);
    }

    /// Starts a span timer recording elapsed microseconds on drop.
    pub fn start_timer(&self) -> Timer<'_> {
        self.get().start_timer()
    }
}
