//! The metric primitives: counters, gauges, fixed-bucket histograms, and
//! span timers. Updates are relaxed atomics; a handle may fan out to the
//! same-named cell of every ancestor registry (see
//! [`Registry`](crate::Registry)), so one `inc()` is one atomic add per
//! registry level — no locks anywhere on the hot path.

use crate::snapshot::HistogramSnapshot;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Canonical bucket boundary presets.
pub mod bounds {
    /// Latency buckets in microseconds: ~3 per decade from 1 µs to 60 s.
    /// Also used for *virtual*-time latencies (`.vus` metrics).
    pub const LATENCY_US: &[u64] = &[
        1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
        200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
    ];

    /// Size buckets in bytes: powers of 4 from 64 B to 64 MiB.
    pub const SIZE_BYTES: &[u64] = &[
        64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
        67_108_864,
    ];

    /// Small-cardinality buckets (layer counts, retry counts, fan-outs).
    pub const SMALL_COUNT: &[u64] = &[0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64];
}

/// The storage cell behind a counter.
#[derive(Debug, Default)]
pub(crate) struct CounterCell(AtomicU64);

impl CounterCell {
    pub(crate) fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing counter. Cloning shares the underlying cells.
#[derive(Debug, Clone)]
pub struct Counter {
    pub(crate) cells: Vec<Arc<CounterCell>>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        for c in &self.cells {
            c.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of this handle's *own* (closest) cell.
    pub fn get(&self) -> u64 {
        self.cells[0].get()
    }
}

/// The storage cell behind a gauge.
#[derive(Debug, Default)]
pub(crate) struct GaugeCell(AtomicI64);

impl GaugeCell {
    pub(crate) fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (e.g. bytes currently resident).
/// On parented registries the write lands in every level, so the parent
/// reflects the most recent writer.
#[derive(Debug, Clone)]
pub struct Gauge {
    pub(crate) cells: Vec<Arc<GaugeCell>>,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        for c in &self.cells {
            c.0.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the value by `delta`.
    pub fn add(&self, delta: i64) {
        for c in &self.cells {
            c.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value of this handle's own cell.
    pub fn get(&self) -> i64 {
        self.cells[0].get()
    }
}

/// The storage cell behind a histogram: fixed upper-inclusive bucket
/// boundaries plus an overflow bucket, with count/sum/min/max.
#[derive(Debug)]
pub(crate) struct HistogramCell {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1 (overflow)
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64, // u64::MAX until the first sample
}

impl HistogramCell {
    pub(crate) fn new(bounds: &[u64]) -> HistogramCell {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        HistogramCell {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    pub(crate) fn record(&self, v: u64) {
        // First bucket whose (inclusive) upper bound covers v; a value
        // exactly on a boundary lands in that boundary's bucket.
        let idx = self.bounds.partition_point(|&b| v > b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
        }
    }
}

/// A fixed-bucket latency/size histogram with quantile estimates. Cloning
/// shares the underlying cells.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) cells: Vec<Arc<HistogramCell>>,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        for c in &self.cells {
            c.record(v);
        }
    }

    /// Records a wall-clock duration in microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Starts a span timer that records elapsed microseconds on drop.
    pub fn start_timer(&self) -> Timer<'_> {
        Timer {
            hist: self,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Like [`start_timer`](Self::start_timer) but the guard owns a clone
    /// of the handle, so it does not borrow the histogram — useful when
    /// the span covers `&mut self` calls on the handle's owner.
    pub fn start_timer_owned(&self) -> OwnedTimer {
        OwnedTimer {
            hist: self.clone(),
            start: Instant::now(),
            armed: true,
        }
    }

    /// Snapshot of this handle's own cell.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cells[0].snapshot()
    }
}

/// A lightweight span timer: records elapsed wall-clock microseconds into
/// its histogram when dropped (or explicitly via [`Timer::stop`]).
#[derive(Debug)]
pub struct Timer<'a> {
    hist: &'a Histogram,
    start: Instant,
    armed: bool,
}

impl Timer<'_> {
    /// Stops the span now and returns the recorded microseconds.
    pub fn stop(mut self) -> u64 {
        self.armed = false;
        let us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.hist.record(us);
        us
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record_duration(self.start.elapsed());
        }
    }
}

/// The owning variant of [`Timer`]: holds its own histogram handle.
#[derive(Debug)]
pub struct OwnedTimer {
    hist: Histogram,
    start: Instant,
    armed: bool,
}

impl OwnedTimer {
    /// Stops the span now and returns the recorded microseconds.
    pub fn stop(mut self) -> u64 {
        self.armed = false;
        let us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.hist.record(us);
        us
    }
}

impl Drop for OwnedTimer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record_duration(self.start.elapsed());
        }
    }
}
