//! Installation and maintenance of the Figure-7 schema.

use crate::error::{MediaError, Result};
use rcmo_storage::{Column, ColumnType, Database, RowValue, Schema};

/// Name of the master table listing all media types.
pub const MASTER_TABLE: &str = "MULTIMEDIA_OBJECTS_TABLE";
/// Name of the image object table.
pub const IMAGE_TABLE: &str = "IMAGE_OBJECTS_TABLE";
/// Name of the audio object table.
pub const AUDIO_TABLE: &str = "AUDIO_OBJECTS_TABLE";
/// Name of the compound object table.
pub const CMP_TABLE: &str = "CMP_OBJECTS_TABLE";
/// Name of the multimedia-document object table.
pub const DOC_TABLE: &str = "DOC_OBJECTS_TABLE";

/// One row of the master table: a supported media type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaType {
    /// Type name ("Image", "Audio", ...). Unique.
    pub name: String,
    /// MIME family ("image/layered", "audio/pcm", ...).
    pub mime: String,
    /// Access type hint ("stream", "whole"); the paper's FLD_ACCESSTYPE.
    pub access_type: String,
    /// Name of the table holding this type's objects.
    pub object_table: String,
    /// Free-form description.
    pub description: String,
}

fn master_schema() -> Schema {
    Schema::new(vec![
        Column::new("ID", ColumnType::U64),
        Column::new("FLD_NAME", ColumnType::Text),
        Column::new("FLD_MIME", ColumnType::Text),
        Column::new("FLD_ACCESSTYPE", ColumnType::Text),
        Column::new("OBJECTTABLES", ColumnType::Text),
        Column::new("DESCRIPTION", ColumnType::Text),
    ])
    .expect("static schema is valid")
}

fn image_schema() -> Schema {
    Schema::new(vec![
        Column::new("ID", ColumnType::U64),
        Column::new("FLD_NAME", ColumnType::Text),
        Column::new("FLD_QUALITY", ColumnType::I64),
        Column::new("FLD_TEXTS", ColumnType::Text),
        Column::new("FLD_CM", ColumnType::Bytes),
        Column::new("FLD_DATA", ColumnType::Blob),
    ])
    .expect("static schema is valid")
}

fn audio_schema() -> Schema {
    Schema::new(vec![
        Column::new("ID", ColumnType::U64),
        Column::new("FLD_FILENAME", ColumnType::Text),
        Column::new("FLD_SECTORS", ColumnType::Blob),
        Column::new("FLD_DATA", ColumnType::Blob),
    ])
    .expect("static schema is valid")
}

fn cmp_schema() -> Schema {
    Schema::new(vec![
        Column::new("ID", ColumnType::U64),
        Column::new("FLD_FILENAME", ColumnType::Text),
        Column::new("FLD_FILESIZE", ColumnType::U64),
        Column::new("FLD_CURRENTPOSITION", ColumnType::U64),
        Column::new("FLD_HEADER", ColumnType::Blob),
        Column::new("FLD_DATA", ColumnType::Blob),
    ])
    .expect("static schema is valid")
}

fn doc_schema() -> Schema {
    Schema::new(vec![
        Column::new("ID", ColumnType::U64),
        Column::new("FLD_TITLE", ColumnType::Text),
        Column::new("FLD_DATA", ColumnType::Blob),
    ])
    .expect("static schema is valid")
}

/// Installs the master table, the built-in object tables, and their master
/// rows. Idempotent.
pub fn install(db: &Database) -> Result<()> {
    let mut tx = db.begin()?;
    if tx.table_names().iter().any(|t| t == MASTER_TABLE) {
        return Ok(()); // already installed; tx drops as a no-op
    }
    tx.create_table(MASTER_TABLE, master_schema())?;
    tx.create_table(IMAGE_TABLE, image_schema())?;
    tx.create_table(AUDIO_TABLE, audio_schema())?;
    tx.create_table(CMP_TABLE, cmp_schema())?;
    tx.create_table(DOC_TABLE, doc_schema())?;
    for (name, mime, access, table, desc) in [
        (
            "Image",
            "image/layered",
            "stream",
            IMAGE_TABLE,
            "layered multi-resolution images",
        ),
        (
            "Audio",
            "audio/pcm",
            "stream",
            AUDIO_TABLE,
            "voice and audio fragments",
        ),
        (
            "Compound",
            "application/octet-stream",
            "whole",
            CMP_TABLE,
            "compound binary objects",
        ),
        (
            "Document",
            "application/x-rcmo-document",
            "whole",
            DOC_TABLE,
            "multimedia documents with CP-networks",
        ),
    ] {
        tx.insert(
            MASTER_TABLE,
            vec![
                RowValue::Null,
                RowValue::Text(name.to_string()),
                RowValue::Text(mime.to_string()),
                RowValue::Text(access.to_string()),
                RowValue::Text(table.to_string()),
                RowValue::Text(desc.to_string()),
            ],
        )?;
    }
    tx.commit()?;
    Ok(())
}

/// Reads the registered media types.
pub fn media_types(db: &Database) -> Result<Vec<MediaType>> {
    let tx = db.begin_read()?;
    let rows = tx.scan(MASTER_TABLE)?;
    rows.into_iter()
        .map(|r| {
            Ok(MediaType {
                name: text(&r, 1)?,
                mime: text(&r, 2)?,
                access_type: text(&r, 3)?,
                object_table: text(&r, 4)?,
                description: text(&r, 5)?,
            })
        })
        .collect()
}

/// Looks up a media type by name.
pub fn media_type_by_name(db: &Database, name: &str) -> Result<MediaType> {
    media_types(db)?
        .into_iter()
        .find(|t| t.name == name)
        .ok_or_else(|| MediaError::Type(format!("unknown media type '{name}'")))
}

/// Registers a new media type and creates its object table.
///
/// The object table's first column must be the `U64` primary key; a trailing
/// `FLD_DATA` BLOB column is conventional but not enforced.
pub fn register_type(db: &Database, ty: &MediaType, columns: Vec<Column>) -> Result<()> {
    let mut tx = db.begin()?;
    if media_types_in(&mut tx)?.iter().any(|t| t.name == ty.name) {
        return Err(MediaError::Type(format!(
            "media type '{}' already registered",
            ty.name
        )));
    }
    tx.create_table(&ty.object_table, Schema::new(columns)?)?;
    tx.insert(
        MASTER_TABLE,
        vec![
            RowValue::Null,
            RowValue::Text(ty.name.clone()),
            RowValue::Text(ty.mime.clone()),
            RowValue::Text(ty.access_type.clone()),
            RowValue::Text(ty.object_table.clone()),
            RowValue::Text(ty.description.clone()),
        ],
    )?;
    tx.commit()?;
    Ok(())
}

fn media_types_in(tx: &mut rcmo_storage::Transaction<'_>) -> Result<Vec<MediaType>> {
    let rows = tx.scan(MASTER_TABLE)?;
    rows.into_iter()
        .map(|r| {
            Ok(MediaType {
                name: text(&r, 1)?,
                mime: text(&r, 2)?,
                access_type: text(&r, 3)?,
                object_table: text(&r, 4)?,
                description: text(&r, 5)?,
            })
        })
        .collect()
}

pub(crate) fn text(row: &[RowValue], i: usize) -> Result<String> {
    match row.get(i) {
        Some(RowValue::Text(s)) => Ok(s.clone()),
        other => Err(MediaError::Malformed(format!(
            "expected Text in column {i}, got {other:?}"
        ))),
    }
}
