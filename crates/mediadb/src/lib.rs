//! # rcmo-mediadb — the object-relational multimedia database layer
//!
//! Implements the paper's Figure-7 schema on top of `rcmo-storage`:
//! a master `MULTIMEDIA_OBJECTS_TABLE` lists every supported media type
//! (name, MIME, access type, description) together with the name of the
//! *object table* that holds objects of that type. Each object table has its
//! own columns plus BLOB fields for the actual payload:
//!
//! * `IMAGE_OBJECTS_TABLE` — `ID, FLD_QUALITY, FLD_TEXTS, FLD_CM, FLD_DATA`
//! * `AUDIO_OBJECTS_TABLE` — `ID, FLD_FILENAME, FLD_SECTORS, FLD_DATA`
//! * `CMP_OBJECTS_TABLE` — `ID, FLD_FILENAME, FLD_FILESIZE,
//!   FLD_CURRENTPOSITION, FLD_HEADER, FLD_DATA`
//! * `DOC_OBJECTS_TABLE` — serialized multimedia documents (structure +
//!   CP-network), stored as BLOBs like everything else.
//!
//! "This approach was adopted in order to allow addition of new data types
//! as the system evolves" — [`MediaDb::register_type`] adds a type and its
//! object table at runtime.
//!
//! Mutating operations are permission-checked ([`acl`]), mirroring the
//! paper's "providing that the client has the appropriate permissions".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod error;
pub mod objects;
pub mod schema;

pub use acl::AccessLevel;
pub use error::MediaError;
pub use objects::{AudioObject, CompoundObject, DocumentObject, ImageObject, ObjectSummary};
pub use schema::MediaType;

use error::Result;
use rcmo_storage::Database;
use std::sync::Arc;

/// Handle to the multimedia database. Cheap to clone (shared `Database`).
#[derive(Debug, Clone)]
pub struct MediaDb {
    db: Arc<Database>,
}

impl MediaDb {
    /// Opens a file-backed multimedia database, installing the Figure-7
    /// schema (and the bootstrap `admin` user) if it is missing.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<MediaDb> {
        Self::with_database(Database::open(path)?)
    }

    /// Creates an ephemeral in-memory multimedia database.
    pub fn in_memory() -> Result<MediaDb> {
        Self::with_database(Database::in_memory()?)
    }

    /// Opens a file-backed multimedia database with explicit storage-engine
    /// options (group-commit window, checkpoint policy, pool sizing).
    pub fn open_with_options(
        path: impl AsRef<std::path::Path>,
        opts: rcmo_storage::DbOptions,
    ) -> Result<MediaDb> {
        Self::with_database(Database::open_with_options(path, opts)?)
    }

    /// Wraps an existing storage database, installing the schema if absent.
    pub fn with_database(db: Database) -> Result<MediaDb> {
        let db = Arc::new(db);
        schema::install(&db)?;
        acl::install(&db)?;
        Ok(MediaDb { db })
    }

    /// The underlying storage database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Lists the registered media types from the master table.
    pub fn media_types(&self) -> Result<Vec<MediaType>> {
        schema::media_types(&self.db)
    }

    /// Registers a new media type with its own object table (the paper's
    /// extensibility story). Requires [`AccessLevel::Admin`].
    pub fn register_type(
        &self,
        user: &str,
        ty: &MediaType,
        object_columns: Vec<rcmo_storage::Column>,
    ) -> Result<()> {
        acl::require(&self.db, user, AccessLevel::Admin)?;
        schema::register_type(&self.db, ty, object_columns)
    }

    // ------------------------------------------------------------------
    // Users.

    /// Adds (or updates) a user with an access level. Requires admin.
    pub fn put_user(&self, admin: &str, user: &str, level: AccessLevel) -> Result<()> {
        acl::require(&self.db, admin, AccessLevel::Admin)?;
        acl::put_user(&self.db, user, level)
    }

    /// The access level of a user, if registered.
    pub fn user_level(&self, user: &str) -> Result<Option<AccessLevel>> {
        acl::user_level(&self.db, user)
    }

    // ------------------------------------------------------------------
    // Images.

    /// Stores an image object; returns its id. Requires write access.
    pub fn insert_image(&self, user: &str, img: &ImageObject) -> Result<u64> {
        acl::require(&self.db, user, AccessLevel::Write)?;
        objects::insert_image(&self.db, img)
    }

    /// Fetches an image object (including its payload).
    pub fn get_image(&self, user: &str, id: u64) -> Result<ImageObject> {
        acl::require(&self.db, user, AccessLevel::Read)?;
        objects::get_image(&self.db, id)
    }

    /// Fetches only an image's payload bytes, skipping the metadata
    /// columns — the one-`begin_read` storage fetch behind the server's
    /// room object cache (counted in `mediadb.image.data_read.count`).
    pub fn get_image_data(&self, user: &str, id: u64) -> Result<Vec<u8>> {
        acl::require(&self.db, user, AccessLevel::Read)?;
        objects::get_image_data(&self.db, id)
    }

    /// Fetches only a prefix of an image payload (progressive transfer of a
    /// layered bitstream).
    pub fn get_image_prefix(&self, user: &str, id: u64, bytes: usize) -> Result<Vec<u8>> {
        acl::require(&self.db, user, AccessLevel::Read)?;
        objects::get_image_prefix(&self.db, id, bytes)
    }

    /// Replaces an image object in place (same id) — atomic: a failed or
    /// interrupted update leaves the stored object unchanged. Requires
    /// write access.
    pub fn update_image(&self, user: &str, id: u64, img: &ImageObject) -> Result<()> {
        acl::require(&self.db, user, AccessLevel::Write)?;
        objects::update_image(&self.db, id, img)
    }

    /// Deletes an image object and frees its BLOB. Requires write access.
    pub fn delete_image(&self, user: &str, id: u64) -> Result<()> {
        acl::require(&self.db, user, AccessLevel::Write)?;
        objects::delete_image(&self.db, id)
    }

    // ------------------------------------------------------------------
    // Audio.

    /// Stores an audio object; returns its id. Requires write access.
    pub fn insert_audio(&self, user: &str, audio: &AudioObject) -> Result<u64> {
        acl::require(&self.db, user, AccessLevel::Write)?;
        objects::insert_audio(&self.db, audio)
    }

    /// Fetches an audio object.
    pub fn get_audio(&self, user: &str, id: u64) -> Result<AudioObject> {
        acl::require(&self.db, user, AccessLevel::Read)?;
        objects::get_audio(&self.db, id)
    }

    /// Replaces an audio object's analysis sectors (`FLD_SECTORS`).
    pub fn update_audio_sectors(&self, user: &str, id: u64, sectors: &[u8]) -> Result<()> {
        acl::require(&self.db, user, AccessLevel::Write)?;
        objects::update_audio_sectors(&self.db, id, sectors)
    }

    /// Deletes an audio object and frees its BLOBs.
    pub fn delete_audio(&self, user: &str, id: u64) -> Result<()> {
        acl::require(&self.db, user, AccessLevel::Write)?;
        objects::delete_audio(&self.db, id)
    }

    // ------------------------------------------------------------------
    // Compound objects.

    /// Stores a compound object; returns its id.
    pub fn insert_compound(&self, user: &str, cmp: &CompoundObject) -> Result<u64> {
        acl::require(&self.db, user, AccessLevel::Write)?;
        objects::insert_compound(&self.db, cmp)
    }

    /// Fetches a compound object.
    pub fn get_compound(&self, user: &str, id: u64) -> Result<CompoundObject> {
        acl::require(&self.db, user, AccessLevel::Read)?;
        objects::get_compound(&self.db, id)
    }

    // ------------------------------------------------------------------
    // Documents (serialized structure + CP-network).

    /// Stores a serialized multimedia document; returns its id.
    pub fn insert_document(&self, user: &str, doc: &DocumentObject) -> Result<u64> {
        acl::require(&self.db, user, AccessLevel::Write)?;
        objects::insert_document(&self.db, doc)
    }

    /// Fetches a serialized multimedia document.
    pub fn get_document(&self, user: &str, id: u64) -> Result<DocumentObject> {
        acl::require(&self.db, user, AccessLevel::Read)?;
        objects::get_document(&self.db, id)
    }

    /// Replaces a stored document's payload (e.g. after a global CP-net
    /// update).
    pub fn update_document(&self, user: &str, id: u64, doc: &DocumentObject) -> Result<()> {
        acl::require(&self.db, user, AccessLevel::Write)?;
        objects::update_document(&self.db, id, doc)
    }

    /// Lists documents (id + title, no payload).
    pub fn list_documents(&self, user: &str) -> Result<Vec<ObjectSummary>> {
        acl::require(&self.db, user, AccessLevel::Read)?;
        objects::list_documents(&self.db)
    }

    /// Lists all objects of a type's object table (id + label), the
    /// "show all objects stored in the database" client request.
    pub fn list_objects(&self, user: &str, type_name: &str) -> Result<Vec<ObjectSummary>> {
        acl::require(&self.db, user, AccessLevel::Read)?;
        objects::list_objects(&self.db, type_name)
    }
}

#[cfg(test)]
mod tests;
