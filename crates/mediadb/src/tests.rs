use super::*;
use rcmo_storage::{Column, ColumnType, RowValue};

fn fresh() -> MediaDb {
    MediaDb::in_memory().unwrap()
}

fn sample_image(n: usize) -> ImageObject {
    ImageObject {
        name: "ct-scan".to_string(),
        quality: 3,
        texts: "lesion marker".to_string(),
        cm: vec![9, 9, 9],
        data: (0..n).map(|i| (i % 253) as u8).collect(),
    }
}

#[test]
fn schema_installed_with_builtin_types() {
    let db = fresh();
    let types = db.media_types().unwrap();
    let names: Vec<&str> = types.iter().map(|t| t.name.as_str()).collect();
    assert!(names.contains(&"Image"));
    assert!(names.contains(&"Audio"));
    assert!(names.contains(&"Compound"));
    assert!(names.contains(&"Document"));
    let img = types.iter().find(|t| t.name == "Image").unwrap();
    assert_eq!(img.object_table, "IMAGE_OBJECTS_TABLE");
}

#[test]
fn install_is_idempotent() {
    let db = fresh();
    // Re-running install on the shared database must not duplicate rows.
    schema::install(db.database()).unwrap();
    assert_eq!(db.media_types().unwrap().len(), 4);
}

#[test]
fn image_crud_roundtrip() {
    let db = fresh();
    let img = sample_image(70_000);
    let id = db.insert_image("admin", &img).unwrap();
    let back = db.get_image("admin", id).unwrap();
    assert_eq!(back, img);
    let prefix = db.get_image_prefix("admin", id, 1_000).unwrap();
    assert_eq!(prefix, &img.data[..1_000]);
    db.delete_image("admin", id).unwrap();
    assert!(matches!(
        db.get_image("admin", id),
        Err(MediaError::NotFound { .. })
    ));
}

#[test]
fn image_update_in_place_keeps_id() {
    let db = fresh();
    let img = sample_image(50_000);
    let id = db.insert_image("admin", &img).unwrap();
    let mut changed = img.clone();
    changed.cm = vec![1, 2, 3, 4];
    changed.data = vec![7u8; 80_000];
    db.update_image("admin", id, &changed).unwrap();
    assert_eq!(db.get_image("admin", id).unwrap(), changed);
    // Updating a missing id fails cleanly and changes nothing.
    assert!(matches!(
        db.update_image("admin", id + 99, &changed),
        Err(MediaError::NotFound { .. })
    ));
    assert_eq!(db.get_image("admin", id).unwrap(), changed);
    // Write access is required.
    db.put_user("admin", "viewer", AccessLevel::Read).unwrap();
    assert!(db.update_image("viewer", id, &img).is_err());
    assert_eq!(db.get_image("admin", id).unwrap(), changed);
}

#[test]
fn audio_crud_roundtrip() {
    let db = fresh();
    let audio = AudioObject {
        filename: "consult.pcm".to_string(),
        sectors: vec![1, 2, 3, 4],
        data: (0..30_000).map(|i| (i % 200) as u8).collect(),
    };
    let id = db.insert_audio("admin", &audio).unwrap();
    assert_eq!(db.get_audio("admin", id).unwrap(), audio);
    db.delete_audio("admin", id).unwrap();
    assert!(db.get_audio("admin", id).is_err());
}

#[test]
fn audio_sector_update() {
    let db = fresh();
    let audio = AudioObject {
        filename: "a.pcm".to_string(),
        sectors: vec![],
        data: vec![1, 2, 3, 4],
    };
    let id = db.insert_audio("admin", &audio).unwrap();
    db.update_audio_sectors("admin", id, &[9, 9, 9]).unwrap();
    let back = db.get_audio("admin", id).unwrap();
    assert_eq!(back.sectors, vec![9, 9, 9]);
    assert_eq!(back.data, vec![1, 2, 3, 4], "payload untouched");
    assert!(db.update_audio_sectors("admin", 999, &[]).is_err());
}

#[test]
fn compound_roundtrip() {
    let db = fresh();
    let cmp = CompoundObject {
        filename: "report.bin".to_string(),
        filesize: 12_345,
        current_position: 77,
        header: vec![0xCA, 0xFE],
        data: vec![0u8; 12_345],
    };
    let id = db.insert_compound("admin", &cmp).unwrap();
    assert_eq!(db.get_compound("admin", id).unwrap(), cmp);
}

#[test]
fn document_store_update_list() {
    let db = fresh();
    let doc = DocumentObject {
        title: "Patient 1".to_string(),
        data: vec![1, 2, 3],
    };
    let id = db.insert_document("admin", &doc).unwrap();
    assert_eq!(db.get_document("admin", id).unwrap(), doc);
    let doc2 = DocumentObject {
        title: "Patient 1 (rev)".to_string(),
        data: vec![4; 10_000],
    };
    db.update_document("admin", id, &doc2).unwrap();
    assert_eq!(db.get_document("admin", id).unwrap(), doc2);
    let list = db.list_documents("admin").unwrap();
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].label, "Patient 1 (rev)");
    assert_eq!(list[0].bytes, 10_000);
}

#[test]
fn list_objects_by_type() {
    let db = fresh();
    db.insert_image("admin", &sample_image(500)).unwrap();
    db.insert_image("admin", &sample_image(700)).unwrap();
    let list = db.list_objects("admin", "Image").unwrap();
    assert_eq!(list.len(), 2);
    assert!(list.iter().all(|o| o.label == "ct-scan"));
    assert_eq!(list[0].bytes, 500);
    assert!(db.list_objects("admin", "Nope").is_err());
}

#[test]
fn permissions_enforced() {
    let db = fresh();
    // Unknown user: denied even for reads.
    assert!(matches!(
        db.get_image("nobody", 1),
        Err(MediaError::Denied { .. })
    ));
    db.put_user("admin", "viewer", AccessLevel::Read).unwrap();
    db.put_user("admin", "editor", AccessLevel::Write).unwrap();
    // Viewer can read but not write.
    assert!(matches!(
        db.insert_image("viewer", &sample_image(10)),
        Err(MediaError::Denied { .. })
    ));
    let id = db.insert_image("editor", &sample_image(10)).unwrap();
    assert!(db.get_image("viewer", id).is_ok());
    // Only admin manages users.
    assert!(matches!(
        db.put_user("editor", "x", AccessLevel::Read),
        Err(MediaError::Denied { .. })
    ));
    // Levels can be upgraded.
    db.put_user("admin", "viewer", AccessLevel::Write).unwrap();
    assert!(db.insert_image("viewer", &sample_image(10)).is_ok());
    assert_eq!(db.user_level("viewer").unwrap(), Some(AccessLevel::Write));
    assert_eq!(db.user_level("ghost").unwrap(), None);
}

#[test]
fn register_new_media_type() {
    let db = fresh();
    let ty = MediaType {
        name: "Video".to_string(),
        mime: "video/mjpeg".to_string(),
        access_type: "stream".to_string(),
        object_table: "VIDEO_OBJECTS_TABLE".to_string(),
        description: "ultrasound clips".to_string(),
    };
    db.register_type(
        "admin",
        &ty,
        vec![
            Column::new("ID", ColumnType::U64),
            Column::new("FLD_NAME", ColumnType::Text),
            Column::new("FLD_FPS", ColumnType::I64),
            Column::new("FLD_DATA", ColumnType::Blob),
        ],
    )
    .unwrap();
    assert_eq!(db.media_types().unwrap().len(), 5);
    // The new object table is usable through the raw database handle.
    let mut tx = db.database().begin().unwrap();
    let blob = tx.put_blob(&[1, 2, 3]).unwrap();
    let id = tx
        .insert(
            "VIDEO_OBJECTS_TABLE",
            vec![
                RowValue::Null,
                RowValue::Text("us-clip".to_string()),
                RowValue::I64(25),
                RowValue::Blob(blob),
            ],
        )
        .unwrap();
    tx.commit().unwrap();
    let list = db.list_objects("admin", "Video").unwrap();
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].id, id);
    assert_eq!(list[0].bytes, 3);
    // Duplicate registration rejected.
    assert!(db
        .register_type("admin", &ty, vec![Column::new("ID", ColumnType::U64)])
        .is_err());
    // Non-admin rejected.
    assert!(matches!(
        db.register_type("nobody", &ty, vec![Column::new("ID", ColumnType::U64)]),
        Err(MediaError::Denied { .. })
    ));
}

#[test]
fn persistence_of_media_objects() {
    let dir = std::env::temp_dir().join(format!("rcmo-mdb-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("media.db");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(rcmo_storage::db::wal_path_for(&path));
    let img = sample_image(40_000);
    let id;
    {
        let db = MediaDb::open(&path).unwrap();
        id = db.insert_image("admin", &img).unwrap();
    }
    {
        let db = MediaDb::open(&path).unwrap();
        assert_eq!(db.get_image("admin", id).unwrap(), img);
        // Built-in types are not re-inserted on reopen.
        assert_eq!(db.media_types().unwrap().len(), 4);
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(rcmo_storage::db::wal_path_for(&path));
}
