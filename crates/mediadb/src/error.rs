//! Error type of the multimedia database layer.

use rcmo_storage::StorageError;
use std::fmt;

/// Errors raised by the multimedia database layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum MediaError {
    /// An error bubbled up from the storage engine.
    Storage(StorageError),
    /// The user lacks the required access level.
    Denied {
        /// The acting user.
        user: String,
        /// What the operation required.
        required: &'static str,
    },
    /// An object id did not resolve.
    NotFound {
        /// The object table searched.
        table: &'static str,
        /// The missing id.
        id: u64,
    },
    /// A media type name did not resolve / already exists.
    Type(String),
    /// A stored row had an unexpected shape (corruption or version skew).
    Malformed(String),
}

impl fmt::Display for MediaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaError::Storage(e) => write!(f, "storage: {e}"),
            MediaError::Denied { user, required } => {
                write!(f, "user '{user}' lacks {required} access")
            }
            MediaError::NotFound { table, id } => write!(f, "no object {id} in {table}"),
            MediaError::Type(m) => write!(f, "media type: {m}"),
            MediaError::Malformed(m) => write!(f, "malformed row: {m}"),
        }
    }
}

impl std::error::Error for MediaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MediaError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for MediaError {
    fn from(e: StorageError) -> Self {
        MediaError::Storage(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, MediaError>;
