//! Minimal access control: per-user levels checked on every operation.
//!
//! The paper grants clients operations "providing that the client has the
//! appropriate permissions"; this module implements the smallest useful
//! model — three ordered levels stored in a `USERS_TABLE`:
//!
//! * `Read` — fetch objects and documents,
//! * `Write` — additionally store/update/delete objects,
//! * `Admin` — additionally manage users and register media types.
//!
//! A fresh database is bootstrapped with the user `admin` at `Admin` level.

use crate::error::{MediaError, Result};
use rcmo_storage::{Column, ColumnType, Database, RowValue, Schema};

/// Name of the users table.
pub const USERS_TABLE: &str = "USERS_TABLE";

/// Ordered access levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessLevel {
    /// May fetch objects and documents.
    Read,
    /// May also create, update, and delete objects.
    Write,
    /// May also manage users and register media types.
    Admin,
}

impl AccessLevel {
    fn tag(self) -> i64 {
        match self {
            AccessLevel::Read => 0,
            AccessLevel::Write => 1,
            AccessLevel::Admin => 2,
        }
    }

    fn from_tag(tag: i64) -> Option<AccessLevel> {
        Some(match tag {
            0 => AccessLevel::Read,
            1 => AccessLevel::Write,
            2 => AccessLevel::Admin,
            _ => return None,
        })
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AccessLevel::Read => "read",
            AccessLevel::Write => "write",
            AccessLevel::Admin => "admin",
        }
    }
}

fn users_schema() -> Schema {
    Schema::new(vec![
        Column::new("ID", ColumnType::U64),
        Column::new("NAME", ColumnType::Text),
        Column::new("LEVEL", ColumnType::I64),
    ])
    .expect("static schema is valid")
}

/// Creates the users table with the bootstrap admin. Idempotent.
pub fn install(db: &Database) -> Result<()> {
    let mut tx = db.begin()?;
    if tx.table_names().iter().any(|t| t == USERS_TABLE) {
        return Ok(());
    }
    tx.create_table(USERS_TABLE, users_schema())?;
    tx.insert(
        USERS_TABLE,
        vec![
            RowValue::Null,
            RowValue::Text("admin".to_string()),
            RowValue::I64(AccessLevel::Admin.tag()),
        ],
    )?;
    tx.commit()?;
    Ok(())
}

/// Adds or updates a user's level.
pub fn put_user(db: &Database, user: &str, level: AccessLevel) -> Result<()> {
    let mut tx = db.begin()?;
    let existing = tx
        .scan(USERS_TABLE)?
        .into_iter()
        .find(|r| matches!(&r[1], RowValue::Text(n) if n == user));
    match existing {
        Some(row) => {
            let id = row[0].as_u64()?;
            tx.update(
                USERS_TABLE,
                id,
                vec![
                    RowValue::Null,
                    RowValue::Text(user.to_string()),
                    RowValue::I64(level.tag()),
                ],
            )?;
        }
        None => {
            tx.insert(
                USERS_TABLE,
                vec![
                    RowValue::Null,
                    RowValue::Text(user.to_string()),
                    RowValue::I64(level.tag()),
                ],
            )?;
        }
    }
    tx.commit()?;
    Ok(())
}

/// Looks a user's level up.
pub fn user_level(db: &Database, user: &str) -> Result<Option<AccessLevel>> {
    let tx = db.begin_read()?;
    for row in tx.scan(USERS_TABLE)? {
        if matches!(&row[1], RowValue::Text(n) if n == user) {
            let tag = match row[2] {
                RowValue::I64(t) => t,
                ref other => {
                    return Err(MediaError::Malformed(format!(
                        "user level column holds {other:?}"
                    )))
                }
            };
            return Ok(AccessLevel::from_tag(tag));
        }
    }
    Ok(None)
}

/// Fails unless `user` holds at least `required`.
pub fn require(db: &Database, user: &str, required: AccessLevel) -> Result<()> {
    match user_level(db, user)? {
        Some(level) if level >= required => Ok(()),
        _ => Err(MediaError::Denied {
            user: user.to_string(),
            required: required.name(),
        }),
    }
}
