//! Typed object mapping: the Rust-side classes the paper's prototype
//! imports from the database ("objects and their corresponding methods are
//! imported from the database to their respective Java classes").

use crate::error::{MediaError, Result};
use crate::schema::{self, AUDIO_TABLE, CMP_TABLE, DOC_TABLE, IMAGE_TABLE};
use rcmo_storage::{Database, RowValue};

/// An image object (one row of `IMAGE_OBJECTS_TABLE` plus its payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageObject {
    /// Display name.
    pub name: String,
    /// Quality level the payload was encoded at (codec-defined).
    pub quality: i64,
    /// Text annotations rendered onto the image (FLD_TEXTS).
    pub texts: String,
    /// Calibration / colour-map metadata (FLD_CM).
    pub cm: Vec<u8>,
    /// The encoded image bitstream (stored as a BLOB).
    pub data: Vec<u8>,
}

/// An audio object (one row of `AUDIO_OBJECTS_TABLE` plus payloads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AudioObject {
    /// Original file name.
    pub filename: String,
    /// Serialized segmentation sectors (FLD_SECTORS; speaker turns,
    /// word-spot hits...).
    pub sectors: Vec<u8>,
    /// The raw audio samples (FLD_DATA).
    pub data: Vec<u8>,
}

/// A compound object (one row of `CMP_OBJECTS_TABLE`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompoundObject {
    /// Original file name.
    pub filename: String,
    /// Logical size (FLD_FILESIZE).
    pub filesize: u64,
    /// Reading position bookmark (FLD_CURRENTPOSITION).
    pub current_position: u64,
    /// Header bytes (FLD_HEADER).
    pub header: Vec<u8>,
    /// Body bytes (FLD_DATA).
    pub data: Vec<u8>,
}

/// A serialized multimedia document (structure + CP-network bytes produced
/// by `rcmo-core`'s `MultimediaDocument::to_bytes`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocumentObject {
    /// Document title.
    pub title: String,
    /// Serialized document payload.
    pub data: Vec<u8>,
}

/// A light-weight listing entry (no payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectSummary {
    /// The object's id in its object table.
    pub id: u64,
    /// A human-readable label (name/filename/title).
    pub label: String,
    /// Payload size in bytes (0 when the type has no single main BLOB).
    pub bytes: u64,
}

fn text(row: &[RowValue], i: usize) -> Result<String> {
    schema::text(row, i)
}

fn bytes_col(row: &[RowValue], i: usize) -> Result<Vec<u8>> {
    match row.get(i) {
        Some(RowValue::Bytes(b)) => Ok(b.clone()),
        Some(RowValue::Null) => Ok(Vec::new()),
        other => Err(MediaError::Malformed(format!(
            "expected Bytes in column {i}, got {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------
// Images.

/// Inserts an image object.
pub fn insert_image(db: &Database, img: &ImageObject) -> Result<u64> {
    static LAT: rcmo_obs::LazyHistogram =
        rcmo_obs::LazyHistogram::new("mediadb.image.insert.us", rcmo_obs::bounds::LATENCY_US);
    let _t = LAT.start_timer();
    let mut tx = db.begin()?;
    let blob = tx.put_blob(&img.data)?;
    let id = tx.insert(
        IMAGE_TABLE,
        vec![
            RowValue::Null,
            RowValue::Text(img.name.clone()),
            RowValue::I64(img.quality),
            RowValue::Text(img.texts.clone()),
            RowValue::Bytes(img.cm.clone()),
            RowValue::Blob(blob),
        ],
    )?;
    tx.commit()?;
    Ok(id)
}

/// Fetches an image object.
pub fn get_image(db: &Database, id: u64) -> Result<ImageObject> {
    static LAT: rcmo_obs::LazyHistogram =
        rcmo_obs::LazyHistogram::new("mediadb.image.get.us", rcmo_obs::bounds::LATENCY_US);
    let _t = LAT.start_timer();
    let tx = db.begin_read()?;
    let row = tx.get(IMAGE_TABLE, id)?.ok_or(MediaError::NotFound {
        table: IMAGE_TABLE,
        id,
    })?;
    let data = tx.get_blob(row[5].as_blob()?)?;
    Ok(ImageObject {
        name: text(&row, 1)?,
        quality: match row[2] {
            RowValue::I64(q) => q,
            _ => 0,
        },
        texts: text(&row, 3)?,
        cm: bytes_col(&row, 4)?,
        data,
    })
}

/// Fetches only an image's payload bytes (`FLD_DATA`), skipping the
/// name/texts/overlay columns — the storage read behind the server's
/// room-level object cache. Each call is one `begin_read`, counted in
/// `mediadb.image.data_read.count` so the delivery experiments can gate
/// "storage reads per room stay O(components), not O(viewers)".
pub fn get_image_data(db: &Database, id: u64) -> Result<Vec<u8>> {
    static READS: rcmo_obs::LazyCounter =
        rcmo_obs::LazyCounter::new("mediadb.image.data_read.count");
    READS.inc();
    let tx = db.begin_read()?;
    let row = tx.get(IMAGE_TABLE, id)?.ok_or(MediaError::NotFound {
        table: IMAGE_TABLE,
        id,
    })?;
    Ok(tx.get_blob(row[5].as_blob()?)?)
}

/// Fetches only the first `n` bytes of an image payload.
pub fn get_image_prefix(db: &Database, id: u64, n: usize) -> Result<Vec<u8>> {
    let tx = db.begin_read()?;
    let row = tx.get(IMAGE_TABLE, id)?.ok_or(MediaError::NotFound {
        table: IMAGE_TABLE,
        id,
    })?;
    Ok(tx.get_blob_prefix(row[5].as_blob()?, n)?)
}

/// Replaces an image object in place, keeping its id. The row and payload
/// BLOB flip inside one transaction: a crash or failure mid-save rolls
/// back to the old version — the object is never left missing or torn.
pub fn update_image(db: &Database, id: u64, img: &ImageObject) -> Result<()> {
    let mut tx = db.begin()?;
    let row = tx.get(IMAGE_TABLE, id)?.ok_or(MediaError::NotFound {
        table: IMAGE_TABLE,
        id,
    })?;
    tx.delete_blob(row[5].as_blob()?)?;
    let blob = tx.put_blob(&img.data)?;
    tx.update(
        IMAGE_TABLE,
        id,
        vec![
            RowValue::Null,
            RowValue::Text(img.name.clone()),
            RowValue::I64(img.quality),
            RowValue::Text(img.texts.clone()),
            RowValue::Bytes(img.cm.clone()),
            RowValue::Blob(blob),
        ],
    )?;
    tx.commit()?;
    Ok(())
}

/// Deletes an image object and its BLOB.
pub fn delete_image(db: &Database, id: u64) -> Result<()> {
    let mut tx = db.begin()?;
    let row = tx
        .delete(IMAGE_TABLE, id)
        .map_err(|_| MediaError::NotFound {
            table: IMAGE_TABLE,
            id,
        })?;
    tx.delete_blob(row[5].as_blob()?)?;
    tx.commit()?;
    Ok(())
}

// ---------------------------------------------------------------------
// Audio.

/// Inserts an audio object.
pub fn insert_audio(db: &Database, audio: &AudioObject) -> Result<u64> {
    let mut tx = db.begin()?;
    let sectors = tx.put_blob(&audio.sectors)?;
    let data = tx.put_blob(&audio.data)?;
    let id = tx.insert(
        AUDIO_TABLE,
        vec![
            RowValue::Null,
            RowValue::Text(audio.filename.clone()),
            RowValue::Blob(sectors),
            RowValue::Blob(data),
        ],
    )?;
    tx.commit()?;
    Ok(id)
}

/// Fetches an audio object.
pub fn get_audio(db: &Database, id: u64) -> Result<AudioObject> {
    let tx = db.begin_read()?;
    let row = tx.get(AUDIO_TABLE, id)?.ok_or(MediaError::NotFound {
        table: AUDIO_TABLE,
        id,
    })?;
    let sectors = tx.get_blob(row[2].as_blob()?)?;
    let data = tx.get_blob(row[3].as_blob()?)?;
    Ok(AudioObject {
        filename: text(&row, 1)?,
        sectors,
        data,
    })
}

/// Replaces an audio object's `FLD_SECTORS` payload (analysis results).
pub fn update_audio_sectors(db: &Database, id: u64, sectors: &[u8]) -> Result<()> {
    let mut tx = db.begin()?;
    let row = tx.get(AUDIO_TABLE, id)?.ok_or(MediaError::NotFound {
        table: AUDIO_TABLE,
        id,
    })?;
    tx.delete_blob(row[2].as_blob()?)?;
    let new_sectors = tx.put_blob(sectors)?;
    let mut new_row = row;
    new_row[2] = RowValue::Blob(new_sectors);
    new_row[0] = RowValue::Null;
    tx.update(AUDIO_TABLE, id, new_row)?;
    tx.commit()?;
    Ok(())
}

/// Deletes an audio object and both its BLOBs.
pub fn delete_audio(db: &Database, id: u64) -> Result<()> {
    let mut tx = db.begin()?;
    let row = tx
        .delete(AUDIO_TABLE, id)
        .map_err(|_| MediaError::NotFound {
            table: AUDIO_TABLE,
            id,
        })?;
    tx.delete_blob(row[2].as_blob()?)?;
    tx.delete_blob(row[3].as_blob()?)?;
    tx.commit()?;
    Ok(())
}

// ---------------------------------------------------------------------
// Compound objects.

/// Inserts a compound object.
pub fn insert_compound(db: &Database, cmp: &CompoundObject) -> Result<u64> {
    let mut tx = db.begin()?;
    let header = tx.put_blob(&cmp.header)?;
    let data = tx.put_blob(&cmp.data)?;
    let id = tx.insert(
        CMP_TABLE,
        vec![
            RowValue::Null,
            RowValue::Text(cmp.filename.clone()),
            RowValue::U64(cmp.filesize),
            RowValue::U64(cmp.current_position),
            RowValue::Blob(header),
            RowValue::Blob(data),
        ],
    )?;
    tx.commit()?;
    Ok(id)
}

/// Fetches a compound object.
pub fn get_compound(db: &Database, id: u64) -> Result<CompoundObject> {
    let tx = db.begin_read()?;
    let row = tx.get(CMP_TABLE, id)?.ok_or(MediaError::NotFound {
        table: CMP_TABLE,
        id,
    })?;
    let header = tx.get_blob(row[4].as_blob()?)?;
    let data = tx.get_blob(row[5].as_blob()?)?;
    Ok(CompoundObject {
        filename: text(&row, 1)?,
        filesize: row[2].as_u64()?,
        current_position: row[3].as_u64()?,
        header,
        data,
    })
}

// ---------------------------------------------------------------------
// Documents.

/// Inserts a serialized document.
pub fn insert_document(db: &Database, doc: &DocumentObject) -> Result<u64> {
    let mut tx = db.begin()?;
    let blob = tx.put_blob(&doc.data)?;
    let id = tx.insert(
        DOC_TABLE,
        vec![
            RowValue::Null,
            RowValue::Text(doc.title.clone()),
            RowValue::Blob(blob),
        ],
    )?;
    tx.commit()?;
    Ok(id)
}

/// Fetches a serialized document.
pub fn get_document(db: &Database, id: u64) -> Result<DocumentObject> {
    static LAT: rcmo_obs::LazyHistogram =
        rcmo_obs::LazyHistogram::new("mediadb.document.get.us", rcmo_obs::bounds::LATENCY_US);
    let _t = LAT.start_timer();
    let tx = db.begin_read()?;
    let row = tx.get(DOC_TABLE, id)?.ok_or(MediaError::NotFound {
        table: DOC_TABLE,
        id,
    })?;
    let data = tx.get_blob(row[2].as_blob()?)?;
    Ok(DocumentObject {
        title: text(&row, 1)?,
        data,
    })
}

/// Replaces a stored document's payload (and title).
pub fn update_document(db: &Database, id: u64, doc: &DocumentObject) -> Result<()> {
    let mut tx = db.begin()?;
    let row = tx.get(DOC_TABLE, id)?.ok_or(MediaError::NotFound {
        table: DOC_TABLE,
        id,
    })?;
    tx.delete_blob(row[2].as_blob()?)?;
    let blob = tx.put_blob(&doc.data)?;
    tx.update(
        DOC_TABLE,
        id,
        vec![
            RowValue::Null,
            RowValue::Text(doc.title.clone()),
            RowValue::Blob(blob),
        ],
    )?;
    tx.commit()?;
    Ok(())
}

/// Lists documents (id, title, payload size).
pub fn list_documents(db: &Database) -> Result<Vec<ObjectSummary>> {
    let tx = db.begin_read()?;
    let rows = tx.scan(DOC_TABLE)?;
    rows.into_iter()
        .map(|row| {
            let id = row[0].as_u64()?;
            let label = text(&row, 1)?;
            let bytes = tx.blob_len(row[2].as_blob()?)?;
            Ok(ObjectSummary { id, label, bytes })
        })
        .collect()
}

/// Lists all objects of a registered media type (id + label + main BLOB
/// size), resolving the object table through the master table.
pub fn list_objects(db: &Database, type_name: &str) -> Result<Vec<ObjectSummary>> {
    let ty = schema::media_type_by_name(db, type_name)?;
    let tx = db.begin_read()?;
    let table_schema = tx.schema(&ty.object_table)?;
    let label_col = table_schema
        .columns()
        .iter()
        .position(|c| c.ty == rcmo_storage::ColumnType::Text)
        .unwrap_or(0);
    let blob_col = table_schema
        .columns()
        .iter()
        .rposition(|c| c.ty == rcmo_storage::ColumnType::Blob);
    // The schema owns the column list; drop the borrow before scanning.
    let rows = tx.scan(&ty.object_table)?;
    rows.into_iter()
        .map(|row| {
            let id = row[0].as_u64()?;
            let label = match row.get(label_col) {
                Some(RowValue::Text(s)) => s.clone(),
                _ => format!("object {id}"),
            };
            let bytes = match blob_col.and_then(|c| row.get(c)) {
                Some(RowValue::Blob(b)) => tx.blob_len(*b)?,
                _ => 0,
            };
            Ok(ObjectSummary { id, label, bytes })
        })
        .collect()
}
