//! The paper's flagship scenario end-to-end: "a group of physicians
//! discussing together or browsing separately a patient file which includes
//! CT images, voice fragments, tests results".
//!
//! Builds the multimedia database (Figure 7 schema), stores a CT phantom and
//! a document with author preferences, opens a shared room on the
//! interaction server, and drives two doctors through a consultation:
//! annotations, freeze/release, a global segmentation operation, and
//! persistence back to the database.
//!
//! Run with `cargo run --example medical_consultation`.

use rcmo::core::{FormKind, MediaRef, MultimediaDocument, PresentationForm};
use rcmo::imaging::{ct_phantom, segment_image, LineElement, SegmentFill, TextElement};
use rcmo::mediadb::{AccessLevel, DocumentObject, ImageObject, MediaDb};
use rcmo::server::events::TriggerCondition;
use rcmo::server::{Action, InteractionServer, RoomEvent};

fn main() {
    // ----- Database setup (the Oracle of Figure 1, in Rust). -----
    let db = MediaDb::in_memory().expect("in-memory database");
    db.put_user("admin", "dr-gudes", AccessLevel::Write)
        .unwrap();
    db.put_user("admin", "dr-orlov", AccessLevel::Write)
        .unwrap();
    println!("media types registered:");
    for t in db.media_types().unwrap() {
        println!("  {:10} -> {}", t.name, t.object_table);
    }

    // A synthetic CT slice with 3 lesions, stored as an image BLOB.
    let ct_img = ct_phantom(128, 3, 42).unwrap();
    let ct_id = db
        .insert_image(
            "dr-gudes",
            &ImageObject {
                name: "ct-axial-17".into(),
                quality: 0,
                texts: String::new(),
                cm: Vec::new(),
                data: ct_img.to_bytes(),
            },
        )
        .unwrap();

    // ----- The document, with author preferences. -----
    let mut doc = MultimediaDocument::new("Patient 042");
    let images = doc.add_composite(doc.root(), "Images").unwrap();
    let ct = doc
        .add_primitive(
            images,
            "CT axial 17",
            MediaRef::Stored {
                media_type: "Image".into(),
                object_id: ct_id,
            },
            vec![
                PresentationForm::new("flat", FormKind::Flat, 128 * 128),
                PresentationForm::new("segmented", FormKind::Segmented, 128 * 128 + 4_000),
                PresentationForm::hidden(),
            ],
        )
        .unwrap();
    doc.validate().unwrap();
    let doc_id = db
        .insert_document(
            "dr-gudes",
            &DocumentObject {
                title: doc.title().into(),
                data: doc.to_bytes(),
            },
        )
        .unwrap();

    // ----- The shared room. -----
    let srv = InteractionServer::new(db);
    let room = srv.create_room("dr-gudes", "tumor-board", doc_id).unwrap();
    let gudes = srv.join_default(room, "dr-gudes").unwrap();
    let orlov = srv.join_default(room, "dr-orlov").unwrap();
    srv.open_image(room, "dr-gudes", ct_id).unwrap();
    println!(
        "\nroom '{}' members: {:?}",
        room,
        srv.members(room).unwrap()
    );

    // dr-gudes freezes the image while he marks a lesion.
    srv.act(room, "dr-gudes", Action::Freeze { object: ct_id })
        .unwrap();
    srv.act(
        room,
        "dr-gudes",
        Action::AddText {
            object: ct_id,
            element: TextElement {
                x: 70,
                y: 40,
                text: "LESION?".into(),
                intensity: 255,
                scale: 1,
            },
        },
    )
    .unwrap();
    srv.act(
        room,
        "dr-gudes",
        Action::AddLine {
            object: ct_id,
            element: LineElement {
                x0: 66,
                y0: 50,
                x1: 80,
                y1: 64,
                intensity: 255,
            },
        },
    )
    .unwrap();
    srv.act(room, "dr-gudes", Action::Release { object: ct_id })
        .unwrap();

    // dr-orlov sets a dynamic event trigger: tell me when anyone operates
    // on the CT component (the paper's "dynamic event triggers").
    srv.add_trigger(
        room,
        "dr-orlov",
        TriggerCondition::OperationOn { component: ct },
    )
    .unwrap();

    // dr-orlov answers in chat and triggers a *global* segmentation: the
    // operation becomes a derived variable of the shared CP-net.
    srv.act(
        room,
        "dr-orlov",
        Action::Chat {
            text: "agree — segmenting".into(),
        },
    )
    .unwrap();
    srv.act(
        room,
        "dr-orlov",
        Action::ApplyOperation {
            component: ct,
            trigger_form: 0,
            operation: "segmentation".into(),
            global: true,
        },
    )
    .unwrap();

    // Both partners observed the identical event stream.
    let seen_by_orlov: Vec<RoomEvent> = orlov.events.try_iter().map(|e| e.event).collect();
    println!(
        "\ndr-orlov observed {} events; last three:",
        seen_by_orlov.len()
    );
    for e in seen_by_orlov.iter().rev().take(3).rev() {
        println!("  {e:?}");
    }
    drop(gudes);

    // The segmentation module actually runs on the shared image.
    let rendered = srv.render_object(room, ct_id).unwrap();
    let mut seg = segment_image(&rendered, 6);
    println!(
        "\nsegmentation found {} regions (incl. background)",
        seg.num_segments()
    );
    for label in 1..seg.num_segments() as u32 {
        seg.set_fill(label, SegmentFill::Stripes(40, 215, 2))
            .unwrap();
    }
    let highlighted = seg.render(&rendered, 255).unwrap();
    println!(
        "highlighted render: {}x{}, mean intensity {:.1}",
        highlighted.width(),
        highlighted.height(),
        highlighted.mean()
    );

    // Presentations: both doctors now see "segmentation applied".
    for user in ["dr-gudes", "dr-orlov"] {
        println!("\n{user}'s presentation:");
        print!("{}", srv.render_presentation(room, user).unwrap());
    }

    // Cooperative audio browsing: a voice memo is stored as PCM, analysed
    // on the server, and the segments are shared with the room and written
    // into FLD_SECTORS.
    let memo = {
        let sc = rcmo::audio::SynthConfig {
            seed: 99,
            ..rcmo::audio::SynthConfig::default()
        };
        let mut s = rcmo::audio::synth::silence(0.4, &sc);
        s.extend(rcmo::audio::synth::babble(
            &rcmo::audio::VoiceProfile::male("gudes"),
            1.0,
            &sc,
        ));
        s
    };
    let audio_id = srv
        .database()
        .insert_audio(
            "dr-gudes",
            &rcmo::mediadb::AudioObject {
                filename: "memo.pcm".into(),
                sectors: vec![],
                data: rcmo::audio::synth::to_pcm16(&memo),
            },
        )
        .unwrap();
    println!("\nanalysing voice memo (server-side, shared with the room)...");
    let segments = srv.analyse_audio(room, "dr-gudes", audio_id).unwrap();
    for seg in &segments {
        println!(
            "  frames {:>3}..{:<3} {}",
            seg.frames.start,
            seg.frames.end,
            seg.class.name()
        );
    }

    // Persist everything back to the database layer. dr-gudes' event
    // stream died above (the `drop`), so the analysis broadcast reaped
    // him; an involuntary removal keeps his seat reserved, and a resync
    // re-enters the room with his old role before he saves.
    srv.save_document(room, "dr-orlov").unwrap();
    let (_gudes, _catch_up) = srv.resync(room, "dr-gudes", 0).unwrap();
    srv.save_and_close_image(room, "dr-gudes", ct_id).unwrap();
    let stats = srv.room_stats(room).unwrap();
    println!(
        "\npropagation: {} events, {} bytes delivered, {} changes buffered",
        stats.events_delivered, stats.bytes_delivered, stats.changes_logged
    );
}
