//! Quickstart: author a multimedia document with a CP-network, compute its
//! default presentation, and watch it reconfigure as a viewer interacts.
//!
//! Run with `cargo run --example quickstart`.

use rcmo::core::{
    FormKind, MediaRef, MultimediaDocument, PresentationEngine, PresentationForm, ViewerChoice,
    ViewerSession,
};

fn main() {
    // 1. The author builds a hierarchical document: a patient record with
    //    an images folder (CT + X-ray) and a lab-results note.
    let mut doc = MultimediaDocument::new("Patient 042");
    let images = doc
        .add_composite(doc.root(), "Images")
        .expect("root is composite");
    let ct = doc
        .add_primitive(
            images,
            "CT image",
            MediaRef::None,
            vec![
                PresentationForm::new("flat", FormKind::Flat, 500_000),
                PresentationForm::new("segmented", FormKind::Segmented, 650_000),
                PresentationForm::hidden(),
            ],
        )
        .expect("valid primitive");
    let xray = doc
        .add_primitive(
            images,
            "X-ray",
            MediaRef::None,
            vec![
                PresentationForm::new("flat", FormKind::Flat, 250_000),
                PresentationForm::new("icon", FormKind::Icon, 4_000),
                PresentationForm::hidden(),
            ],
        )
        .expect("valid primitive");
    let labs = doc
        .add_primitive(
            doc.root(),
            "Lab results",
            MediaRef::None,
            vec![
                PresentationForm::new("table", FormKind::Text, 2_000),
                PresentationForm::hidden(),
            ],
        )
        .expect("valid primitive");

    // 2. The author states conditional preferences (the paper's own
    //    example): while a CT image is presented, the correlated X-ray
    //    should shrink to an icon; once the CT is hidden, show it flat.
    doc.author_parents(xray, &[ct])
        .expect("ct is a valid parent");
    doc.author_preference(xray, &[(ct, 0)], &[1, 0, 2]).unwrap();
    doc.author_preference(xray, &[(ct, 1)], &[1, 0, 2]).unwrap();
    doc.author_preference(xray, &[(ct, 2)], &[0, 1, 2]).unwrap();
    doc.validate().expect("document and CP-net are consistent");

    println!("Document hierarchy:\n{}", doc.outline());

    // 3. defaultPresentation(): the optimal outcome of the CP-net.
    let engine = PresentationEngine::new();
    let p = engine.default_presentation(&doc);
    println!(
        "Default presentation ({} bytes to transfer):",
        p.transfer_bytes(&doc)
    );
    print!("{}", p.render(&doc));

    // 4. The viewer clicks: "hide the CT" — reconfigPresentation() finds
    //    the best completion of that choice; the X-ray pops back to flat.
    let mut session = ViewerSession::new("dr-alice");
    session
        .choose(
            &doc,
            ViewerChoice {
                component: ct,
                form: 2,
            },
        )
        .expect("valid choice");
    let p = engine
        .presentation_for(&doc, &session)
        .expect("session is fresh");
    println!(
        "\nAfter dr-alice hides the CT ({} bytes):",
        p.transfer_bytes(&doc)
    );
    print!("{}", p.render(&doc));

    // 5. A viewer-local operation: dr-alice segments the X-ray. The derived
    //    preference variable lives in *her* session only (Section 4.2).
    session
        .apply_local_operation(&doc, xray, 0, "segmentation")
        .expect("fresh extension");
    let p = engine
        .presentation_for(&doc, &session)
        .expect("extension is consistent");
    println!("\nAfter her private segmentation:");
    print!("{}", p.render(&doc));
    let _ = labs;
}
