//! Bandwidth-aware delivery (paper §4.4): the same stored CT image is served
//! to different partners at different resolutions (Figure 9), and
//! preference-based pre-fetching keeps response times down on slow links.
//!
//! Run with `cargo run --release --example telemedicine_prefetch`.

use rcmo::codec::{decode_prefix, decode_resolution, encode, EncoderConfig};
use rcmo::core::{FormKind, MediaRef, MultimediaDocument, PresentationForm};
use rcmo::imaging::{ct_phantom, psnr};
use rcmo::netsim::{simulate_session, Link, PolicyKind, SessionConfig};

fn main() {
    // ----- Figure 9: multi-resolution views of one encoded image. -----
    let ct = ct_phantom(128, 3, 7).unwrap();
    let stream = encode(&ct, &EncoderConfig::default()).unwrap();
    println!(
        "layered stream: {} bytes for a {}x{} image ({:.2} bpp)",
        stream.len(),
        ct.width(),
        ct.height(),
        8.0 * stream.len() as f64 / (ct.width() * ct.height()) as f64
    );
    println!("\nthe same BLOB, decoded per partner:");
    for (who, drop) in [
        ("dr-fast (LAN)", 0usize),
        ("dr-mid (DSL)", 1),
        ("dr-slow (modem)", 2),
    ] {
        let img = decode_resolution(&stream, drop).unwrap();
        println!("  {who:16} -> {}x{} view", img.width(), img.height());
    }
    println!("\nprogressive refinement as bytes arrive:");
    for frac in [0.25, 0.5, 1.0] {
        let cut = (stream.len() as f64 * frac) as usize;
        match decode_prefix(&stream[..cut]) {
            Ok((img, layers)) => println!(
                "  {:>3.0}% of the stream -> {layers} layer(s), PSNR {:.1} dB",
                frac * 100.0,
                psnr(&ct, &img)
            ),
            Err(_) => println!(
                "  {:>3.0}% of the stream -> below the main layer",
                frac * 100.0
            ),
        }
    }

    // ----- The prefetch study: policy × link sweep. -----
    let mut doc = MultimediaDocument::new("Patient 042");
    let images = doc.add_composite(doc.root(), "Images").unwrap();
    for i in 0..16 {
        doc.add_primitive(
            images,
            &format!("slice-{i:02}"),
            MediaRef::None,
            vec![
                PresentationForm::new("flat", FormKind::Flat, 60_000 + 20_000 * (i % 4)),
                PresentationForm::new("icon", FormKind::Icon, 3_000),
                PresentationForm::hidden(),
            ],
        )
        .unwrap();
    }
    doc.validate().unwrap();

    println!("\nprefetch study (30 clicks, 300 KiB client buffer):");
    println!(
        "{:<12} {:<16} {:>8} {:>10} {:>12} {:>12}",
        "link", "policy", "hit-rate", "mean-resp", "demand-KB", "wasted-KB"
    );
    for (lname, link) in Link::profiles() {
        for policy in PolicyKind::ALL {
            let stats = simulate_session(
                &doc,
                &SessionConfig {
                    steps: 30,
                    buffer_bytes: 300 * 1024,
                    link,
                    policy,
                    ..SessionConfig::default()
                },
            );
            println!(
                "{:<12} {:<16} {:>7.0}% {:>9.2}s {:>12} {:>12}",
                lname,
                policy.name(),
                stats.hit_rate() * 100.0,
                stats.mean_response_secs,
                stats.demand_bytes / 1024,
                stats.wasted_prefetch_bytes / 1024,
            );
        }
    }
}
