//! Audio browsing for tele-consulting (paper §3, voice-processing module):
//! "How many speakers participate in a given conversation? Who are the
//! speakers? ... What is the subject of the talk?"
//!
//! Synthesises a consultation recording (silence + two doctors talking +
//! background music + noise), then runs the three analyses: automatic
//! segmentation, text-independent speaker spotting, and keyword spotting.
//!
//! Run with `cargo run --release --example audio_browsing` (training a few
//! CD-HMMs in debug mode is noticeably slower).

use rcmo::audio::features::FeatureConfig;
use rcmo::audio::segment::{segment_audio, SegmenterModel};
use rcmo::audio::speaker::{SpeakerModel, SpeakerSpotter};
use rcmo::audio::synth::{self, LabeledAudio, SynthConfig, VoiceProfile};
use rcmo::audio::wordspot::{WordSpotter, WordSpotterConfig};

fn main() {
    let features = FeatureConfig::default();
    let cfg = SynthConfig {
        seed: 2002,
        ..SynthConfig::default()
    };
    let alice = VoiceProfile::female("dr-alice");
    let bob = VoiceProfile::male("dr-bob");

    // ----- The recording (with ground-truth labels). -----
    let mut track = LabeledAudio::default();
    track.push("silence", synth::silence(0.5, &cfg));
    track.push(
        "alice",
        synth::babble(
            &alice,
            1.5,
            &SynthConfig {
                seed: 90_001,
                ..cfg
            },
        ),
    );
    // dr-alice utters the keyword "lesion" (phonemes 0-1-4).
    track.push(
        "alice:lesion",
        synth::speech(
            &alice,
            &[0, 1, 4],
            &SynthConfig {
                seed: 90_002,
                ..cfg
            },
        ),
    );
    track.push(
        "bob",
        synth::babble(
            &bob,
            1.5,
            &SynthConfig {
                seed: 90_003,
                ..cfg
            },
        ),
    );
    track.push("music", synth::music(1.0, &cfg));
    track.push("noise", synth::noise(0.5, 0.1, &cfg));
    println!(
        "recording: {:.1}s, {} labelled spans",
        track.len() as f64 / 8_000.0,
        track.labels.len()
    );

    // ----- 1. Automatic segmentation (signal classes). -----
    let segmenter = SegmenterModel::train_default(7);
    println!("\nautomatic segmentation:");
    for seg in segment_audio(&segmenter, &track.samples) {
        let t0 = seg.frames.start as f64 * features.hop_secs();
        let t1 = seg.frames.end as f64 * features.hop_secs();
        println!("  {:>5.2}s – {:>5.2}s  {}", t0, t1, seg.class.name());
    }

    // ----- 2. Speaker spotting (Figure 10). -----
    let mut spotter = SpeakerSpotter::new(
        vec![
            SpeakerModel::enroll_synthetic(&alice, 2.0, &features, 11),
            SpeakerModel::enroll_synthetic(&bob, 2.0, &features, 12),
        ],
        features,
    );
    // Reject windows that fit neither enrolled doctor (silence, music...).
    spotter.reject_below = -30.0;
    println!("\nspeaker turns:");
    for turn in spotter.turns(&track.samples) {
        let name = turn
            .speaker
            .map(|i| spotter.speaker_names()[i])
            .unwrap_or("?");
        let t0 = turn.frames.start as f64 * features.hop_secs();
        let t1 = turn.frames.end as f64 * features.hop_secs();
        println!(
            "  {:>5.2}s – {:>5.2}s  {:8}  (margin {:+.1})",
            t0, t1, name, turn.confidence
        );
    }

    // ----- 3. Keyword spotting. -----
    println!("\ntraining keyword models (lesion, biopsy)...");
    let words = WordSpotter::train(
        &[("lesion", vec![0, 1, 4]), ("biopsy", vec![2, 5, 3])],
        WordSpotterConfig::default(),
        31,
    );
    let mut hits = words.spot(&track.samples);
    hits.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
    hits.truncate(3);
    println!("top keyword hits:");
    if hits.is_empty() {
        println!("  (none above threshold)");
    }
    for hit in hits {
        let t = hit.frame as f64 * features.hop_secs();
        println!(
            "  {:>5.2}s  '{}'  score {:+.1}",
            t,
            words.keyword_names()[hit.word],
            hit.score
        );
    }
}
