//! Offline shim for the subset of `criterion` 0.5 used by the bench
//! targets. No statistics, plots, or warm-up model — each benchmark runs a
//! fixed number of timed iterations and prints mean wall-clock time per
//! iteration (plus throughput when declared). The point is that
//! `cargo bench` compiles and produces comparable numbers offline, not
//! publication-grade confidence intervals.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of a benchmark, echoed as a rate in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortises setup (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A benchmark identifier: function name, optionally with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing driver.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the sample budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let t = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = t.elapsed();
        self.iters = self.samples as u64;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.elapsed = total;
        self.iters = self.samples as u64;
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{id:<40} (no samples)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let time = if per_iter >= 1.0 {
        format!("{per_iter:.3} s")
    } else if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} µs", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => format!("  {:>10.0} elem/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!("{id:<40} {time:>12}{rate}  ({} iters)", b.iters);
}

fn run_one(id: &str, samples: usize, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    report(id, &b, throughput);
}

const DEFAULT_SAMPLES: usize = 30;

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.samples,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.samples,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op beyond matching criterion's API).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: DEFAULT_SAMPLES,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.to_string(), DEFAULT_SAMPLES, None, f);
        self
    }
}

/// Bundles benchmark functions under a group name, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
