//! Offline shim for the subset of `crossbeam` used by this workspace:
//! unbounded MPSC channels. Backed by `std::sync::mpsc`, whose modern
//! implementation *is* crossbeam's channel, so semantics (including
//! disconnection detection on send) match.

/// Multi-producer channels.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel. Cloneable; `send` fails once
    /// the receiver is dropped (disconnection detection).
    pub type Sender<T> = mpsc::Sender<T>;

    /// Receiving half of an unbounded channel.
    pub type Receiver<T> = mpsc::Receiver<T>;

    /// Error returned by `Sender::send` when the receiver is gone.
    pub type SendError<T> = mpsc::SendError<T>;

    /// Error returned by `Receiver::try_recv`.
    pub type TryRecvError = mpsc::TryRecvError;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_receive_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        drop(rx);
        assert!(tx.send(3).is_err(), "send must fail after receiver drop");
    }
}
