//! Offline shim for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no network access, so the real crates.io
//! `rand` cannot be fetched. This crate provides API-compatible,
//! deterministic replacements: [`rngs::StdRng`] is xoshiro256++ seeded via
//! SplitMix64, [`Rng::gen_range`]/[`Rng::gen_bool`] draw from it, and
//! [`seq::SliceRandom`] provides Fisher–Yates shuffling. Streams are *not*
//! bit-compatible with upstream `rand`; everything in-tree only relies on
//! seed-determinism, which this shim guarantees.

/// Random number generator core: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be sampled uniformly from a range by an RNG.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded draw; bias is negligible for the
                // span sizes used here (all far below 2^64).
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.unit_f64() < p
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types the parameterless [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for u16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.unit_f64()
    }
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// ChaCha-based `StdRng`; same interface, different stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u128;
                let j = ((rng.next_u64() as u128 * span) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// One-stop imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i64 = rng.gen_range(-50..-10);
            assert!((-50..-10).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!([1u8, 2, 3].choose(&mut rng).is_some());
        assert!(Vec::<u8>::new().choose(&mut rng).is_none());
    }
}
