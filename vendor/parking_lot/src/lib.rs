//! Offline shim for the subset of `parking_lot` used by this workspace.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly. A poisoned std lock
//! (a panic while holding it) is unwrapped into the inner guard, matching
//! parking_lot's behaviour of ignoring poisoning.

use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable whose `wait` never returns a poison error.
///
/// Shim note: unlike upstream `parking_lot`, `wait` follows the `std`
/// calling convention (consumes and returns the guard) because moving a
/// guard out of `&mut` is impossible without `unsafe`.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the mutex while parked. Returns the
    /// re-acquired guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_panic_while_held() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: a panicking holder does not poison.
        assert_eq!(*m.lock(), 0);
    }
}
