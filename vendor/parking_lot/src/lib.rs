//! Offline shim for the subset of `parking_lot` used by this workspace.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly. A poisoned std lock
//! (a panic while holding it) is unwrapped into the inner guard, matching
//! parking_lot's behaviour of ignoring poisoning.

use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn lock_survives_panic_while_held() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: a panicking holder does not poison.
        assert_eq!(*m.lock(), 0);
    }
}
